"""The shared, write-invalidated decision cache — lock-striped.

One :class:`SharedDecisionCache` serves every session of an
:class:`~repro.serve.gateway.EnforcementGateway`: a decision template
learned while vetting one user's query is immediately available to every
other user whose query has the same shape.

Why sharing is sound
--------------------
A stored template never names a concrete session. It captures the query
skeleton, the *equality pattern* linking query constants to the session
parameters (so "rows WHERE UId = me" only ever matches the requesting
user asking about themselves), and — for history-dependent decisions —
fact patterns that must be satisfied by certified facts **in the
requesting session's own trace**. `lookup()` takes the caller's bindings
and trace, so a template stored from user A's session can only allow
user B's query when the identical decision would have been reached by
running the checker for B directly:

* a template with no fact patterns was justified by the policy alone
  (for any session satisfying the equality pattern), and
* a template with fact patterns requires B's trace to certify matching
  facts — B must have *already been shown* the guard rows. A's history
  never leaks into B's checks.

Hence a shared cache hit never over-allows relative to the per-session
checker; the E11 benchmark re-verifies this empirically on every run.

Lock striping
-------------
The earlier design took one process-wide lock around every operation.
Once the miss path was compiled (PR 8), the cache probe itself became a
measurable fraction of a cached-hit request, and every worker thread
funnelled through that single lock. Now the key space is split across
``stripes`` independent :class:`~repro.enforce.cache.DecisionCache`
instances, routed by the hash of the skeleton key (the hollowed
statement): skeletonization — the expensive, pure part — happens
*outside* any lock (or is skipped entirely when the caller passes a
precomputed skeleton from a :class:`~repro.sqlir.prepared.PreparedPlan`),
and a lookup then takes exactly one stripe lock for the in-index probe.
Two requests with different statement shapes never contend.

Bookkeeping is deferred: per-stripe hit/miss/store counters are updated
under the stripe lock they already hold (a plain int add), and the
aggregate counters the gateway snapshot reports are summed lazily at
read time instead of being maintained under a global lock on the hot
path. Contention is observable: a lookup that finds its stripe lock
busy increments ``stripe_contention`` (surfaced in gateway snapshots as
``cache_stripe_contention``) before blocking, so a deployment can see
striping pressure instead of guessing.

Writers (``invalidate_table``, ``clear``) visit stripes one at a time —
a write's eviction does not need a consistent cross-stripe cut, because
template eviction is conservative hygiene, not a correctness guard (see
``DecisionCache.invalidate_table``).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Mapping

from repro.enforce.cache import DecisionCache, _Template
from repro.enforce.decision import Decision
from repro.enforce.trace import Trace
from repro.policy.policy import Policy
from repro.sqlir import ast
from repro.sqlir.skeleton import Skeleton, skeletonize

#: Default stripe count. Eight is plenty for a worker pool of the
#: default size (8 threads): collisions require two concurrent probes of
#: statement shapes that hash to the same stripe.
DEFAULT_STRIPES = 8


class SharedDecisionCache(DecisionCache):
    """A :class:`DecisionCache` safe to share across concurrent sessions.

    Subclasses :class:`DecisionCache` for interface compatibility (every
    call site that accepts a decision cache accepts this), but holds no
    template state of its own: all state lives in the per-stripe caches,
    and the inherited counters are re-exposed as lazily-summed
    properties.
    """

    def __init__(self, policy: Policy, stripes: int = DEFAULT_STRIPES):
        # Deliberately NOT calling DecisionCache.__init__: the facade
        # keeps no _index/_by_table of its own, and the base counters
        # become summing properties below.
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self._stripe_caches = tuple(DecisionCache(policy) for _ in range(stripes))
        self._stripe_locks = tuple(threading.Lock() for _ in range(stripes))
        self._stores = 0
        self._contention = 0

    # -- routing ------------------------------------------------------------------

    def _stripe_of(self, skeleton_key: object) -> int:
        return hash(skeleton_key) % len(self._stripe_caches)

    def _acquire(self, lock: threading.Lock) -> None:
        """Take a stripe lock, counting (racily — it is a diagnostic,
        not an invariant) the acquisitions that had to wait."""
        if lock.acquire(blocking=False):
            return
        self._contention += 1
        lock.acquire()

    # -- lookup -------------------------------------------------------------------

    def lookup(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
        *,
        skeleton: Skeleton | None = None,
        param_items: list[tuple[str, object]] | None = None,
    ) -> Decision | None:
        if skeleton is None:
            skeleton = skeletonize(stmt)  # pure work, outside any lock
        index = self._stripe_of(skeleton.statement)
        lock = self._stripe_locks[index]
        self._acquire(lock)
        try:
            return self._stripe_caches[index].lookup(
                stmt, bindings, trace, skeleton=skeleton, param_items=param_items
            )
        finally:
            lock.release()

    def lookup_compiled(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
        *,
        skeleton: Skeleton | None = None,
        param_items: list[tuple[str, object]] | None = None,
    ) -> Decision | None:
        if skeleton is None:
            skeleton = skeletonize(stmt)
        index = self._stripe_of(skeleton.statement)
        lock = self._stripe_locks[index]
        self._acquire(lock)
        try:
            return self._stripe_caches[index].lookup_compiled(
                stmt, bindings, trace, skeleton=skeleton, param_items=param_items
            )
        finally:
            lock.release()

    # -- insertion ----------------------------------------------------------------

    def store(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
        *,
        skeleton: Skeleton | None = None,
    ) -> bool:
        if not decision.allowed or decision.from_cache:
            return False  # cheap pre-check before skeletonizing
        if skeleton is None:
            skeleton = skeletonize(stmt)
        index = self._stripe_of(skeleton.statement)
        lock = self._stripe_locks[index]
        self._acquire(lock)
        try:
            inserted = self._stripe_caches[index].store(
                stmt, bindings, decision, skeleton=skeleton
            )
            if inserted:
                self._stores += 1
            return inserted
        finally:
            lock.release()

    def store_block(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
        guard_relations: set[str],
        *,
        skeleton: Skeleton | None = None,
    ) -> bool:
        if decision.allowed or decision.from_cache or decision.facts_considered:
            return False
        if skeleton is None:
            skeleton = skeletonize(stmt)
        index = self._stripe_of(skeleton.statement)
        lock = self._stripe_locks[index]
        self._acquire(lock)
        try:
            inserted = self._stripe_caches[index].store_block(
                stmt, bindings, decision, guard_relations, skeleton=skeleton
            )
            if inserted:
                self._stores += 1
            return inserted
        finally:
            lock.release()

    def _insert_template(self, template: _Template) -> bool:
        """Route a ready-made template to its stripe (benchmark seeding)."""
        index = self._stripe_of(template.skeleton_key)
        lock = self._stripe_locks[index]
        self._acquire(lock)
        try:
            inserted = self._stripe_caches[index]._insert_template(template)
            if inserted:
                self._stores += 1
            return inserted
        finally:
            lock.release()

    # -- invalidation -------------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        evicted = 0
        for stripe, lock in zip(self._stripe_caches, self._stripe_locks):
            self._acquire(lock)
            try:
                evicted += stripe.invalidate_table(table)
            finally:
                lock.release()
        return evicted

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Evict templates touching any of ``tables`` (one write's footprint)."""
        return sum(self.invalidate_table(table) for table in tables)

    def clear(self) -> int:
        dropped = 0
        for stripe, lock in zip(self._stripe_caches, self._stripe_locks):
            self._acquire(lock)
            try:
                dropped += stripe.clear()
            finally:
                lock.release()
        return dropped

    def iter_templates(self) -> Iterator[_Template]:
        for stripe in self._stripe_caches:
            yield from stripe.iter_templates()

    # -- aggregated counters (summed lazily; see module docstring) ----------------

    @property
    def stripes(self) -> int:
        return len(self._stripe_caches)

    @property
    def stripe_contention(self) -> int:
        return self._contention

    @property
    def stores(self) -> int:
        return self._stores

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripe_caches)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripe_caches)

    @property
    def invalidations(self) -> int:
        return sum(stripe.invalidations for stripe in self._stripe_caches)

    @property
    def invalidate_keys_scanned(self) -> int:
        return sum(stripe.invalidate_keys_scanned for stripe in self._stripe_caches)

    @property
    def compiled_hits(self) -> int:
        return sum(stripe.compiled_hits for stripe in self._stripe_caches)

    @property
    def compiled_misses(self) -> int:
        return sum(stripe.compiled_misses for stripe in self._stripe_caches)

    @property
    def blocks_stored(self) -> int:
        return sum(stripe.blocks_stored for stripe in self._stripe_caches)

    @property
    def duplicates_skipped(self) -> int:
        return sum(stripe.duplicates_skipped for stripe in self._stripe_caches)

    @property
    def size(self) -> int:
        return sum(stripe.size for stripe in self._stripe_caches)

    @property
    def hit_rate(self) -> float:
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "size": self.size,
            "stores": self.stores,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "compiled_hits": self.compiled_hits,
            "compiled_misses": self.compiled_misses,
            "blocks_stored": self.blocks_stored,
            "duplicates_skipped": self.duplicates_skipped,
            "stripes": self.stripes,
            "stripe_contention": self.stripe_contention,
        }
