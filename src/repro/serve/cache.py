"""The shared, write-invalidated decision cache.

One :class:`SharedDecisionCache` serves every session of an
:class:`~repro.serve.gateway.EnforcementGateway`: a decision template
learned while vetting one user's query is immediately available to every
other user whose query has the same shape.

Why sharing is sound
--------------------
A stored template never names a concrete session. It captures the query
skeleton, the *equality pattern* linking query constants to the session
parameters (so "rows WHERE UId = me" only ever matches the requesting
user asking about themselves), and — for history-dependent decisions —
fact patterns that must be satisfied by certified facts **in the
requesting session's own trace**. `lookup()` takes the caller's bindings
and trace, so a template stored from user A's session can only allow
user B's query when the identical decision would have been reached by
running the checker for B directly:

* a template with no fact patterns was justified by the policy alone
  (for any session satisfying the equality pattern), and
* a template with fact patterns requires B's trace to certify matching
  facts — B must have *already been shown* the guard rows. A's history
  never leaks into B's checks.

Hence a shared cache hit never over-allows relative to the per-session
checker; the E11 benchmark re-verifies this empirically on every run.

Thread safety is a single lock around lookup/store/invalidate: template
matching is pure in-memory work, orders of magnitude cheaper than the
checker it replaces, so one lock does not bottleneck the worker pool
(and under CPython's GIL a finer scheme would buy little).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping

from repro.enforce.cache import DecisionCache
from repro.enforce.decision import Decision
from repro.enforce.trace import Trace
from repro.policy.policy import Policy
from repro.sqlir import ast


class SharedDecisionCache(DecisionCache):
    """A :class:`DecisionCache` safe to share across concurrent sessions."""

    def __init__(self, policy: Policy):
        super().__init__(policy)
        self._lock = threading.RLock()
        self.stores = 0

    def lookup(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
    ) -> Decision | None:
        with self._lock:
            return super().lookup(stmt, bindings, trace)

    def lookup_compiled(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
    ) -> Decision | None:
        with self._lock:
            return super().lookup_compiled(stmt, bindings, trace)

    def store(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
    ) -> None:
        with self._lock:
            before = self.size
            super().store(stmt, bindings, decision)
            if self.size > before:
                self.stores += 1

    def store_block(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
        guard_relations: set[str],
    ) -> None:
        with self._lock:
            before = self.size
            super().store_block(stmt, bindings, decision, guard_relations)
            if self.size > before:
                self.stores += 1

    def invalidate_table(self, table: str) -> int:
        with self._lock:
            return super().invalidate_table(table)

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Evict templates touching any of ``tables`` (one write's footprint)."""
        with self._lock:
            return sum(super(SharedDecisionCache, self).invalidate_table(t) for t in tables)

    def clear(self) -> int:
        with self._lock:
            return super().clear()

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "size": self.size,
                "stores": self.stores,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "invalidations": self.invalidations,
                "compiled_hits": self.compiled_hits,
                "compiled_misses": self.compiled_misses,
                "blocks_stored": self.blocks_stored,
                "duplicates_skipped": self.duplicates_skipped,
            }
