"""Gateway observability: latency histograms and counters.

Everything here is thread-safe (one lock per metrics object) and cheap
enough to sit on the request hot path: a histogram observation is a
bucket-index computation plus two adds.

The histogram uses fixed log-spaced bucket boundaries in microseconds,
like a Prometheus histogram: percentiles are estimated from bucket
counts (upper bound of the containing bucket), which is plenty for the
"parse is nanoseconds, checks are hundreds of microseconds, cache hits
are tens" resolution the experiments need.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field

#: Bucket upper bounds in microseconds: ~log2-spaced from 1µs to ~4s.
_BUCKET_BOUNDS_US: tuple[float, ...] = tuple(
    float(2**exponent) for exponent in range(0, 23)
)


class LatencyHistogram:
    """A fixed-bucket latency histogram with percentile estimates."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS_US) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        # bisect_left finds the first bound >= the value, so a value at
        # exactly a bucket's upper bound lands *in* that bucket and a
        # value above the largest bound lands in the overflow bucket
        # (index == len(bounds)) — never in the last bounded bucket.
        # Regression-tested at the exact top bound in tests/serve.
        micros = seconds * 1e6
        index = bisect_left(_BUCKET_BOUNDS_US, micros)
        self._counts[index] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_us(self) -> float:
        return self.total_seconds / self.count * 1e6 if self.count else 0.0

    def percentile_us(self, percentile: float) -> float:
        """Estimated latency (µs) at ``percentile`` in [0, 100]."""
        if not self.count:
            return 0.0
        target = percentile / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index < len(_BUCKET_BOUNDS_US):
                    return _BUCKET_BOUNDS_US[index]
                return self.max_seconds * 1e6
        return self.max_seconds * 1e6

    def merge(self, other: "LatencyHistogram") -> None:
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    # -- wire round-trip (cluster STATS aggregation) ------------------------------

    def to_stage_wire(self) -> dict[str, object]:
        """The JSON-safe stage document STATS carries for one histogram.

        Percentile summaries alone cannot be merged across processes, so
        the document also carries the raw bucket counts (``buckets``) and
        the running totals — everything :meth:`from_stage_wire` needs to
        rebuild an equivalent histogram that :meth:`merge` can combine.
        """
        return {
            "count": float(self.count),
            "mean_us": self.mean_us,
            "p50_us": self.percentile_us(50),
            "p95_us": self.percentile_us(95),
            "p99_us": self.percentile_us(99),
            "max_us": self.max_seconds * 1e6,
            "buckets": list(self._counts),
            "total_s": self.total_seconds,
        }

    @classmethod
    def from_stage_wire(cls, stage: dict) -> "LatencyHistogram | None":
        """Rebuild a histogram from a STATS stage document.

        Returns ``None`` for documents from servers that predate the raw
        ``buckets`` field (merge callers then fall back to summaries).
        """
        buckets = stage.get("buckets")
        if not isinstance(buckets, list) or len(buckets) != len(_BUCKET_BOUNDS_US) + 1:
            return None
        histogram = cls()
        histogram._counts = [int(count) for count in buckets]
        histogram.count = int(stage.get("count", sum(histogram._counts)))
        histogram.total_seconds = float(stage.get("total_s", 0.0))
        histogram.max_seconds = float(stage.get("max_us", 0.0)) / 1e6
        return histogram


@dataclass
class MetricsSnapshot:
    """An immutable copy of the gateway's metrics at one instant.

    Each stage document carries the summary fields (``count`` /
    ``mean_us`` / percentiles / ``max_us``) plus the raw ``buckets`` and
    ``total_s`` needed to merge histograms across processes (see
    :meth:`LatencyHistogram.to_stage_wire`).
    """

    counters: dict[str, int]
    view_checks: dict[str, int]
    stages: dict[str, dict[str, object]]

    def describe(self) -> str:
        lines = ["counters:"]
        for name in sorted(self.counters):
            lines.append(f"  {name}: {self.counters[name]}")
        if self.view_checks:
            lines.append("per-view allow counts:")
            for name, count in sorted(
                self.view_checks.items(), key=lambda item: -item[1]
            ):
                lines.append(f"  {name}: {count}")
        lines.append("stage latency (µs):")
        for stage in sorted(self.stages):
            numbers = self.stages[stage]
            lines.append(
                f"  {stage}: n={int(numbers['count'])}"
                f" mean={numbers['mean_us']:.1f}"
                f" p50={numbers['p50_us']:.0f}"
                f" p95={numbers['p95_us']:.0f}"
                f" p99={numbers['p99_us']:.0f}"
                f" max={numbers['max_us']:.0f}"
            )
        return "\n".join(lines)


class GatewayMetrics:
    """All the gateway's counters and histograms behind one lock.

    Stages are created on first observation; the gateway uses ``parse``,
    ``check``, and ``execute``. Counters are free-form names — cache
    hits/misses/invalidations, sessions opened, requests served,
    decisions allowed/blocked, disagreements from cache verification.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, LatencyHistogram] = {}
        self._counters: Counter[str] = Counter()
        self._view_checks: Counter[str] = Counter()

    def observe_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = LatencyHistogram()
            histogram.observe(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def count_view_check(self, view_name: str, amount: int = 1) -> None:
        with self._lock:
            self._view_checks[view_name] += amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            stages = {
                stage: histogram.to_stage_wire()
                for stage, histogram in self._stages.items()
            }
            return MetricsSnapshot(
                counters=dict(self._counters),
                view_checks=dict(self._view_checks),
                stages=stages,
            )
