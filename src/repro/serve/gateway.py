"""The multi-session enforcement gateway.

An :class:`EnforcementGateway` is the process-wide front door of a
serving deployment: it owns the database handle, the policy, one
:class:`~repro.serve.cache.SharedDecisionCache`, and the metrics
registry, and it hands out per-session :class:`GatewayConnection`
objects. Connections implement the standard
:class:`~repro.engine.connection.Connection` protocol, so application
handlers run against a gateway session exactly as they would against a
bare :class:`~repro.engine.database.Database`.

What the gateway adds over a loose pile of per-session proxies:

* **Shared decisions** — all sessions consult (and feed) one
  template cache, so a decision learned for one user amortizes across
  the whole user population (per-session traces still gate
  history-dependent templates; see ``repro.serve.cache``).
* **Write-driven invalidation** — INSERT/UPDATE/DELETE statements are
  serialized through the gateway's write lock and evict every cached
  template touching the written table, in the shared cache and in any
  per-session caches (the ablation configuration).
* **Observability** — per-stage latency histograms (parse / check /
  execute), cache and decision counters, and per-view allow counts.
* **Optional self-verification** — with ``verify_cached_decisions`` on,
  every cache hit is replayed through the full
  :class:`~repro.enforce.checker.ComplianceChecker` and disagreements
  are counted (``cache_disagreements``); E11 asserts this stays zero.

Policy epochs
-------------
Everything whose meaning depends on the *policy* — the checker, the
decision caches, the checker pool — is bundled into one immutable
:class:`PolicyEpoch`. A decision pins the current epoch for its whole
duration (one refcount increment), so a hot reload
(:mod:`repro.lifecycle.reload`) can atomically install a new epoch
without ever tearing a decision across two policy versions: in-flight
decisions finish entirely under the epoch they started with, new
decisions start entirely under the new one, and the old epoch's worker
pool is only closed once its pin count drains to zero. Session state
(connections and their traces) lives *outside* the epoch and survives
reloads untouched.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.enforce.cache import DecisionCache
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import Decision
from repro.enforce.proxy import EnforcementProxy, ProxyConfig, Session
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.policy.policy import Policy
from repro.relalg import memo
from repro.relalg.compile import CompiledPolicy, compile_policy
from repro.serve.batch import CheckBatcher
from repro.serve.cache import SharedDecisionCache
from repro.serve.metrics import GatewayMetrics, MetricsSnapshot
from repro.serve.pool import CheckerPool, CheckerPoolError
from repro.sqlir import ast


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway-wide configuration, applied to every session it opens.

    ``cache_mode``:

    * ``"shared"`` (default) — one :class:`SharedDecisionCache` for all
      sessions;
    * ``"per-session"`` — a private :class:`DecisionCache` per session
      (the ablation the E11 benchmark compares against);
    * ``"none"`` — no decision caching at all.

    ``check_workers`` > 0 offloads cache-miss compliance checks onto a
    :class:`~repro.serve.pool.CheckerPool` of that many warm worker
    processes; 0 (the default) keeps checking in-process. Pool failures
    fall back to in-process checking transparently (counted as
    ``pool_fallbacks`` in the metrics).

    ``compile_checks`` (default on) builds a
    :class:`~repro.relalg.compile.CompiledPolicy` and a per-epoch
    skeleton store once per :class:`PolicyEpoch`, turning repeat-shape
    cache-miss checks into template instantiation (docs/compilation.md).
    ``batch_checks`` (default on) additionally funnels in-process miss
    checks through a :class:`~repro.serve.batch.CheckBatcher` so
    concurrent sessions share per-batch compilation work; it is inert
    when ``check_workers`` > 0 (the pool already parallelizes misses).

    ``backend`` / ``db_path`` are *declarative*: they record which
    storage backend this deployment expects (and, for path-capable
    backends, where its file lives) so deployment configs can travel as
    one object. The gateway does not construct the database — the owner
    does, via :func:`repro.engine.open_database` — but it validates at
    startup that the database it was handed matches the declared
    backend, failing fast on a misconfigured deployment.
    """

    history_enabled: bool = True
    cache_mode: str = "shared"
    verify_cached_decisions: bool = False
    record_decisions: bool = False
    decision_log_cap: int = 256
    check_workers: int = 0
    check_timeout_s: float = 60.0
    compile_checks: bool = True
    batch_checks: bool = True
    backend: str | None = None
    db_path: str | None = None
    #: Optional :class:`repro.mining.MiningConfig`: when set, a
    #: LifecycleManager bound to this gateway auto-attaches a
    #: MiningService (audit tap + periodic candidate mining). Declarative
    #: like ``backend``: the gateway itself never reads it.
    mining: object | None = None

    def __post_init__(self) -> None:
        if self.cache_mode not in ("shared", "per-session", "none"):
            raise ValueError(f"unknown cache_mode {self.cache_mode!r}")
        if self.check_workers < 0:
            raise ValueError("check_workers must be >= 0")
        if self.db_path is not None and self.backend is None:
            raise ValueError("db_path requires an explicit backend")


class PolicyEpoch:
    """One policy generation: the policy plus everything derived from it.

    Immutable once installed (the caches fill, but never change policy).
    The pin count tracks decisions currently executing under this epoch;
    :meth:`retire` blocks until they drain, then closes the epoch's pool.
    """

    def __init__(
        self,
        db: Database,
        policy: Policy,
        config: GatewayConfig,
        version: int = 1,
        provenance: str = "hand-written",
    ):
        self.version = version
        self.policy = policy
        self.provenance = provenance
        # Compiled artifacts are built here — before the epoch is
        # installed — so a hot reload pays compilation pre-swap and the
        # install stays a pointer assignment (E17's rebuild-cost table).
        self.compiled: CompiledPolicy | None = (
            compile_policy(db.schema, policy) if config.compile_checks else None
        )
        #: The per-epoch skeleton store (compiled decision templates).
        #: Unified with the shared decision cache below: in shared cache
        #: mode they are the *same object*, so cross-shard TEMPLATE
        #: events (repro.cluster.exchange stores into shared_cache) seed
        #: compiled skeletons too, and write invalidation covers both.
        self.skeletons: SharedDecisionCache | None = (
            SharedDecisionCache(policy) if self.compiled is not None else None
        )
        self.checker = ComplianceChecker(
            db.schema,
            policy,
            history_enabled=config.history_enabled,
            compiled=self.compiled,
            skeletons=self.skeletons,
        )
        if config.cache_mode == "shared":
            self.shared_cache: SharedDecisionCache | None = (
                self.skeletons
                if self.skeletons is not None
                else SharedDecisionCache(policy)
            )
        else:
            self.shared_cache = None
        # Per-session caches (cache_mode="per-session"), keyed by the
        # session's bindings; created lazily on first decision.
        self._session_caches: dict[tuple, DecisionCache] = {}
        self.pool: CheckerPool | None = (
            CheckerPool(
                db.schema,
                policy,
                workers=config.check_workers,
                history_enabled=config.history_enabled,
                timeout_s=config.check_timeout_s,
                compile_checks=config.compile_checks,
            )
            if config.check_workers > 0
            else None
        )
        #: Combining-lock batcher for in-process miss checks (inert with
        #: a worker pool: pooled checks already run outside this thread).
        self.batcher: CheckBatcher | None = (
            CheckBatcher(self.checker, timeout_s=config.check_timeout_s)
            if config.batch_checks and self.pool is None
            else None
        )
        self._condition = threading.Condition()
        self._pins = 0
        self._retired = False

    # -- pinning ------------------------------------------------------------------

    def __enter__(self) -> "PolicyEpoch":
        with self._condition:
            self._pins += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self._condition:
            self._pins -= 1
            if self._pins == 0:
                self._condition.notify_all()

    @property
    def pins(self) -> int:
        with self._condition:
            return self._pins

    def retire(self, timeout_s: float = 30.0) -> bool:
        """Wait for in-flight decisions to drain, then close the pool.

        Returns ``False`` when pinned decisions were still live at the
        deadline (the pool is closed regardless: a straggler's pooled
        check then falls back to the in-process checker *of its own
        epoch*, so the decision stays untorn).
        """
        drained = True
        with self._condition:
            self._retired = True
            deadline = None
            while self._pins > 0:
                if deadline is None:
                    import time as _time

                    deadline = _time.monotonic() + timeout_s
                    remaining = timeout_s
                else:
                    remaining = deadline - _time.monotonic()
                if remaining <= 0 or not self._condition.wait(timeout=remaining):
                    drained = self._pins == 0
                    break
        if self.pool is not None:
            self.pool.close()
        return drained

    # -- caches -------------------------------------------------------------------

    def session_cache_for(self, key: tuple, policy: Policy) -> DecisionCache:
        with self._condition:
            cache = self._session_caches.get(key)
            if cache is None:
                cache = self._session_caches[key] = DecisionCache(policy)
            return cache

    def caches(self) -> list[DecisionCache]:
        """Every decision cache of this epoch (for write invalidation).

        Includes the skeleton store even outside shared cache mode: a
        write must evict compiled templates (and Block-template guards)
        exactly like classic decision templates.
        """
        targets: list[DecisionCache] = []
        if self.shared_cache is not None:
            targets.append(self.shared_cache)
        if self.skeletons is not None and self.skeletons is not self.shared_cache:
            targets.append(self.skeletons)
        with self._condition:
            targets.extend(self._session_caches.values())
        return targets


class GatewayConnection(EnforcementProxy):
    """One session's connection, vended by :meth:`EnforcementGateway.connect`."""

    def __init__(
        self,
        gateway: "EnforcementGateway",
        session: Session,
        config: ProxyConfig,
    ):
        super().__init__(gateway.db, gateway.policy, session, config)
        self._gateway = gateway
        self._session_key = tuple(sorted(session.bindings.items()))
        # The epoch pinned by the decision currently in flight on this
        # connection (sessions are serialized, so at most one).
        self._pinned_epoch: PolicyEpoch | None = None
        # Identifies this connection's trace to the checker pool; per
        # connection (not per principal) because fresh sessions for the
        # same principal have distinct traces.
        self._pool_token = gateway._allocate_pool_token()

    # -- epoch-pinned deciding ---------------------------------------------------

    def decide(self, bound: ast.Select, skeleton=None) -> Decision:
        """Vet a bound SELECT entirely under one policy epoch.

        The epoch is read once and pinned for the whole decision — cache
        lookup, fresh check (pooled or in-process), verification, store —
        so a concurrent hot reload can never produce a decision computed
        against a mix of two policies. ``skeleton`` is the
        prepared-statement fast path (see ``EnforcementProxy.decide``).
        """
        gateway = self._gateway
        with gateway.epoch as epoch:
            self._pinned_epoch = epoch
            try:
                decision = super().decide(bound, skeleton=skeleton)
            finally:
                self._pinned_epoch = None
        decision.policy_version = epoch.version
        observer = gateway.template_observer
        if (
            observer is not None
            and decision.allowed
            and not decision.from_cache
            and epoch.shared_cache is not None
        ):
            observer(bound, dict(self.session.bindings), decision, epoch)
        audit = gateway.decision_audit
        if audit is not None:
            trace = self.trace if self.config.history_enabled else None
            audit(
                DecisionAuditRecord(
                    sql=decision.sql,
                    bindings=dict(self.session.bindings),
                    facts=trace.facts if trace is not None else (),
                    trace_len=len(trace.facts) if trace is not None else 0,
                    allowed=decision.allowed,
                    policy_version=epoch.version,
                    from_cache=decision.from_cache,
                    views=tuple(
                        sorted(
                            {
                                atom.rel
                                for rewriting in decision.rewritings
                                for atom in rewriting.atoms
                            }
                        )
                    ),
                )
            )
        shadow = gateway.shadow
        if shadow is not None:
            shadow.submit(self, bound, decision)
        return decision

    def _decision_cache(self) -> DecisionCache | None:
        """The pinned epoch's cache for this session (mode-dependent)."""
        epoch = self._pinned_epoch
        if epoch is None:  # plain proxy path (not reached via decide())
            return self.config.cache
        return self._epoch_cache(epoch)

    def _epoch_cache(self, epoch: PolicyEpoch) -> DecisionCache | None:
        mode = self._gateway.config.cache_mode
        if mode == "shared":
            return epoch.shared_cache
        if mode == "per-session":
            return epoch.session_cache_for(self._session_key, epoch.policy)
        return None

    @property
    def cache(self) -> DecisionCache | None:
        """This session's decision cache under the *current* epoch."""
        return self._epoch_cache(self._gateway.epoch)

    # -- hooks wired into the gateway ------------------------------------------

    def _execute_write(
        self,
        stmt: ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> Result | int:
        return self._gateway._handle_write(stmt, args, named)

    def _record_stage(self, stage: str, seconds: float) -> None:
        self._gateway.metrics.observe_stage(stage, seconds)

    def _observe_decision(self, decision: Decision, bound: ast.Select) -> None:
        metrics = self._gateway.metrics
        metrics.increment("decisions_allowed" if decision.allowed else "decisions_blocked")
        if decision.from_cache:
            metrics.increment("cache_hits")
            if self._gateway.config.verify_cached_decisions:
                self._verify_cached(decision, bound)
        else:
            metrics.increment(
                "cache_misses" if self._decision_cache() is not None else "uncached_checks"
            )
        for rewriting in decision.rewritings:
            for atom in rewriting.atoms:
                metrics.count_view_check(atom.rel)

    def _verify_cached(self, decision: Decision, bound: ast.Select) -> None:
        """Replay a cache hit through the uncached checker and compare.

        ``allow_compiled=False``: verification must be independent of
        the compiled templates (which live in the same unified store the
        cache hit may have come from), so it always runs the full
        containment path.
        """
        trace = self.trace if self.config.history_enabled else None
        fresh = self._check_fresh(bound, trace, allow_compiled=False)
        self._gateway.metrics.increment("cache_verified")
        if fresh.allowed != decision.allowed:
            self._gateway.metrics.increment("cache_disagreements")

    def _check_fresh(
        self, bound: ast.Select, trace, allow_compiled: bool = True, skeleton=None
    ) -> Decision:
        """Cache-miss check: batched/pooled when configured, else direct.

        Always runs against the pinned epoch's checker/pool so the
        decision cannot straddle a reload; the pool-failure fallback uses
        the *same epoch's* in-process checker for the same reason. The
        pooled path ignores ``skeleton`` — workers re-parse the shipped
        SQL text, so a parent-side skeleton would not help them.
        """
        epoch = self._pinned_epoch
        if epoch is None:
            return super()._check_fresh(bound, trace, skeleton=skeleton)
        if epoch.pool is None:
            if epoch.batcher is not None and allow_compiled:
                return epoch.batcher.check(
                    bound, self.session.bindings, trace, skeleton=skeleton
                )
            return epoch.checker.check(
                bound,
                self.session.bindings,
                trace,
                allow_compiled=allow_compiled,
                skeleton=skeleton,
            )
        try:
            return epoch.pool.check(
                self._pool_token,
                self.session.bindings,
                bound,
                trace,
                allow_compiled=allow_compiled,
            )
        except CheckerPoolError:
            self._gateway.metrics.increment("pool_fallbacks")
            return epoch.checker.check(
                bound, self.session.bindings, trace, allow_compiled=allow_compiled
            )


@dataclass(frozen=True)
class DecisionAuditRecord:
    """One decision as the gateway made it, for external re-verification.

    Produced when ``gateway.decision_audit`` is set (the E14 benchmark's
    no-torn-decision instrument): carries everything needed to replay
    the decision against a fresh checker for the policy version that
    made it — the bound SQL, the session bindings, and the certified
    trace facts *as of decision time*.
    """

    sql: str
    bindings: dict
    facts: tuple
    trace_len: int
    allowed: bool
    policy_version: int
    from_cache: bool
    #: Names of the policy views the justification's rewritings leaned on
    #: (empty for blocks and for decisions with no witnessing rewriting).
    #: The mining service's tightening detector reads these to find views
    #: live traffic never exercises.
    views: tuple = ()


class EnforcementGateway:
    """Owns the shared cache and metrics; hands out per-session connections."""

    def __init__(
        self,
        db: Database,
        policy: Policy,
        config: GatewayConfig | None = None,
    ):
        self.db = db
        self.config = config or GatewayConfig()
        if (
            self.config.backend is not None
            and self.config.backend != db.backend_name
        ):
            raise ValueError(
                f"gateway configured for backend {self.config.backend!r}"
                f" but the database runs {db.backend_name!r}"
            )
        self.metrics = GatewayMetrics()
        self._epoch = PolicyEpoch(db, policy, self.config)
        self._connections: dict[tuple, GatewayConnection] = {}
        # RLock: connect() holds it while _proxy_config() re-enters.
        self._connect_lock = threading.RLock()
        self._write_lock = threading.RLock()
        self._pool_tokens = 0
        #: Optional per-decision audit hook (see DecisionAuditRecord).
        self.decision_audit = None
        #: Optional shadow runner (repro.lifecycle.shadow.ShadowRunner).
        self.shadow = None
        #: Optional hook called for every fresh Allow decision made under
        #: a shared cache: ``observer(bound, bindings, decision, epoch)``.
        #: The cluster tier uses it to publish newly derived decision
        #: templates to peer shards (repro.cluster.exchange).
        self.template_observer = None
        #: Optional hook called (inside the write lock) with the tuple of
        #: tables a write touched; the cluster tier broadcasts these as
        #: cross-shard invalidations.
        self.write_observer = None

    # -- the policy epoch --------------------------------------------------------

    @property
    def epoch(self) -> PolicyEpoch:
        return self._epoch

    @property
    def policy(self) -> Policy:
        """The active policy (the current epoch's)."""
        return self._epoch.policy

    @property
    def policy_version(self) -> int:
        return self._epoch.version

    @property
    def shared_cache(self) -> SharedDecisionCache | None:
        return self._epoch.shared_cache

    @property
    def pool(self) -> CheckerPool | None:
        return self._epoch.pool

    def build_epoch(
        self, policy: Policy, version: int, provenance: str = "hand-written"
    ) -> PolicyEpoch:
        """Construct (but do not install) an epoch for ``policy``.

        Doing the expensive part — checker construction, pool worker
        spawning — *before* the swap keeps the install pause to a
        pointer assignment.
        """
        return PolicyEpoch(self.db, policy, self.config, version, provenance)

    def install_epoch(self, epoch: PolicyEpoch) -> PolicyEpoch:
        """Atomically make ``epoch`` the deciding epoch; returns the old one.

        Taken under the write lock so the swap also serializes against
        write-driven invalidation (a write either invalidates the old
        epoch's caches, which are then discarded wholesale, or the new
        epoch's — never a half-installed mix). The caller is responsible
        for retiring the returned epoch (``old.retire()``), normally via
        :func:`repro.lifecycle.reload.hot_reload`.
        """
        with self._write_lock:
            old, self._epoch = self._epoch, epoch
            self.metrics.increment("policy_reloads")
        return old

    # -- session management -----------------------------------------------------

    def connect(
        self,
        session: Session | Mapping[str, object] | object,
        fresh: bool = False,
    ) -> GatewayConnection:
        """Open (or rejoin) the connection for a session.

        ``session`` may be a :class:`Session`, a bindings mapping, or a
        bare user id (bound to the conventional ``MyUId`` parameter).
        Connections are keyed by their bindings: reconnecting as the same
        principal resumes the same trace, the way an application server's
        session store would. ``fresh=True`` forces a brand-new session
        (empty trace) without disturbing the stored one.
        """
        normalized = self._normalize(session)
        key = tuple(sorted(normalized.bindings.items()))
        if fresh:
            self.metrics.increment("sessions_opened")
            return GatewayConnection(self, normalized, self._proxy_config())
        with self._connect_lock:
            connection = self._connections.get(key)
            if connection is None:
                connection = GatewayConnection(self, normalized, self._proxy_config())
                self._connections[key] = connection
                self.metrics.increment("sessions_opened")
            return connection

    def connections(self) -> list[GatewayConnection]:
        with self._connect_lock:
            return list(self._connections.values())

    def close(self) -> None:
        with self._connect_lock:
            for connection in self._connections.values():
                connection.close()
            self._connections.clear()
        if self.shadow is not None:
            self.shadow.close()
            self.shadow = None
        self._epoch.retire(timeout_s=5.0)

    def _allocate_pool_token(self) -> int:
        with self._connect_lock:
            self._pool_tokens += 1
            return self._pool_tokens

    def _normalize(self, session: Session | Mapping[str, object] | object) -> Session:
        if isinstance(session, Session):
            return session
        if isinstance(session, Mapping):
            return Session(bindings=dict(session))
        return Session.for_user(session)

    def _proxy_config(self) -> ProxyConfig:
        # Decision caches are epoch-owned (see PolicyEpoch); the proxy
        # config's cache field stays None and GatewayConnection resolves
        # the cache through its pinned epoch on every decision.
        return ProxyConfig(
            history_enabled=self.config.history_enabled,
            record_decisions=self.config.record_decisions,
            cache=None,
            decision_log_cap=self.config.decision_log_cap,
        )

    # -- writes ------------------------------------------------------------------

    def _handle_write(
        self,
        stmt: ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> Result | int:
        """Serialize a write and evict decision templates it stales.

        The in-memory engine is not safe for concurrent mutation, so all
        writes funnel through one lock (reads stay lock-free: CPython
        container operations the executor uses are atomic enough under
        the GIL, and the experiments' read streams dwarf their writes).
        Invalidation happens *inside* the lock so no session can observe
        the new data while stale templates are still live.
        """
        with self._write_lock:
            outcome = self.db.sql(stmt, args, named)
            tables = self._written_tables(stmt)
            evicted = 0
            for cache in self._epoch.caches():
                for table in tables:
                    evicted += cache.invalidate_table(table)
            self.metrics.increment("writes")
            if evicted:
                self.metrics.increment("templates_invalidated", evicted)
            observer = self.write_observer
            if observer is not None and tables:
                observer(tables)
            return outcome

    @staticmethod
    def _written_tables(stmt: ast.Statement) -> tuple[str, ...]:
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            return (stmt.table,)
        return ()

    # -- observability -----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        snapshot = self.metrics.snapshot()
        epoch = self._epoch
        snapshot.counters["policy_version"] = epoch.version
        if epoch.shared_cache is not None:
            for name, value in epoch.shared_cache.stats().items():
                snapshot.counters[f"shared_cache_{name}"] = value
            # Top-level alias for the striping instrument (docs/performance.md):
            # lookups that found their stripe lock busy.
            snapshot.counters["cache_stripe_contention"] = (
                epoch.shared_cache.stripe_contention
            )
        if epoch.skeletons is not None:
            # Top-level compiled-path counters (docs/compilation.md); the
            # cluster router sums these across shards, so numeric only.
            snapshot.counters["compiled_hits"] = epoch.skeletons.compiled_hits
            snapshot.counters["compile_misses"] = epoch.skeletons.compiled_misses
            snapshot.counters["compiled_templates"] = epoch.skeletons.size
            snapshot.counters["compiled_blocks"] = epoch.skeletons.blocks_stored
        if epoch.compiled is not None:
            compiled_stats = epoch.compiled.stats()
            snapshot.counters["compiled_views"] = compiled_stats["views"]
            snapshot.counters["compiled_view_def_hits"] = compiled_stats["view_def_hits"]
            snapshot.counters["compiled_view_def_misses"] = compiled_stats[
                "view_def_misses"
            ]
        if epoch.batcher is not None:
            for name, value in epoch.batcher.stats().items():
                snapshot.counters[f"batch_{name}"] = value
        if epoch.pool is not None:
            for name, value in epoch.pool.stats().items():
                snapshot.counters[f"pool_{name}"] = value
        shadow = self.shadow
        if shadow is not None:
            for name, value in shadow.stats().items():
                snapshot.counters[f"shadow_{name}"] = value
        # Decision-audit loss accounting: drops from per-session decision
        # rings plus (when an AuditStream is installed) subscriber-queue
        # drops. Always present so STATS consumers can alert on it.
        audit_dropped = sum(
            connection.stats.audit_dropped for connection in self.connections()
        )
        audit = self.decision_audit
        if audit is not None and hasattr(audit, "stats"):
            for name, value in audit.stats().items():
                if name == "dropped":
                    audit_dropped += value
                else:
                    snapshot.counters[f"audit_{name}"] = value
        snapshot.counters["audit_dropped"] = audit_dropped
        # This process's rewriting-core memo counters (worker-side ones
        # appear under pool_memo_* above).
        for name, value in memo.memo_stats().items():
            snapshot.counters[f"memo_{name}"] = value
        return snapshot

    def cache_hit_rate(self) -> float:
        """Hit rate across whichever caches this configuration uses."""
        epoch = self._epoch
        if epoch.shared_cache is not None:
            return epoch.shared_cache.hit_rate
        caches = epoch.caches()
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        total = hits + misses
        return hits / total if total else 0.0
