"""The multi-session enforcement gateway.

An :class:`EnforcementGateway` is the process-wide front door of a
serving deployment: it owns the database handle, the policy, one
:class:`~repro.serve.cache.SharedDecisionCache`, and the metrics
registry, and it hands out per-session :class:`GatewayConnection`
objects. Connections implement the standard
:class:`~repro.engine.connection.Connection` protocol, so application
handlers run against a gateway session exactly as they would against a
bare :class:`~repro.engine.database.Database`.

What the gateway adds over a loose pile of per-session proxies:

* **Shared decisions** — all sessions consult (and feed) one
  template cache, so a decision learned for one user amortizes across
  the whole user population (per-session traces still gate
  history-dependent templates; see ``repro.serve.cache``).
* **Write-driven invalidation** — INSERT/UPDATE/DELETE statements are
  serialized through the gateway's write lock and evict every cached
  template touching the written table, in the shared cache and in any
  per-session caches (the ablation configuration).
* **Observability** — per-stage latency histograms (parse / check /
  execute), cache and decision counters, and per-view allow counts.
* **Optional self-verification** — with ``verify_cached_decisions`` on,
  every cache hit is replayed through the full
  :class:`~repro.enforce.checker.ComplianceChecker` and disagreements
  are counted (``cache_disagreements``); E11 asserts this stays zero.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.enforce.cache import DecisionCache
from repro.enforce.decision import Decision
from repro.enforce.proxy import EnforcementProxy, ProxyConfig, Session
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.policy.policy import Policy
from repro.relalg import memo
from repro.serve.cache import SharedDecisionCache
from repro.serve.metrics import GatewayMetrics, MetricsSnapshot
from repro.serve.pool import CheckerPool, CheckerPoolError
from repro.sqlir import ast


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway-wide configuration, applied to every session it opens.

    ``cache_mode``:

    * ``"shared"`` (default) — one :class:`SharedDecisionCache` for all
      sessions;
    * ``"per-session"`` — a private :class:`DecisionCache` per session
      (the ablation the E11 benchmark compares against);
    * ``"none"`` — no decision caching at all.

    ``check_workers`` > 0 offloads cache-miss compliance checks onto a
    :class:`~repro.serve.pool.CheckerPool` of that many warm worker
    processes; 0 (the default) keeps checking in-process. Pool failures
    fall back to in-process checking transparently (counted as
    ``pool_fallbacks`` in the metrics).
    """

    history_enabled: bool = True
    cache_mode: str = "shared"
    verify_cached_decisions: bool = False
    record_decisions: bool = False
    decision_log_cap: int = 256
    check_workers: int = 0
    check_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.cache_mode not in ("shared", "per-session", "none"):
            raise ValueError(f"unknown cache_mode {self.cache_mode!r}")
        if self.check_workers < 0:
            raise ValueError("check_workers must be >= 0")


class GatewayConnection(EnforcementProxy):
    """One session's connection, vended by :meth:`EnforcementGateway.connect`."""

    def __init__(
        self,
        gateway: "EnforcementGateway",
        session: Session,
        config: ProxyConfig,
    ):
        super().__init__(gateway.db, gateway.policy, session, config)
        self._gateway = gateway
        # Identifies this connection's trace to the checker pool; per
        # connection (not per principal) because fresh sessions for the
        # same principal have distinct traces.
        self._pool_token = gateway._allocate_pool_token()

    # -- hooks wired into the gateway ------------------------------------------

    def _execute_write(
        self,
        stmt: ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> Result | int:
        return self._gateway._handle_write(stmt, args, named)

    def _record_stage(self, stage: str, seconds: float) -> None:
        self._gateway.metrics.observe_stage(stage, seconds)

    def _observe_decision(self, decision: Decision, bound: ast.Select) -> None:
        metrics = self._gateway.metrics
        metrics.increment("decisions_allowed" if decision.allowed else "decisions_blocked")
        if decision.from_cache:
            metrics.increment("cache_hits")
            if self._gateway.config.verify_cached_decisions:
                self._verify_cached(decision, bound)
        else:
            metrics.increment("cache_misses" if self.config.cache is not None else "uncached_checks")
        for rewriting in decision.rewritings:
            for atom in rewriting.atoms:
                metrics.count_view_check(atom.rel)

    def _verify_cached(self, decision: Decision, bound: ast.Select) -> None:
        """Replay a cache hit through the uncached checker and compare."""
        trace = self.trace if self.config.history_enabled else None
        fresh = self._check_fresh(bound, trace)
        self._gateway.metrics.increment("cache_verified")
        if fresh.allowed != decision.allowed:
            self._gateway.metrics.increment("cache_disagreements")

    def _check_fresh(self, bound: ast.Select, trace) -> Decision:
        """Cache-miss check: pooled when configured, else in-process."""
        pool = self._gateway.pool
        if pool is None:
            return super()._check_fresh(bound, trace)
        try:
            return pool.check(self._pool_token, self.session.bindings, bound, trace)
        except CheckerPoolError:
            self._gateway.metrics.increment("pool_fallbacks")
            return super()._check_fresh(bound, trace)


class EnforcementGateway:
    """Owns the shared cache and metrics; hands out per-session connections."""

    def __init__(
        self,
        db: Database,
        policy: Policy,
        config: GatewayConfig | None = None,
    ):
        self.db = db
        self.policy = policy
        self.config = config or GatewayConfig()
        self.metrics = GatewayMetrics()
        self.shared_cache: SharedDecisionCache | None = (
            SharedDecisionCache(policy) if self.config.cache_mode == "shared" else None
        )
        self._session_caches: list[DecisionCache] = []
        self._connections: dict[tuple, GatewayConnection] = {}
        # RLock: connect() holds it while _proxy_config() re-enters to
        # register a per-session cache.
        self._connect_lock = threading.RLock()
        self._write_lock = threading.RLock()
        self._pool_tokens = 0
        self.pool: CheckerPool | None = (
            CheckerPool(
                db.schema,
                policy,
                workers=self.config.check_workers,
                history_enabled=self.config.history_enabled,
                timeout_s=self.config.check_timeout_s,
            )
            if self.config.check_workers > 0
            else None
        )

    # -- session management -----------------------------------------------------

    def connect(
        self,
        session: Session | Mapping[str, object] | object,
        fresh: bool = False,
    ) -> GatewayConnection:
        """Open (or rejoin) the connection for a session.

        ``session`` may be a :class:`Session`, a bindings mapping, or a
        bare user id (bound to the conventional ``MyUId`` parameter).
        Connections are keyed by their bindings: reconnecting as the same
        principal resumes the same trace, the way an application server's
        session store would. ``fresh=True`` forces a brand-new session
        (empty trace) without disturbing the stored one.
        """
        normalized = self._normalize(session)
        key = tuple(sorted(normalized.bindings.items()))
        if fresh:
            self.metrics.increment("sessions_opened")
            return GatewayConnection(self, normalized, self._proxy_config())
        with self._connect_lock:
            connection = self._connections.get(key)
            if connection is None:
                connection = GatewayConnection(self, normalized, self._proxy_config())
                self._connections[key] = connection
                self.metrics.increment("sessions_opened")
            return connection

    def connections(self) -> list[GatewayConnection]:
        with self._connect_lock:
            return list(self._connections.values())

    def close(self) -> None:
        with self._connect_lock:
            for connection in self._connections.values():
                connection.close()
            self._connections.clear()
        if self.pool is not None:
            self.pool.close()

    def _allocate_pool_token(self) -> int:
        with self._connect_lock:
            self._pool_tokens += 1
            return self._pool_tokens

    def _normalize(self, session: Session | Mapping[str, object] | object) -> Session:
        if isinstance(session, Session):
            return session
        if isinstance(session, Mapping):
            return Session(bindings=dict(session))
        return Session.for_user(session)

    def _proxy_config(self) -> ProxyConfig:
        if self.config.cache_mode == "shared":
            cache: DecisionCache | None = self.shared_cache
        elif self.config.cache_mode == "per-session":
            cache = DecisionCache(self.policy)
            with self._connect_lock:
                self._session_caches.append(cache)
        else:
            cache = None
        return ProxyConfig(
            history_enabled=self.config.history_enabled,
            record_decisions=self.config.record_decisions,
            cache=cache,
            decision_log_cap=self.config.decision_log_cap,
        )

    # -- writes ------------------------------------------------------------------

    def _handle_write(
        self,
        stmt: ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> Result | int:
        """Serialize a write and evict decision templates it stales.

        The in-memory engine is not safe for concurrent mutation, so all
        writes funnel through one lock (reads stay lock-free: CPython
        container operations the executor uses are atomic enough under
        the GIL, and the experiments' read streams dwarf their writes).
        Invalidation happens *inside* the lock so no session can observe
        the new data while stale templates are still live.
        """
        with self._write_lock:
            outcome = self.db.sql(stmt, args, named)
            tables = self._written_tables(stmt)
            evicted = 0
            for cache in self._invalidation_targets():
                for table in tables:
                    evicted += cache.invalidate_table(table)
            self.metrics.increment("writes")
            if evicted:
                self.metrics.increment("templates_invalidated", evicted)
            return outcome

    def _invalidation_targets(self) -> list[DecisionCache]:
        targets: list[DecisionCache] = []
        if self.shared_cache is not None:
            targets.append(self.shared_cache)
        with self._connect_lock:
            targets.extend(self._session_caches)
        return targets

    @staticmethod
    def _written_tables(stmt: ast.Statement) -> tuple[str, ...]:
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            return (stmt.table,)
        return ()

    # -- observability -----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        snapshot = self.metrics.snapshot()
        if self.shared_cache is not None:
            for name, value in self.shared_cache.stats().items():
                snapshot.counters[f"shared_cache_{name}"] = value
        if self.pool is not None:
            for name, value in self.pool.stats().items():
                snapshot.counters[f"pool_{name}"] = value
        # This process's rewriting-core memo counters (worker-side ones
        # appear under pool_memo_* above).
        for name, value in memo.memo_stats().items():
            snapshot.counters[f"memo_{name}"] = value
        return snapshot

    def cache_hit_rate(self) -> float:
        """Hit rate across whichever caches this configuration uses."""
        if self.shared_cache is not None:
            return self.shared_cache.hit_rate
        with self._connect_lock:
            caches = list(self._session_caches)
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        total = hits + misses
        return hits / total if total else 0.0
