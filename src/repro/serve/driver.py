"""Worker-pool replay of application workloads through the gateway.

Simulates a serving deployment: the request streams the workload apps
already generate (calendar / hospital / employees / social) are
partitioned by session principal, and a pool of worker threads replays
them concurrently through gateway connections. A session's requests stay
in order — history-dependent decisions (Example 2.1) require the guard
query's answer to be in the trace before the fetch — but different
sessions interleave freely across workers, which is exactly the traffic
shape a shared decision cache has to be sound under.

``write_every=k`` interleaves a data-identity write (``UPDATE t SET c =
c``) after every k-th request of each session: it perturbs no data, so
replayed decisions stay comparable, but it exercises the gateway's
write-invalidation path under full concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.enforce.decision import PolicyViolation
from repro.extract.handlers import run_handler
from repro.serve.gateway import EnforcementGateway, GatewayConnection
from repro.serve.metrics import MetricsSnapshot
from repro.util.errors import DbacError
from repro.workloads.runner import Request, WorkloadApp


@dataclass
class DriveReport:
    """What one replay produced, aggregated across all workers."""

    requests: int = 0
    completed: int = 0
    blocked: int = 0
    aborted: int = 0
    errors: int = 0
    writes: int = 0
    sessions: int = 0
    workers: int = 0
    wall_seconds: float = 0.0
    metrics: MetricsSnapshot | None = None
    hit_rate: float = 0.0
    block_reasons: list[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0


def no_op_write_for(app: WorkloadApp, gateway: EnforcementGateway) -> tuple[str, str]:
    """A data-identity UPDATE on the app's first table: ``(sql, table)``."""
    table_name = next(iter(gateway.db.schema.tables))
    table_schema = gateway.db.schema.tables[table_name]
    column = table_schema.columns[0].name
    return f"UPDATE {table_name} SET {column} = {column}", table_name


class WorkloadDriver:
    """Replays request streams through a gateway with N worker threads."""

    def __init__(
        self,
        app: WorkloadApp,
        gateway: EnforcementGateway,
        workers: int = 4,
        write_every: int = 0,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.app = app
        self.gateway = gateway
        self.workers = workers
        self.write_every = write_every
        self._write_sql: str | None = None
        if write_every:
            self._write_sql, _ = no_op_write_for(app, gateway)

    def run(self, requests: Sequence[Request]) -> DriveReport:
        """Replay ``requests``; returns the aggregated report."""
        buckets = self._partition(requests)
        queue: deque[list[Request]] = deque(buckets)
        queue_lock = threading.Lock()
        report = DriveReport(
            requests=len(requests),
            sessions=len(buckets),
            workers=self.workers,
        )
        report_lock = threading.Lock()

        def worker() -> None:
            while True:
                with queue_lock:
                    if not queue:
                        return
                    bucket = queue.popleft()
                self._run_bucket(bucket, report, report_lock)

        threads = [
            threading.Thread(target=worker, name=f"drive-worker-{i}")
            for i in range(min(self.workers, max(len(buckets), 1)))
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.wall_seconds = time.perf_counter() - started
        report.metrics = self.gateway.snapshot()
        report.hit_rate = self.gateway.cache_hit_rate()
        return report

    # -- internals ---------------------------------------------------------------

    def _partition(self, requests: Sequence[Request]) -> list[list[Request]]:
        """Group by session principal, preserving each session's order."""
        buckets: dict[tuple, list[Request]] = {}
        for request in requests:
            key = tuple(sorted(request.session.items()))
            buckets.setdefault(key, []).append(request)
        return list(buckets.values())

    def _run_bucket(
        self,
        bucket: list[Request],
        report: DriveReport,
        report_lock: threading.Lock,
    ) -> None:
        connection: GatewayConnection | None = None
        since_write = 0
        for request in bucket:
            if connection is None:
                bindings = self.app.session_bindings(request.session)
                connection = self.gateway.connect(bindings)
            started = time.perf_counter()
            try:
                handler = self.app.handlers[request.handler]
                outcome = run_handler(
                    handler, connection, request.params, request.session
                )
                with report_lock:
                    if outcome.aborted:
                        report.aborted += 1
                    else:
                        report.completed += 1
            except PolicyViolation as violation:
                with report_lock:
                    report.blocked += 1
                    if len(report.block_reasons) < 32:
                        report.block_reasons.append(str(violation))
            except DbacError:
                with report_lock:
                    report.errors += 1
            finally:
                self.gateway.metrics.observe_stage(
                    "request", time.perf_counter() - started
                )
            since_write += 1
            if self.write_every and since_write >= self.write_every:
                since_write = 0
                assert self._write_sql is not None
                connection.sql(self._write_sql)
                with report_lock:
                    report.writes += 1
