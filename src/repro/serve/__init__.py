"""The serving layer: a multi-session enforcement gateway.

Scales the paper's per-session enforcement proxy to a deployment shape:
one :class:`EnforcementGateway` per process owns a thread-safe
:class:`SharedDecisionCache` (decision templates learned in any session
serve every session, without ever over-allowing), write-driven template
invalidation, per-stage latency metrics, and a worker-pool driver that
replays the bundled application workloads from N concurrent simulated
users. See ``docs/serving.md`` and the E11 benchmark.
"""

from repro.serve.cache import SharedDecisionCache
from repro.serve.driver import DriveReport, WorkloadDriver, no_op_write_for
from repro.serve.gateway import (
    DecisionAuditRecord,
    EnforcementGateway,
    GatewayConfig,
    GatewayConnection,
    PolicyEpoch,
)
from repro.serve.metrics import GatewayMetrics, LatencyHistogram, MetricsSnapshot
from repro.serve.pool import CheckerPool, CheckerPoolError

__all__ = [
    "CheckerPool",
    "CheckerPoolError",
    "DecisionAuditRecord",
    "DriveReport",
    "EnforcementGateway",
    "GatewayConfig",
    "GatewayConnection",
    "GatewayMetrics",
    "PolicyEpoch",
    "LatencyHistogram",
    "MetricsSnapshot",
    "SharedDecisionCache",
    "WorkloadDriver",
    "no_op_write_for",
]
