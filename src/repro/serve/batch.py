"""Batched containment checking across gateway sessions.

:class:`CheckBatcher` funnels cache-miss compliance checks from all of a
gateway's session threads through a *combining lock*: the first thread
to arrive becomes the batch leader and checks inline (zero overhead when
uncontended — no dispatcher thread, no handoff); threads that arrive
while a check is running queue up, and the leader drains the whole queue
as one batch through :meth:`ComplianceChecker.check_batch` before
releasing the role.

Why batching pays: the epoch's compiled artifacts (per-skeleton decision
templates, canonicalization and constraint-closure memos) are shared, so
the first fresh check of a statement shape does the expensive
containment search once and every later same-shaped item in the batch
instantiates the resulting template. Under concurrent load the queue
naturally fills with the near-duplicate statements applications issue in
bursts, which is exactly the shape that amortizes.

Failure containment: a follower that has waited ``timeout_s`` without a
result (a wedged or crashed leader) detaches its ticket and runs the
check itself in-process (``fallbacks`` counter) — a slow batch can delay
a decision but never lose one.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Mapping

from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import Decision
from repro.enforce.trace import Trace
from repro.sqlir import ast

#: Histogram bucket upper bounds (log2); the last bucket is open-ended.
_BUCKETS = (1, 2, 4, 8)


class _Ticket:
    __slots__ = (
        "stmt",
        "bindings",
        "trace",
        "skeleton",
        "event",
        "decision",
        "error",
        "taken",
    )

    def __init__(self, stmt, bindings, trace, skeleton=None):
        self.stmt = stmt
        self.bindings = bindings
        self.trace = trace
        self.skeleton = skeleton
        self.event = threading.Event()
        self.decision: Decision | None = None
        self.error: BaseException | None = None
        #: Set (under the batcher lock) when the leader claims the ticket;
        #: a timed-out follower only self-serves if its ticket was never
        #: taken, so a check is executed exactly once per ticket.
        self.taken = False


class CheckBatcher:
    """Combining-lock batcher over one epoch's compliance checker."""

    def __init__(self, checker: ComplianceChecker, timeout_s: float = 60.0):
        self._checker = checker
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._busy = False
        self._queue: deque[_Ticket] = deque()
        self.batches = 0
        self.checks = 0
        self.fallbacks = 0
        self._size_buckets = {bound: 0 for bound in _BUCKETS}

    def check(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
        skeleton=None,
    ) -> Decision:
        """Check one statement, batching with whatever else is queued.

        ``skeleton`` is an optional precomputed ``skeletonize(stmt)``
        (prepared-statement fast path) forwarded to the checker.
        """
        with self._lock:
            if not self._busy:
                self._busy = True
                ticket = None
            else:
                ticket = _Ticket(stmt, bindings, trace, skeleton)
                self._queue.append(ticket)
        if ticket is None:
            # Leader: check inline, then drain followers until quiet.
            try:
                self._observe(1)
                return self._checker.check(stmt, bindings, trace, skeleton=skeleton)
            finally:
                self._drain()
        if ticket.event.wait(self._timeout_s):
            if ticket.error is not None:
                raise ticket.error
            assert ticket.decision is not None
            return ticket.decision
        # Leader wedged (or a very long batch): detach and self-serve,
        # unless the leader claimed the ticket in the meantime — then the
        # result is coming, wait it out.
        with self._lock:
            orphaned = not ticket.taken
            if orphaned:
                try:
                    self._queue.remove(ticket)
                except ValueError:
                    orphaned = not ticket.taken  # claimed between checks
        if not orphaned:
            ticket.event.wait()
            if ticket.error is not None:
                raise ticket.error
            assert ticket.decision is not None
            return ticket.decision
        self.fallbacks += 1
        return self._checker.check(stmt, bindings, trace, skeleton=skeleton)

    def _drain(self) -> None:
        """Leader duty: serve queued batches, then release the role."""
        while True:
            with self._lock:
                if not self._queue:
                    self._busy = False
                    return
                batch = list(self._queue)
                self._queue.clear()
                for ticket in batch:
                    ticket.taken = True
            self._observe(len(batch))
            for ticket in batch:
                try:
                    ticket.decision = self._checker.check(
                        ticket.stmt,
                        ticket.bindings,
                        ticket.trace,
                        skeleton=ticket.skeleton,
                    )
                except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                    ticket.error = exc
                ticket.event.set()

    def _observe(self, size: int) -> None:
        self.batches += 1
        self.checks += size
        for bound in _BUCKETS:
            if size <= bound or bound == _BUCKETS[-1]:
                self._size_buckets[bound] += 1
                break

    def stats(self) -> dict[str, int]:
        """Flat counters (merged into the gateway snapshot as ``batch_*``)."""
        counters = {
            "batches": self.batches,
            "checks": self.checks,
            "fallbacks": self.fallbacks,
        }
        for bound, count in self._size_buckets.items():
            counters[f"size_{bound}"] = count
        return counters
