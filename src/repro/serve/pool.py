"""A pool of warm checker processes: the multicore miss path.

Cache misses are where the gateway burns CPU — a full compliance check
(translation, view descriptor enumeration, containment search) per miss —
and under the GIL all of it serializes onto one core no matter how many
driver threads are live. :class:`CheckerPool` moves the miss path into
worker *processes*: each worker builds its
:class:`~repro.enforce.checker.ComplianceChecker` exactly once (policy
and schema ship at spawn time) and then sits on a duplex pipe answering
check requests, so steady-state dispatch cost is one small message per
check, not one checker construction.

Wire format per check (all plain picklable data):

* the statement as **SQL text** — bound statements print losslessly
  (literals inline) and re-parse on the worker, which is both smaller
  and faster than pickling the AST;
* the session trace as **incremental deltas**: the parent keeps a cursor
  per (worker, session) into the session's
  :attr:`~repro.enforce.trace.Trace.events` log and ships only the
  events the worker has not seen. The worker replays them into a
  :class:`_TraceReplica` — an exact reconstruction of the fact list,
  including the recency reordering the checker's fact selection depends
  on — so a long session's trace is never re-pickled whole.

Failure containment: a worker that dies or stops answering is killed and
respawned (its replicas and the parent-side cursors for it reset — the
delta protocol re-syncs from zero on the next check), and the dispatch
raises :class:`CheckerPoolError`, which the gateway catches to fall back
to a plain in-process check. The pool can stall a caller, never wedge
the gateway.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections.abc import Mapping, Sequence

from repro.enforce.decision import Decision
from repro.relalg.cq import Atom
from repro.sqlir import ast
from repro.sqlir.printer import to_sql
from repro.util.errors import DbacError

_STOP = ("stop",)


class CheckerPoolError(DbacError):
    """A pooled check could not be completed; callers should fall back."""


class _TraceReplica:
    """A worker-side reconstruction of one session's certified facts.

    Replays the parent trace's event log verbatim: ``add`` appends,
    ``refresh`` moves to the end. Because the parent only emits events
    for mutations it actually performed (capped adds emit nothing), the
    replica's fact list — contents *and* order — matches the parent's
    exactly at every cursor position. Only the fact list is replicated;
    the checker reads nothing else from a trace.
    """

    __slots__ = ("_facts", "_fact_set", "applied")

    def __init__(self) -> None:
        self._facts: list[Atom] = []
        self._fact_set: set[Atom] = set()
        self.applied = 0

    def apply(self, events: Sequence[tuple[str, Atom]]) -> None:
        for op, fact in events:
            if op == "add":
                if fact not in self._fact_set:
                    self._fact_set.add(fact)
                    self._facts.append(fact)
            elif op == "refresh":
                if fact in self._fact_set:
                    self._facts.remove(fact)
                    self._facts.append(fact)
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown trace event {op!r}")
            self.applied += 1

    @property
    def facts(self) -> tuple[Atom, ...]:
        return tuple(self._facts)

    def relevant_facts(self, relations: set[str]) -> list[Atom]:
        return [fact for fact in self._facts if fact.rel in relations]


def _worker_main(
    conn, schema, policy, history_enabled, max_candidates, compile_checks
) -> None:
    """Worker loop: build the checker once, answer checks until stopped.

    With ``compile_checks`` the worker compiles the policy (and grows a
    private skeleton store) exactly once at spawn — the epoch hands each
    worker the compiled policy for its whole lifetime, instead of the
    seed behavior of re-deriving per-check state every time.
    """
    from repro.enforce.checker import ComplianceChecker
    from repro.relalg import memo
    from repro.relalg.compile import compile_policy
    from repro.sqlir.parser import parse_select

    checker = ComplianceChecker(
        schema,
        policy,
        history_enabled=history_enabled,
        max_candidates=max_candidates,
        compiled=compile_policy(schema, policy) if compile_checks else None,
    )
    replicas: dict[int, _TraceReplica] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, token, bindings, sql, base, events, use_trace, allow_compiled = message
        replica: _TraceReplica | None = None
        try:
            if use_trace:
                replica = replicas.get(token)
                if replica is None:
                    replica = replicas[token] = _TraceReplica()
                if replica.applied != base:
                    raise CheckerPoolError(
                        f"trace cursor mismatch for session {token}:"
                        f" worker at {replica.applied}, parent sent {base}"
                    )
                # Apply before anything can fail so the reply's cursor is
                # truthful even when the check itself errors.
                replica.apply(events)
            decision = checker.check(
                parse_select(sql), dict(bindings), replica, allow_compiled=allow_compiled
            )
            reply = (
                "ok",
                decision,
                _applied(replica),
                memo.memo_stats(),
                _compiled_counters(checker),
            )
        except Exception as exc:  # noqa: BLE001 - shipped back to the parent
            reply = ("err", f"{type(exc).__name__}: {exc}", _applied(replica))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def _compiled_counters(checker) -> dict[str, int]:
    """The worker's compiled-path counters (empty when compilation is off)."""
    skeletons = checker.skeletons
    if skeletons is None:
        return {}
    return {
        "compiled_hits": skeletons.compiled_hits,
        "compiled_misses": skeletons.compiled_misses,
        "compiled_templates": skeletons.size,
        "compiled_blocks": skeletons.blocks_stored,
    }


def _applied(replica: _TraceReplica | None) -> int:
    return replica.applied if replica is not None else 0


class _WorkerHandle:
    """Parent-side handle for one worker process (mutated on restart)."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn


class CheckerPool:
    """Dispatches compliance checks to warm worker processes."""

    def __init__(
        self,
        schema,
        policy,
        workers: int,
        history_enabled: bool = True,
        max_candidates: int = 2000,
        timeout_s: float = 60.0,
        compile_checks: bool = True,
    ):
        if workers < 1:
            raise ValueError("CheckerPool needs at least one worker")
        self._schema = schema
        self._policy = policy
        self._history_enabled = history_enabled
        self._max_candidates = max_candidates
        self._timeout_s = timeout_s
        self._compile_checks = compile_checks
        self.workers = workers
        self.tasks_dispatched = 0
        self.worker_restarts = 0
        self.errors = 0
        self._closed = False
        # Per-(worker index, session token) cursor into the session's
        # trace event log: how many events that worker has applied.
        self._cursors: dict[tuple[int, int], int] = {}
        # Latest memo / compiled-path counters reported by each worker
        # (monotonic within a worker's lifetime; summed pool-wide).
        self._worker_memo: dict[int, dict[str, int]] = {}
        self._worker_compiled: dict[int, dict[str, int]] = {}
        self._handles = [self._spawn(index) for index in range(workers)]
        self._idle: list[_WorkerHandle] = list(self._handles)
        self._condition = threading.Condition()

    # -- the one public operation -------------------------------------------------

    def check(
        self,
        token: int,
        bindings: Mapping[str, object],
        stmt: ast.Select,
        trace,
        allow_compiled: bool = True,
    ) -> Decision:
        """Run one compliance check on a pooled worker.

        ``token`` identifies the session (its trace) for delta shipping;
        ``trace`` is the parent-side :class:`~repro.enforce.trace.Trace`
        or ``None`` for history-free checks. Raises
        :class:`CheckerPoolError` when the pool cannot produce a decision
        (worker died twice, timed out, or errored); callers fall back to
        in-process checking.
        """
        sql = to_sql(stmt)
        handle = self._acquire()
        try:
            return self._dispatch(handle, token, bindings, sql, trace, allow_compiled)
        finally:
            self._release(handle)

    # -- stats --------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Pool counters plus summed worker-side memoization counters."""
        with self._condition:
            flat = {
                "workers": self.workers,
                "tasks_dispatched": self.tasks_dispatched,
                "worker_restarts": self.worker_restarts,
                "errors": self.errors,
            }
            for counters in self._worker_memo.values():
                for name, value in counters.items():
                    flat[f"memo_{name}"] = flat.get(f"memo_{name}", 0) + value
            for counters in self._worker_compiled.values():
                for name, value in counters.items():
                    flat[name] = flat.get(name, 0) + value
        return flat

    def close(self) -> None:
        """Stop every worker; idempotent."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            self._condition.notify_all()
        for handle in self._handles:
            try:
                handle.conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()

    # -- internals ----------------------------------------------------------------

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._schema,
                self._policy,
                self._history_enabled,
                self._max_candidates,
                self._compile_checks,
            ),
            name=f"checker-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn)

    def _acquire(self) -> _WorkerHandle:
        with self._condition:
            while not self._idle:
                if self._closed:
                    raise CheckerPoolError("pool is closed")
                self._condition.wait()
            if self._closed:
                raise CheckerPoolError("pool is closed")
            return self._idle.pop()

    def _release(self, handle: _WorkerHandle) -> None:
        with self._condition:
            self._idle.append(handle)
            self._condition.notify()

    def _restart(self, handle: _WorkerHandle) -> None:
        """Kill and respawn a worker in place; resets its trace cursors."""
        try:
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        except (OSError, ValueError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        replacement = self._spawn(handle.index)
        handle.process = replacement.process
        handle.conn = replacement.conn
        with self._condition:
            self.worker_restarts += 1
            self._worker_memo.pop(handle.index, None)
            self._worker_compiled.pop(handle.index, None)
            for key in [k for k in self._cursors if k[0] == handle.index]:
                del self._cursors[key]

    def _dispatch(
        self,
        handle: _WorkerHandle,
        token: int,
        bindings: Mapping[str, object],
        sql: str,
        trace,
        allow_compiled: bool = True,
        retried: bool = False,
    ) -> Decision:
        use_trace = trace is not None
        if use_trace:
            base = self._cursors.get((handle.index, token), 0)
            events = list(trace.events[base:])
        else:
            base, events = 0, []
        message = (
            "check",
            token,
            tuple(sorted(bindings.items())),
            sql,
            base,
            events,
            use_trace,
            allow_compiled,
        )
        try:
            handle.conn.send(message)
            if not handle.conn.poll(self._timeout_s):
                raise TimeoutError(f"worker {handle.index} unresponsive")
            reply = handle.conn.recv()
        except (BrokenPipeError, EOFError, OSError, TimeoutError) as exc:
            self._restart(handle)
            if retried:
                raise CheckerPoolError(
                    f"worker {handle.index} failed twice: {exc}"
                ) from exc
            return self._dispatch(
                handle, token, bindings, sql, trace, allow_compiled, retried=True
            )
        if reply[0] == "ok":
            _, decision, applied, memo_counters, compiled_counters = reply
            with self._condition:
                self.tasks_dispatched += 1
                self._worker_memo[handle.index] = memo_counters
                if compiled_counters:
                    self._worker_compiled[handle.index] = compiled_counters
                if use_trace:
                    self._cursors[(handle.index, token)] = applied
            return decision
        _, error, applied = reply
        with self._condition:
            self.errors += 1
            if use_trace:
                # The worker applied the delta before failing (or reported
                # its unchanged cursor); keep the parent's view truthful.
                self._cursors[(handle.index, token)] = applied
        raise CheckerPoolError(f"worker {handle.index}: {error}")
