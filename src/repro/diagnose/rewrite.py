"""Query-narrowing patches via maximally contained rewritings (§5.2.2).

Narrowing a blocked query ``Q`` reduces to finding a contained rewriting
of ``Q`` using the policy views (Levy et al. '95); a *maximally*
contained rewriting returns as much data as possible without violating
the policy. Each maximal rewriting's expansion is minimized, rendered
back to SQL over base tables, and wrapped in a validated
:class:`~repro.diagnose.patches.QueryNarrowingPatch` — the form a
developer can paste into the offending handler.
"""

from __future__ import annotations

from repro.diagnose.patches import QueryNarrowingPatch
from repro.relalg.cq import CQ
from repro.relalg.minimize import minimize_cq
from repro.relalg.render import cq_to_select
from repro.relalg.rewrite import ViewDef, maximally_contained_rewritings
from repro.relalg.translate import SchemaInfo
from repro.sqlir.printer import to_sql
from repro.util.errors import DbacError


def narrowing_patches(
    query: CQ,
    original_sql: str,
    views: list[ViewDef],
    schema: SchemaInfo,
    max_candidates: int = 2000,
    max_patches: int = 3,
) -> list[QueryNarrowingPatch]:
    """Generate narrowing patches for a blocked query.

    Trivial narrowings (an unsatisfiable or empty rewriting) never reach
    the caller: the rewriting engine requires a satisfiable expansion,
    and rendering drops candidates with no SQL form.
    """
    patches: list[QueryNarrowingPatch] = []
    for rewriting in maximally_contained_rewritings(
        query, views, max_candidates=max_candidates
    ):
        narrowed = minimize_cq(rewriting.expansion)
        try:
            stmt = cq_to_select(narrowed, schema)
        except DbacError:
            continue
        patches.append(
            QueryNarrowingPatch(
                original_sql=original_sql,
                narrowed_sql=to_sql(stmt),
                narrowed_stmt=stmt,
                rationale=f"maximally contained in views via {rewriting.describe()}",
            )
        )
        if len(patches) >= max_patches:
            break
    return patches
