"""Violation diagnosis (§5): what to do when a query gets blocked.

* :mod:`repro.diagnose.counterexample` — a proof-of-violation: two
  databases agreeing on every view (and the trace) but disagreeing on the
  blocked query.
* :mod:`repro.diagnose.rewrite` — query-narrowing patches (§5.2.2, form
  1): maximally contained rewritings of the blocked query using the
  policy views, rendered back to SQL the developer can paste in.
* :mod:`repro.diagnose.abduce` — access-check patches (§5.2.2, form 2):
  abductively inferred statements about database content that, once
  checked by the application, make the blocked query compliant.
* :mod:`repro.diagnose.patches` — the patch objects and their validation.
* :mod:`repro.diagnose.report` — ties everything into a human-readable
  diagnosis, including generated policy patches (§5.2.1) and the
  paper's "who is the likely culprit" heuristic.
"""

from repro.diagnose.counterexample import Counterexample, find_counterexample
from repro.diagnose.patches import (
    AccessCheckPatch,
    PolicyPatch,
    QueryNarrowingPatch,
)
from repro.diagnose.rewrite import narrowing_patches
from repro.diagnose.abduce import access_check_patches
from repro.diagnose.report import DiagnosisReport, diagnose

__all__ = [
    "AccessCheckPatch",
    "Counterexample",
    "DiagnosisReport",
    "PolicyPatch",
    "QueryNarrowingPatch",
    "access_check_patches",
    "diagnose",
    "find_counterexample",
    "narrowing_patches",
]
