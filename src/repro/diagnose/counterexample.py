"""Counterexample generation: the proof that a query is non-compliant.

For a query to be allowed, its answer must be uniquely determined by the
answers to the views (given the trace); a counterexample refutes this — a
pair of databases on which every view (and every certified trace fact)
agrees, but the blocked query's answer differs (§5.1, footnote 3).

Construction: freeze the query (with trace facts) into a canonical
instance ``D1`` where it returns its frozen head row, then perturb ``D1``
into ``D2`` without disturbing the view images:

* delete a tuple the query's match uses (works when the tuple is
  invisible to every view — e.g. another user's attendance row);
* mutate a single hidden cell (works when the views project the tuple
  but not that column — e.g. a salary);
* as a fallback, try pairs of deletions.

The paper's §5.1 point — that a raw counterexample is hard for a human
to act on — is what the patch generators address; the counterexample
remains the machine-checkable core of the diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluate.answers import Instance, evaluate_cq
from repro.relalg.cq import CQ, Atom, Const
from repro.relalg.frozen import freeze
from repro.relalg.rewrite import ViewDef
from repro.util.errors import DbacError


@dataclass
class Counterexample:
    """Two instances agreeing on views and trace, disagreeing on the query."""

    d1: Instance
    d2: Instance
    query_answer_d1: set[tuple]
    query_answer_d2: set[tuple]
    perturbation: str

    def describe(self) -> str:
        lines = [
            "counterexample (views agree, query answers differ):",
            f"  perturbation: {self.perturbation}",
            f"  query answer on D1: {sorted(self.query_answer_d1)!r}",
            f"  query answer on D2: {sorted(self.query_answer_d2)!r}",
        ]
        for name, instance in (("D1", self.d1), ("D2", self.d2)):
            lines.append(f"  {name}:")
            for rel in sorted(instance):
                for row in sorted(instance[rel], key=repr):
                    lines.append(f"    {rel}{row!r}")
        return "\n".join(lines)


def find_counterexample(
    query: CQ,
    views: list[ViewDef],
    facts: list[Atom] | None = None,
    max_pairs: int = 200,
) -> Counterexample | None:
    """Search for a counterexample to the compliance of ``query``.

    ``facts`` are certified trace atoms both instances must satisfy.
    Returns None when no counterexample is found within the search
    budget — which, given the checker's conservatism, can legitimately
    happen for a blocked-but-actually-compliant query.
    """
    facts = facts or []
    base = CQ(
        head=query.head,
        body=query.body + tuple(facts),
        comps=query.comps,
        head_names=query.head_names,
        name=(query.name or "Q") + "_cx",
    )
    try:
        frozen = freeze(base)
    except DbacError:
        return None
    d1: Instance = {rel: set(rows) for rel, rows in frozen.facts.items()}
    answer_d1 = evaluate_cq(query, d1)
    if not answer_d1:
        return None
    reference_images = _images(views, d1)

    def check(d2: Instance, label: str) -> Counterexample | None:
        if _images(views, d2) != reference_images:
            return None
        if not _facts_hold(facts, d2):
            return None
        answer_d2 = evaluate_cq(query, d2)
        if answer_d2 == answer_d1:
            return None
        return Counterexample(
            d1=d1,
            d2=d2,
            query_answer_d1=answer_d1,
            query_answer_d2=answer_d2,
            perturbation=label,
        )

    tuples = [(rel, row) for rel in sorted(d1) for row in sorted(d1[rel], key=repr)]

    # Single deletions.
    attempts = 0
    for rel, row in tuples:
        if attempts >= max_pairs:
            break
        attempts += 1
        d2 = _without(d1, [(rel, row)])
        found = check(d2, f"deleted {rel}{row!r}")
        if found:
            return found

    # Single hidden-cell mutations.
    fresh = 990_001
    for rel, row in tuples:
        for position in range(len(row)):
            if attempts >= max_pairs:
                break
            attempts += 1
            mutated = list(row)
            mutated[position] = (
                fresh if isinstance(row[position], int | float) else f"mut_{fresh}"
            )
            fresh += 1
            d2 = _without(d1, [(rel, row)])
            d2.setdefault(rel, set()).add(tuple(mutated))
            found = check(d2, f"mutated column {position} of {rel}{row!r}")
            if found:
                return found

    # Pairs of deletions.
    for i, (rel_a, row_a) in enumerate(tuples):
        for rel_b, row_b in tuples[i + 1 :]:
            if attempts >= max_pairs:
                return None
            attempts += 1
            d2 = _without(d1, [(rel_a, row_a), (rel_b, row_b)])
            found = check(d2, f"deleted {rel_a}{row_a!r} and {rel_b}{row_b!r}")
            if found:
                return found
    return None


def _images(views: list[ViewDef], instance: Instance) -> dict[str, frozenset]:
    return {view.name: frozenset(evaluate_cq(view.cq, instance)) for view in views}


def _facts_hold(facts: list[Atom], instance: Instance) -> bool:
    """Every certified fact must have a match (labeled nulls are ∃)."""
    for fact in facts:
        rows = instance.get(fact.rel, set())
        matched = False
        for row in rows:
            if len(row) != len(fact.args):
                continue
            if all(
                (not isinstance(arg, Const)) or arg.value == value
                for arg, value in zip(fact.args, row)
            ):
                matched = True
                break
        if not matched:
            return False
    return True


def _without(instance: Instance, removals: list[tuple[str, tuple]]) -> Instance:
    out = {rel: set(rows) for rel, rows in instance.items()}
    for rel, row in removals:
        out.get(rel, set()).discard(row)
    return out
