"""Access-check synthesis via abductive inference (§5.2.2).

The task: find a statement ``H`` about database content such that

1. once known (with the existing trace), ``H`` makes the blocked query
   compliant, and
2. ``H`` is consistent with the trace.

This is abduction — "an explanatory hypothesis for a desired outcome"
(Dillig et al.), the desired outcome being policy compliance. Hypotheses
are generated from *failed view matches*: for each policy view, partial
homomorphisms from the view body onto the query body are enumerated;
the view atoms left unmapped, instantiated through the partial mapping,
are exactly what is missing for that view to justify the query. Each
hypothesis is validated by re-running the compliance check with the
hypothesis atoms taken as certified facts.

For Example 2.1 with ``Q2`` issued alone, the synthesized check is
``SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2`` — the paper's
"the Attendance table contains row (UId=1, EId=2)".
"""

from __future__ import annotations

from repro.diagnose.patches import AccessCheckPatch
from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, Atom, Const, Param, Term, Var, fresh_var_factory
from repro.relalg.rewrite import ViewDef, find_equivalent_rewriting
from repro.relalg.render import cq_to_select
from repro.relalg.translate import SchemaInfo
from repro.sqlir.printer import to_sql
from repro.util.errors import DbacError


def access_check_patches(
    query: CQ,
    views: list[ViewDef],
    schema: SchemaInfo,
    existing_facts: list[Atom] | None = None,
    max_patches: int = 3,
) -> list[AccessCheckPatch]:
    """Synthesize validated access-check patches for a blocked query."""
    existing_facts = existing_facts or []
    closure = ConstraintSet(query.comps)
    if not closure.consistent():
        return []
    hypotheses = _candidate_hypotheses(query, views, closure)
    patches: list[AccessCheckPatch] = []
    seen_sql: set[str] = set()
    for hypothesis in hypotheses:
        patch = _validate(query, views, schema, existing_facts, hypothesis)
        if patch is None or patch.check_sql in seen_sql:
            continue
        seen_sql.add(patch.check_sql)
        patches.append(patch)
        if len(patches) >= max_patches:
            break
    return patches


def _candidate_hypotheses(
    query: CQ, views: list[ViewDef], closure: ConstraintSet
) -> list[tuple[Atom, ...]]:
    """Unmapped view-body remainders under partial homomorphisms.

    Smaller hypotheses first — the least the developer has to check.
    """
    fresh = fresh_var_factory("hx")
    out: list[tuple[Atom, ...]] = []
    seen: set[tuple[Atom, ...]] = set()
    for view in views:
        view_cq = view.cq.rename_apart({v.name for v in query.variables()})
        body = view_cq.body

        def emit(phi: dict[Var, Term], mapped: frozenset[int]) -> None:
            unmapped = [a for i, a in enumerate(body) if i not in mapped]
            if not unmapped or len(unmapped) == len(body):
                return
            # Resolve the remainder's variables through the *combined*
            # constraints: the query's own comparisons plus the view's
            # comparisons under the partial mapping. This is what pins
            # V2's Attendance remainder to (UId = 1, EId = 2) in the
            # paper's example rather than leaving fresh existentials.
            combined = ConstraintSet(
                list(query.comps) + [c.substitute(phi) for c in view_cq.comps]
            )
            if not combined.consistent():
                return
            extension = dict(phi)
            for atom in unmapped:
                for arg in atom.args:
                    if isinstance(arg, Var) and arg not in extension:
                        canon = combined.canon(arg)
                        if isinstance(canon, Const):
                            extension[arg] = canon
                            continue
                        anchor = next(
                            (
                                q_var
                                for q_var in sorted(
                                    query.body_variables(), key=lambda v: v.name
                                )
                                if combined.equal(arg, q_var)
                            ),
                            None,
                        )
                        extension[arg] = anchor if anchor is not None else fresh()
            hypothesis = tuple(
                _ground_atom(atom.substitute(extension), closure) for atom in unmapped
            )
            if hypothesis not in seen:
                seen.add(hypothesis)
                out.append(hypothesis)

        def extend(index: int, phi: dict[Var, Term], mapped: frozenset[int]) -> None:
            if index == len(body):
                if mapped:
                    emit(phi, mapped)
                return
            view_atom = body[index]
            extend(index + 1, phi, mapped)
            for subgoal in query.body:
                extension = _match(view_atom, subgoal, phi, closure)
                if extension is None:
                    continue
                phi.update(extension)
                extend(index + 1, phi, mapped | {index})
                for key in extension:
                    del phi[key]

        extend(0, {}, frozenset())
    out.sort(key=len)
    return out


def _match(view_atom: Atom, subgoal: Atom, phi, closure) -> dict[Var, Term] | None:
    if view_atom.rel != subgoal.rel or len(view_atom.args) != len(subgoal.args):
        return None
    extension: dict[Var, Term] = {}
    for view_arg, q_arg in zip(view_atom.args, subgoal.args):
        if isinstance(view_arg, Var):
            bound = phi.get(view_arg, extension.get(view_arg))
            if bound is None:
                extension[view_arg] = q_arg
            elif not closure.equal(bound, q_arg):
                return None
        elif not closure.equal(view_arg, q_arg):
            return None
    return extension


def _ground_atom(atom: Atom, closure: ConstraintSet) -> Atom:
    """Pin arguments to constants where the query's closure forces them."""
    args = []
    for arg in atom.args:
        if isinstance(arg, Var):
            canon = closure.canon(arg)
            args.append(canon if isinstance(canon, Const) else arg)
        else:
            args.append(arg)
    return Atom(atom.rel, tuple(args))


def _validate(
    query: CQ,
    views: list[ViewDef],
    schema: SchemaInfo,
    existing_facts: list[Atom],
    hypothesis: tuple[Atom, ...],
) -> AccessCheckPatch | None:
    """Does knowing the hypothesis make the query compliant?"""
    facts = list(existing_facts) + list(hypothesis)
    augmented = CQ(
        head=query.head,
        body=query.body + tuple(hypothesis),
        comps=query.comps,
        head_names=query.head_names,
        name=(query.name or "Q") + "_hyp",
    )
    rewriting = find_equivalent_rewriting(augmented, views, facts=facts)
    if rewriting is None:
        return None
    # Variables the hypothesis shares with the query body stand for "the
    # same value the query uses"; in the rendered check they become named
    # parameters the application binds alongside the original query.
    query_vars = query.body_variables()
    render_map = {
        var: Param(f"Bind_{var.name.replace('.', '_').lstrip('$')}")
        for atom in hypothesis
        for var in atom.variables()
        if var in query_vars
    }
    rendered_atoms = tuple(atom.substitute(render_map) for atom in hypothesis)
    check_cq = CQ(
        head=(Const(1),),
        body=rendered_atoms,
        comps=(),
        head_names=("present",),
        name="check",
    )
    try:
        stmt = cq_to_select(check_cq, schema)
    except DbacError:
        return None
    statement = " and ".join(f"a row {a!r} exists" for a in rendered_atoms)
    return AccessCheckPatch(
        check_sql=to_sql(stmt),
        check_stmt=stmt,
        statement=statement,
        hypothesis_facts=list(hypothesis),
    )
