"""The diagnosis entry point: from a blocked query to actionable output.

``diagnose()`` assembles everything §5 proposes for one violation:

1. a machine-checkable counterexample (proof of violation),
2. policy patches (§5.2.1) — a generalized view that would allow the
   query, generated extraction-style from the query itself, flagged when
   it looks unreasonably broad,
3. query-narrowing patches (§5.2.2 form 1),
4. access-check patches (§5.2.2 form 2),

plus the paper's triage heuristic: if every policy patch looks broad and
application-side patches exist, the application is the likely culprit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnose.abduce import access_check_patches
from repro.diagnose.counterexample import Counterexample, find_counterexample
from repro.diagnose.patches import AccessCheckPatch, PolicyPatch, QueryNarrowingPatch
from repro.diagnose.rewrite import narrowing_patches
from repro.enforce.trace import Trace
from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.cq import CQ, Const, Param, Term, Var
from repro.relalg.render import cq_to_select
from repro.relalg.translate import SchemaInfo, translate_select
from repro.sqlir import ast
from repro.sqlir.printer import to_sql
from repro.util.errors import DbacError, TranslationError


@dataclass
class DiagnosisReport:
    """Everything the operator sees for one blocked query."""

    sql: str
    counterexample: Counterexample | None
    policy_patches: list[PolicyPatch] = field(default_factory=list)
    narrowing_patches: list[QueryNarrowingPatch] = field(default_factory=list)
    access_check_patches: list[AccessCheckPatch] = field(default_factory=list)
    verdict: str = ""

    def describe(self) -> str:
        lines = [f"diagnosis for blocked query: {self.sql}", f"verdict: {self.verdict}"]
        if self.counterexample is not None:
            lines.append(self.counterexample.describe())
        else:
            lines.append("no counterexample found (checker conservatism possible)")
        for patch in self.policy_patches:
            lines.append(patch.describe())
        for patch in self.narrowing_patches:
            lines.append(patch.describe())
        for patch in self.access_check_patches:
            lines.append(patch.describe())
        return "\n".join(lines)


def diagnose(
    stmt: ast.Select,
    bindings: dict[str, object],
    policy: Policy,
    schema: SchemaInfo,
    trace: Trace | None = None,
) -> DiagnosisReport:
    """Produce a full diagnosis for a blocked (bound) SELECT."""
    sql = to_sql(stmt)
    try:
        ucq = translate_select(stmt, schema)
    except TranslationError as exc:
        return DiagnosisReport(
            sql=sql,
            counterexample=None,
            verdict=f"query is outside the analyzable fragment: {exc}",
        )
    query = ucq.disjuncts[0]
    views = policy.view_defs(bindings)
    facts = list(trace.facts) if trace is not None else []

    counterexample = find_counterexample(query, views, facts)
    policy_patch = _policy_patch(stmt, query, bindings, policy, schema, trace)
    narrowings = narrowing_patches(query, sql, views, schema)
    narrowings = [
        patch
        for patch in narrowings
        if patch.validates(bindings, policy, schema, trace)
    ]
    checks = access_check_patches(query, views, schema, facts)
    checks = [
        patch for patch in checks if patch.validates(stmt, bindings, policy, schema)
    ]

    verdict = _verdict(policy_patch, narrowings, checks)
    return DiagnosisReport(
        sql=sql,
        counterexample=counterexample,
        policy_patches=[policy_patch] if policy_patch else [],
        narrowing_patches=narrowings,
        access_check_patches=checks,
        verdict=verdict,
    )


def _policy_patch(
    stmt: ast.Select,
    query: CQ,
    bindings: dict[str, object],
    policy: Policy,
    schema: SchemaInfo,
    trace: Trace | None,
) -> PolicyPatch | None:
    """Generate a policy patch extraction-style from the query itself.

    Constants equal to a session binding become the policy parameter;
    other constants are generalized into exposed variables (the
    application presumably ranges over them). The result is the most
    specific single view that allows the query and its relatives.
    """
    reverse = {value: name for name, value in bindings.items()}
    generalized_comps = []
    head: list[Term] = [t for t in query.head if isinstance(t, Var)]
    head_names = [
        query.head_names[i] if i < len(query.head_names) else f"c{i}"
        for i, t in enumerate(query.head)
        if isinstance(t, Var)
    ]
    def promote(var: Var) -> None:
        if var not in head:
            head.append(var)
            head_names.append(var.name.rsplit(".", 1)[-1])

    for comp in query.comps:
        left, right = comp.left, comp.right
        # Session-bound constants become the policy parameter.
        if isinstance(left, Const) and left.value in reverse:
            left = Param(reverse[left.value])
        if isinstance(right, Const) and right.value in reverse:
            right = Param(reverse[right.value])
        # An equality pinning a variable to some other constant is
        # generalized away: the application presumably ranges over that
        # value, so the view exposes the column instead.
        if comp.op == "=":
            if isinstance(left, Const) and isinstance(right, Var):
                promote(right)
                continue
            if isinstance(right, Const) and isinstance(left, Var):
                promote(left)
                continue
        if left == right and comp.op in ("=", "<="):
            continue
        generalized_comps.append(type(comp)(comp.op, left, right))
    if not head:
        head = [Const(1)]
        head_names = ["present"]
    unique_head = list(dict.fromkeys(head))
    candidate = CQ(
        head=tuple(unique_head),
        body=query.body,
        comps=tuple(generalized_comps),
        head_names=tuple(head_names[: len(unique_head)]),
        name="patch",
    )
    try:
        select = cq_to_select(candidate, schema)
    except DbacError:
        return None
    try:
        view = View(f"Vpatch_{len(policy) + 1}", select, schema, "generated policy patch")
    except Exception:
        return None
    looks_broad = not view.param_names
    patch = PolicyPatch(
        add_views=[view],
        rationale="generalized from the blocked query",
        looks_broad=looks_broad,
    )
    if not patch.validates(stmt, bindings, policy, schema, trace):
        return None
    return patch


def _verdict(
    policy_patch: PolicyPatch | None,
    narrowings: list[QueryNarrowingPatch],
    checks: list[AccessCheckPatch],
) -> str:
    app_side = bool(narrowings or checks)
    if policy_patch is not None and not policy_patch.looks_broad:
        if app_side:
            return (
                "either side can fix this: a narrow policy patch exists, and"
                " so do application-side patches"
            )
        return "likely a policy gap: a narrow policy patch exists"
    if policy_patch is not None and policy_patch.looks_broad and app_side:
        return (
            "likely an application bug: every policy patch is broad, while"
            " application-side patches exist (§5.2 heuristic)"
        )
    if app_side:
        return "application-side patches available"
    if policy_patch is not None:
        return "only a broad policy patch found — review the application"
    return "no automatic patch found; see the counterexample"
