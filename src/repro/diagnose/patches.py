"""Patch objects: the three remediation forms of §5.2.

* :class:`PolicyPatch` — add/replace views so the blocked query becomes
  compliant (§5.2.1).
* :class:`QueryNarrowingPatch` — replace the query with a narrowed one
  whose answer is covered by the policy (§5.2.2, form 1).
* :class:`AccessCheckPatch` — wrap the query in an additional check on
  database content; once the check passes, the original query is
  compliant given the certified fact (§5.2.2, form 2).

Every patch validates itself against a
:class:`~repro.enforce.checker.ComplianceChecker`, so a diagnosis report
only ever shows patches that provably resolve the violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enforce.checker import ComplianceChecker
from repro.enforce.trace import Trace
from repro.policy.policy import Policy
from repro.policy.view import View
from repro.sqlir import ast


@dataclass
class PolicyPatch:
    """Add views to the policy so the query becomes allowed."""

    add_views: list[View]
    rationale: str = ""
    looks_broad: bool = False

    def apply(self, policy: Policy) -> Policy:
        patched = Policy(policy.views, name=policy.name + "+patch")
        for view in self.add_views:
            patched.add(view)
        return patched

    def validates(
        self,
        stmt: ast.Select,
        bindings: dict[str, object],
        policy: Policy,
        schema,
        trace: Trace | None = None,
    ) -> bool:
        checker = ComplianceChecker(schema, self.apply(policy))
        return checker.check(stmt, bindings, trace).allowed

    def describe(self) -> str:
        lines = [f"policy patch ({self.rationale}):"]
        for view in self.add_views:
            lines.append(f"  + view {view.name}: {view.sql}")
        if self.looks_broad:
            lines.append(
                "  ! this view is broad (unparameterized); if it looks"
                " unreasonable, the application — not the policy — is the"
                " likely culprit"
            )
        return "\n".join(lines)


@dataclass
class QueryNarrowingPatch:
    """Replace the blocked query with a policy-compliant narrowing."""

    original_sql: str
    narrowed_sql: str
    narrowed_stmt: ast.Select
    rationale: str = ""

    def validates(
        self,
        bindings: dict[str, object],
        policy: Policy,
        schema,
        trace: Trace | None = None,
    ) -> bool:
        checker = ComplianceChecker(schema, policy)
        return checker.check(self.narrowed_stmt, bindings, trace).allowed

    def describe(self) -> str:
        return (
            f"query-narrowing patch ({self.rationale}):\n"
            f"  - {self.original_sql}\n"
            f"  + {self.narrowed_sql}"
        )


@dataclass
class AccessCheckPatch:
    """Guard the blocked query with an application-side existence check.

    ``check_sql`` is an ordinary SELECT the application runs first; a
    non-empty result certifies the hypothesis ``statement`` about the
    database, after which the original query is compliant. Per §5.2.2,
    the check is a condition on database content, so it can be added in
    any application language.
    """

    check_sql: str
    check_stmt: ast.Select
    statement: str
    hypothesis_facts: list = field(default_factory=list)

    def validates(
        self,
        stmt: ast.Select,
        bindings: dict[str, object],
        policy: Policy,
        schema,
    ) -> bool:
        """Replay the patched flow: run the check, then re-vet the query."""
        checker = ComplianceChecker(schema, policy)
        trace = Trace()
        # The check query itself must be compliant...
        if not checker.check(self.check_stmt, bindings, trace).allowed:
            return False
        # ... and, assuming it returns a row (certifying the hypothesis
        # facts), the original query must become compliant.
        from repro.engine.executor import Result
        from repro.relalg.translate import translate_select

        check_cq = translate_select(self.check_stmt, schema).disjuncts[0]
        synthetic = Result(columns=["c"], rows=[(1,)])
        trace.record(self.check_sql, check_cq, synthetic)
        return checker.check(stmt, bindings, trace).allowed

    def describe(self) -> str:
        return (
            "access-check patch:\n"
            f"  guard: {self.check_sql}\n"
            f"  certifies: {self.statement}\n"
            "  (issue the original query only when the guard returns a row)"
        )
