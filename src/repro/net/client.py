"""The blocking wire client.

:class:`NetClientConnection` implements the standard
:class:`~repro.engine.connection.Connection` protocol over a TCP socket,
so every workload handler, the :class:`~repro.serve.driver.WorkloadDriver`,
and the contract tests run against a remote gateway *unmodified* — a
blocked query surfaces as the same :class:`PolicyViolation` the
in-process proxy raises, and a SELECT's answer comes back as the same
:class:`~repro.engine.executor.Result`.

:class:`NetGatewayClient` is the gateway-shaped façade over many client
connections: ``connect(bindings)`` vends (and memoizes) one wire
connection per session principal, mirroring
:meth:`~repro.serve.gateway.EnforcementGateway.connect`, which is all
the driver needs to replay a workload over the network.
"""

from __future__ import annotations

import socket
import time
from collections.abc import Mapping, Sequence

from repro.enforce.decision import Decision, PolicyViolation
from repro.engine.executor import Result
from repro.net import protocol
from repro.net.protocol import ConnectionClosed, NetError
from repro.serve.metrics import GatewayMetrics, MetricsSnapshot
from repro.sqlir import ast
from repro.util.errors import EngineError

#: Default connect-retry schedule: 4 retries, doubling from 50 ms and
#: capped at 1 s, is ~0.75 s of total patience — enough to ride out a
#: shard subprocess binding its socket, short enough that a dead server
#: still fails fast.
CONNECT_RETRIES = 4
RETRY_BASE_S = 0.05
RETRY_MAX_S = 1.0


def connect_with_retry(
    host: str,
    port: int,
    timeout_s: float,
    retries: int = CONNECT_RETRIES,
    retry_base_s: float = RETRY_BASE_S,
    retry_max_s: float = RETRY_MAX_S,
) -> socket.socket:
    """Dial ``host:port`` with bounded exponential backoff.

    A freshly spawned server (a cluster shard, a test fixture) can lose
    the race against its first client; a raw ``ECONNREFUSED`` there is
    noise, not a failure. Retries ``retries`` times on the transient
    dial errors only — ``ConnectionError`` (refused/reset/aborted) and
    ``TimeoutError`` — sleeping ``retry_base_s * 2**attempt`` (capped at
    ``retry_max_s``) between attempts, then re-raises the final error
    unchanged so callers still see the familiar exception type.
    Non-transient ``OSError``\\s (``EAI_NONAME`` for a malformed address,
    ``ENETUNREACH``, permission errors) are misconfiguration, not races:
    they propagate on the first attempt instead of burning the whole
    backoff schedule against an address that can never answer.
    """
    attempt = 0
    while True:
        try:
            return socket.create_connection((host, port), timeout=timeout_s)
        except (ConnectionError, TimeoutError):
            if attempt >= retries:
                raise
            time.sleep(min(retry_base_s * (2**attempt), retry_max_s))
            attempt += 1


class PreparedWireStatement:
    """A server-side prepared handle, as the client sees it.

    Mutable on purpose: when the server reports the handle stale (policy
    hot-reloaded since PREPARE), the client transparently re-prepares
    and updates ``handle``/``policy_version`` in place, so callers hold
    one object across reloads.
    """

    __slots__ = ("sql", "handle", "select", "policy_version")

    def __init__(self, sql: str, handle: int, select: bool, policy_version: int):
        self.sql = sql
        self.handle = handle
        self.select = select
        self.policy_version = policy_version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreparedWireStatement(handle={self.handle},"
            f" policy_version={self.policy_version}, sql={self.sql!r})"
        )


class NetClientConnection:
    """One authenticated wire session; implements ``Connection``.

    ``sql``/``query`` keep one request outstanding at a time (the
    simple, strictly-ordered mode). :meth:`pipeline` keeps up to a
    window of requests in flight on the same socket — the server
    dispatches them in order and replies in order, so session semantics
    are unchanged; only the per-request round trip is amortized.
    :meth:`prepare`/:meth:`execute` hoist a statement's parse and shape
    analysis server-side and ship only bindings per call.
    """

    def __init__(
        self,
        host: str,
        port: int,
        bindings: Mapping[str, object] | None = None,
        user: object | None = None,
        fresh: bool = False,
        timeout_s: float = 30.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        connect_retries: int = CONNECT_RETRIES,
    ):
        if bindings is None:
            if user is None:
                raise NetError("need bindings or user", code=protocol.ERR_BAD_REQUEST)
            bindings = {"MyUId": user}
        self.bindings = dict(bindings)
        self._max_frame_bytes = max_frame_bytes
        self._next_id = 0
        self._closed = False
        self._sock = connect_with_retry(
            host, port, timeout_s, retries=connect_retries
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            reply = self._roundtrip(
                {
                    "type": protocol.HELLO,
                    "version": protocol.PROTOCOL_VERSION,
                    "bindings": self.bindings,
                    "fresh": fresh,
                }
            )
            if reply["type"] != protocol.WELCOME:
                raise self._to_error(reply)
            #: Backend identity the server reported in WELCOME (absent on
            #: pre-backend servers).
            self.server_backend = reply.get("backend")
            #: Which cluster shard answered the HELLO (additive WELCOME
            #: field; ``None`` outside a ``repro.cluster`` deployment).
            self.server_shard_id = reply.get("shard_id")
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    # -- the Connection protocol --------------------------------------------------

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        reply = self._request(protocol.EXEC, sql, args, named)
        return self._to_outcome(reply)

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        reply = self._request(protocol.QUERY, sql, args, named)
        outcome = self._to_outcome(reply)
        if not isinstance(outcome, Result):
            raise EngineError("query() requires a SELECT statement")
        return outcome

    def close(self) -> None:
        """Send GOODBYE (best effort) and release the socket. Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(self._sock, {"type": protocol.GOODBYE})
            self._sock.settimeout(1.0)
            protocol.read_frame(self._sock, self._max_frame_bytes)  # BYE
        except Exception:
            pass  # the server may already be gone; closing is still fine
        finally:
            self._sock.close()

    # -- prepared statements -------------------------------------------------------

    def prepare(self, sql: str) -> PreparedWireStatement:
        """PREPARE ``sql`` server-side; returns a reusable handle."""
        if self._closed:
            raise EngineError("connection is closed")
        if not isinstance(sql, str):
            raise NetError(
                "the wire client sends SQL text, not AST statements",
                code=protocol.ERR_BAD_REQUEST,
            )
        reply = self._roundtrip(
            {"type": protocol.PREPARE, "id": self._take_id(), "sql": sql}
        )
        if reply.get("type") != protocol.PREPARED:
            raise self._to_error(reply)
        return PreparedWireStatement(
            sql=sql,
            handle=int(reply["handle"]),
            select=bool(reply.get("select", True)),
            policy_version=int(reply.get("policy_version", 0)),
        )

    def execute(
        self,
        prepared: PreparedWireStatement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """EXECUTE a prepared handle, shipping only the bindings.

        If the server reports the handle stale (policy hot-reloaded
        since PREPARE) or gone, re-prepares once transparently and
        retries — the fresh EXECUTE is decided under the new policy,
        which is exactly what a reload means.
        """
        if self._closed:
            raise EngineError("connection is closed")
        for attempt in range(2):
            reply = self._roundtrip(self._execute_frame(prepared, args, named))
            if _needs_reprepare(reply) and attempt == 0:
                self._reprepare(prepared)
                continue
            return self._to_outcome(reply)
        raise AssertionError("unreachable")  # pragma: no cover

    def _execute_frame(
        self,
        prepared: PreparedWireStatement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> dict:
        return {
            "type": protocol.EXECUTE,
            "id": self._take_id(),
            "handle": prepared.handle,
            "args": list(args),
            "named": dict(named) if named is not None else None,
        }

    def _reprepare(self, prepared: PreparedWireStatement) -> None:
        fresh = self.prepare(prepared.sql)
        prepared.handle = fresh.handle
        prepared.select = fresh.select
        prepared.policy_version = fresh.policy_version

    # -- pipelining ----------------------------------------------------------------

    def pipeline(
        self,
        requests: Sequence[object],
        window: int = 32,
    ) -> list[object]:
        """Run many requests with up to ``window`` in flight at once.

        Each request is one of:

        * ``"SELECT ..."`` — a QUERY with no parameters;
        * ``(sql, args)`` or ``(sql, args, named)`` — a QUERY;
        * a :class:`PreparedWireStatement` — an EXECUTE with no bindings;
        * ``(prepared, args)`` or ``(prepared, args, named)`` — an EXECUTE.

        Returns one outcome per request, *in request order*: a
        :class:`Result` (SELECT), an ``int`` rowcount (write), a
        :class:`PolicyViolation` (blocked), or a :class:`NetError` —
        per-request failures are returned, not raised, so one blocked
        query does not discard the pipeline's other answers. Stale
        prepared handles are re-prepared after the main sweep and those
        requests retried at their original indexes.

        Requests are sent in bursts (coalesced into one ``sendall`` per
        window top-up) and the server dispatches them strictly in
        arrival order, so trace history accumulates exactly as if the
        same statements had been sent one at a time.
        """
        if self._closed:
            raise EngineError("connection is closed")
        if window < 1:
            raise ValueError("window must be >= 1")
        frames: list[dict] = []
        prepared_for: list[PreparedWireStatement | None] = []
        arguments: list[tuple[Sequence[object], Mapping[str, object] | None]] = []
        for request in requests:
            frame, prepared, call_args = self._pipeline_frame(request)
            frames.append(frame)
            prepared_for.append(prepared)
            arguments.append(call_args)
        outcomes: list[object] = [None] * len(frames)
        id_to_index = {frame["id"]: index for index, frame in enumerate(frames)}
        stale: list[int] = []
        sent = 0
        received = 0
        burst = bytearray()
        try:
            while received < len(frames):
                while sent < len(frames) and sent - received < window:
                    protocol.encode_frame_into(frames[sent], burst)
                    sent += 1
                if burst:
                    self._sock.sendall(burst)
                    del burst[:]
                reply = protocol.read_frame(self._sock, self._max_frame_bytes)
                index = id_to_index.pop(reply.get("id"), None)
                if index is None:
                    raise NetError(
                        f"unmatched pipeline reply {reply.get('type')!r}"
                        f" (id {reply.get('id')!r})",
                        code=protocol.ERR_MALFORMED,
                    )
                received += 1
                if _needs_reprepare(reply) and prepared_for[index] is not None:
                    stale.append(index)
                    continue
                try:
                    outcomes[index] = self._to_outcome(reply)
                except (PolicyViolation, NetError) as exc:
                    outcomes[index] = exc
        except (ConnectionClosed, OSError) as exc:
            self._closed = True
            self._sock.close()
            if isinstance(exc, ConnectionClosed):
                raise
            raise ConnectionClosed(str(exc)) from exc
        for index in stale:
            prepared = prepared_for[index]
            assert prepared is not None
            args, named = arguments[index]
            try:
                outcomes[index] = self.execute(prepared, args, named)
            except (PolicyViolation, NetError) as exc:
                outcomes[index] = exc
        return outcomes

    def _pipeline_frame(
        self, request: object
    ) -> tuple[dict, PreparedWireStatement | None, tuple]:
        """Normalize one pipeline request into its wire frame."""
        args: Sequence[object] = ()
        named: Mapping[str, object] | None = None
        if isinstance(request, tuple):
            if not 1 <= len(request) <= 3:
                raise NetError(
                    "pipeline tuple must be (sql|prepared, args?, named?)",
                    code=protocol.ERR_BAD_REQUEST,
                )
            target = request[0]
            if len(request) > 1:
                args = request[1]
            if len(request) > 2:
                named = request[2]
        else:
            target = request
        if isinstance(target, PreparedWireStatement):
            return self._execute_frame(target, args, named), target, (args, named)
        if not isinstance(target, str):
            raise NetError(
                "pipeline request must be SQL text or a PreparedWireStatement",
                code=protocol.ERR_BAD_REQUEST,
            )
        frame = {
            "type": protocol.QUERY,
            "id": self._take_id(),
            "sql": target,
            "args": list(args),
            "named": dict(named) if named is not None else None,
        }
        return frame, None, (args, named)

    # -- extras beyond the Connection protocol ------------------------------------

    def ping(self) -> float:
        """Round-trip a PING; returns the wire latency in seconds."""
        started = time.perf_counter()
        reply = self._roundtrip({"type": protocol.PING, "id": self._take_id()})
        if reply["type"] != protocol.PONG:
            raise self._to_error(reply)
        return time.perf_counter() - started

    def stats(self) -> dict:
        """Fetch the server's STATS document (net + gateway metrics)."""
        reply = self._roundtrip({"type": protocol.STATS, "id": self._take_id()})
        if reply["type"] != protocol.STATS:
            raise self._to_error(reply)
        return reply

    # -- internals ----------------------------------------------------------------

    def _request(
        self,
        kind: str,
        sql: str | ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> dict:
        if self._closed:
            raise EngineError("connection is closed")
        if not isinstance(sql, str):
            raise NetError(
                "the wire client sends SQL text, not AST statements",
                code=protocol.ERR_BAD_REQUEST,
            )
        request_id = self._take_id()
        reply = self._roundtrip(
            {
                "type": kind,
                "id": request_id,
                "sql": sql,
                "args": list(args),
                "named": dict(named) if named is not None else None,
            }
        )
        if reply.get("id") != request_id:
            raise NetError(
                f"reply id {reply.get('id')!r} does not match request {request_id}",
                code=protocol.ERR_MALFORMED,
            )
        return reply

    def _roundtrip(self, message: dict) -> dict:
        try:
            protocol.write_frame(self._sock, message)
            return protocol.read_frame(self._sock, self._max_frame_bytes)
        except (ConnectionClosed, OSError) as exc:
            self._closed = True
            self._sock.close()
            if isinstance(exc, ConnectionClosed):
                raise
            raise ConnectionClosed(str(exc)) from exc

    def _to_outcome(self, reply: dict) -> Result | int:
        kind = reply["type"]
        if kind == protocol.RESULT:
            if "rowcount" in reply:
                return int(reply["rowcount"])
            return Result(
                columns=list(reply["columns"]),
                rows=[tuple(row) for row in reply["rows"]],
            )
        raise self._to_error(reply)

    def _to_error(self, reply: dict) -> Exception:
        kind = reply.get("type")
        if kind == protocol.BLOCKED:
            decision = Decision(
                allowed=False,
                sql=str(reply.get("sql", "")),
                reason=str(reply.get("reason", "blocked by policy")),
                from_cache=bool(reply.get("cached", False)),
            )
            return PolicyViolation(decision)
        code = str(reply.get("code", protocol.ERR_INTERNAL))
        message = str(reply.get("error", f"unexpected {kind} reply"))
        if code in (protocol.ERR_TIMEOUT, protocol.ERR_SHUTTING_DOWN):
            # Both terminate the connection server-side.
            self._closed = True
        return NetError(message, code=code)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @property
    def closed(self) -> bool:
        return self._closed


def _is_stale_error(reply: dict) -> bool:
    """True for the server's stale-prepared-handle refusal."""
    return (
        reply.get("type") == protocol.ERROR
        and reply.get("code") == protocol.ERR_MALFORMED
        and bool(reply.get("stale"))
    )


def _needs_reprepare(reply: dict) -> bool:
    """True for refusals a re-PREPARE recovers from.

    Stale handles (policy reloaded since PREPARE) and unknown handles
    (the server dropped it — e.g. an earlier EXECUTE of the same handle
    in one pipeline window already drew the stale refusal). The client
    holds the statement text, so both heal the same way.
    """
    return _is_stale_error(reply) or (
        reply.get("type") == protocol.ERROR
        and reply.get("code") == protocol.ERR_MALFORMED
        and bool(reply.get("unknown_handle"))
    )


class AdminClient:
    """Operator-side client for the policy-lifecycle admin verbs.

    Admin verbs need no session (they act on the deployment, like
    STATS), so this client skips HELLO entirely: it opens a socket and
    speaks ``POLICY`` / ``RELOAD`` / ``SHADOW`` / ``PROMOTE`` /
    ``ROLLBACK`` / ``MINE`` directly. Every method returns the server's reply
    payload or raises :class:`NetError` with the server's error text —
    which, for a policy that fails to parse, carries the offending line
    number from ``policy_from_text``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 150.0,
        connect_retries: int = CONNECT_RETRIES,
    ):
        # Timeout must outlast the server's 120s admin deadline.
        self._max_frame_bytes = protocol.MAX_FRAME_BYTES
        self._next_id = 0
        self._closed = False
        self._sock = connect_with_retry(
            host, port, timeout_s, retries=connect_retries
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- verbs --------------------------------------------------------------------

    def policy_status(self) -> dict:
        """The ``POLICY`` document: versions, fingerprints, shadow state."""
        return self._call({"type": protocol.POLICY})["policy"]

    def reload(
        self, policy_text: str, provenance: str = "hand-written", label: str = ""
    ) -> dict:
        """Hot-swap the serialized policy in; returns the reload report."""
        return self._call(
            {
                "type": protocol.RELOAD,
                "policy_text": policy_text,
                "provenance": provenance,
                "label": label,
            }
        )["report"]

    def shadow_start(
        self, policy_text: str, provenance: str = "extracted", label: str = ""
    ) -> dict:
        return self._call(
            {
                "type": protocol.SHADOW,
                "action": "start",
                "policy_text": policy_text,
                "provenance": provenance,
                "label": label,
            }
        )

    def shadow_stop(self) -> dict:
        return self._call({"type": protocol.SHADOW, "action": "stop"})["stats"]

    def shadow_status(self) -> dict | None:
        return self._call({"type": protocol.SHADOW, "action": "status"})["shadow"]

    def promote(self, **gate_overrides) -> dict:
        """Run the promotion gates; swaps only when every gate passes.

        Keyword overrides: ``max_divergences``, ``min_shadow_checks``,
        ``min_precision``, ``min_recall``.
        """
        return self._call({"type": protocol.PROMOTE, **gate_overrides})

    def rollback(self) -> dict:
        return self._call({"type": protocol.ROLLBACK})["report"]

    def mine_status(self) -> dict:
        """The mining service's status section (mode, window, counters)."""
        return self._call({"type": protocol.MINE, "action": "status"})["mining"]

    def mine_candidates(self) -> dict:
        """Mined candidates plus the per-candidate disposition audit."""
        reply = self._call({"type": protocol.MINE, "action": "candidates"})
        return {"candidates": reply["candidates"], "audit": reply["audit"]}

    def mine_approve(self, fingerprint: str) -> dict:
        """Submit a parked candidate (by content fingerprint) to shadow."""
        return self._call(
            {"type": protocol.MINE, "action": "approve", "fingerprint": fingerprint}
        )["candidate"]

    def mine_run(self) -> dict:
        """Force one mining cycle now; returns the cycle summary."""
        return self._call({"type": protocol.MINE, "action": "run"})["cycle"]

    def stats(self) -> dict:
        return self._call({"type": protocol.STATS})

    # -- plumbing -----------------------------------------------------------------

    def _call(self, message: dict) -> dict:
        if self._closed:
            raise NetError("admin connection is closed", code=protocol.ERR_INTERNAL)
        self._next_id += 1
        message = {**message, "id": self._next_id}
        try:
            protocol.write_frame(self._sock, message)
            reply = protocol.read_frame(self._sock, self._max_frame_bytes)
        except (ConnectionClosed, OSError) as exc:
            self._closed = True
            self._sock.close()
            raise ConnectionClosed(str(exc)) from exc
        if reply.get("type") == protocol.ERROR:
            raise NetError(
                str(reply.get("error", "admin request failed")),
                code=str(reply.get("code", protocol.ERR_INTERNAL)),
            )
        return reply

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(self._sock, {"type": protocol.GOODBYE})
            self._sock.settimeout(1.0)
            protocol.read_frame(self._sock, self._max_frame_bytes)  # BYE
        except Exception:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NetGatewayClient:
    """A gateway-shaped handle on a *remote* gateway.

    Mirrors the :class:`~repro.serve.gateway.EnforcementGateway` surface
    the :class:`~repro.serve.driver.WorkloadDriver` uses — ``connect``,
    ``metrics``, ``snapshot``, ``cache_hit_rate`` — so a workload replay
    targets the network with a one-line change (construct this instead
    of a gateway). ``db`` is optional and only needed by drivers that
    synthesize writes from the schema (``write_every``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        db=None,
        timeout_s: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.db = db
        self.timeout_s = timeout_s
        self.metrics = GatewayMetrics()
        self._connections: dict[tuple, NetClientConnection] = {}

    def connect(
        self, bindings: Mapping[str, object], fresh: bool = False
    ) -> NetClientConnection:
        key = tuple(sorted(bindings.items()))
        if fresh:
            return self._open(bindings, fresh=True)
        connection = self._connections.get(key)
        if connection is None or connection.closed:
            connection = self._open(bindings, fresh=False)
            self._connections[key] = connection
        return connection

    def _open(self, bindings: Mapping[str, object], fresh: bool) -> NetClientConnection:
        return NetClientConnection(
            self.host,
            self.port,
            bindings=bindings,
            fresh=fresh,
            timeout_s=self.timeout_s,
        )

    def snapshot(self) -> MetricsSnapshot:
        """Client-side metrics (the driver's ``request`` histogram)."""
        return self.metrics.snapshot()

    def remote_stats(self) -> dict:
        """The server's STATS document, via a transient connection."""
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout_s)
        try:
            protocol.write_frame(sock, {"type": protocol.STATS, "id": 0})
            return protocol.read_frame(sock)
        finally:
            try:
                protocol.write_frame(sock, {"type": protocol.GOODBYE})
            except OSError:
                pass
            sock.close()

    def cache_hit_rate(self) -> float:
        try:
            return float(self.remote_stats().get("cache_hit_rate", 0.0))
        except (NetError, OSError):
            return 0.0

    def close(self) -> None:
        """Close every vended connection. Idempotent."""
        connections, self._connections = self._connections, {}
        for connection in connections.values():
            connection.close()

    def __enter__(self) -> "NetGatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
