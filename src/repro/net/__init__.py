"""The network tier: the enforcement gateway behind a real socket.

``repro.net`` puts the multi-session :class:`EnforcementGateway` where
Blockaid's proxy lives — between remote application clients and the
database, over TCP — speaking a versioned, length-prefixed JSON protocol
(:mod:`repro.net.protocol`). The asyncio server
(:mod:`repro.net.server`) adds the production concerns a policy tier
needs under heavy traffic: admission control with load shedding,
per-request deadlines, idle reaping, frame hygiene, graceful drain, and
a STATS command exposing net + gateway metrics. The blocking client
(:mod:`repro.net.client`) implements the standard ``Connection``
protocol so workloads replay over the wire unmodified, plus the hit-path
extras: ``prepare``/``execute`` (server-side prepared handles) and
``pipeline`` (windowed in-flight requests over one socket). See
``docs/networking.md``, ``docs/prepared.md``, and the E12/E18
benchmarks.
"""

from repro.net.client import (
    AdminClient,
    NetClientConnection,
    NetGatewayClient,
    PreparedWireStatement,
    connect_with_retry,
)
from repro.net.metrics import NetMetrics
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameTooLarge,
    NetError,
)
from repro.net.server import BackgroundServer, NetServer, ServerConfig

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "AdminClient",
    "BackgroundServer",
    "ConnectionClosed",
    "FrameTooLarge",
    "NetClientConnection",
    "NetError",
    "NetGatewayClient",
    "NetMetrics",
    "NetServer",
    "PreparedWireStatement",
    "ServerConfig",
    "connect_with_retry",
]
