"""The wire protocol: framing, message vocabulary, and error codes.

The enforcement gateway becomes a network service the way Blockaid's
proxy does (a JDBC-shaped network hop between application and database):
clients speak a small, versioned, length-prefixed JSON protocol over
TCP. JSON keeps the protocol debuggable with ``nc``/``socat`` and covers
every value the engine stores (INT/TEXT/REAL/BOOL plus NULL); the length
prefix makes framing trivial and lets the server reject oversized frames
*before* parsing them.

Framing
-------
Every message is one frame::

    +----------------------+---------------------------+
    | length: uint32 (BE)  | payload: UTF-8 JSON object|
    +----------------------+---------------------------+

``length`` counts payload bytes only. A frame whose declared length
exceeds the receiver's ``max_frame_bytes`` is rejected without reading
the payload (``ERROR/oversized``); a payload that is not a JSON object
with a string ``type`` is ``ERROR/malformed``.

Message vocabulary
------------------
Client → server:

* ``HELLO {version, bindings, fresh?}`` — authenticate the connection as
  a session principal. ``bindings`` maps policy parameters to values
  (e.g. ``{"MyUId": 7}``). ``fresh: true`` forces a brand-new session
  (empty trace) instead of resuming the principal's stored one.
* ``QUERY {id, sql, args?, named?}`` — vet + execute a SELECT.
* ``EXEC {id, sql, args?, named?}`` — execute any statement (writes
  return a row count and trigger decision-template invalidation).
* ``PREPARE {id, sql}`` — hoist the statement's per-shape work (parse,
  bind plan, skeletonization, equality-partition layout) server-side
  once; replies ``PREPARED`` with an integer handle. Requires a session.
* ``EXECUTE {id, handle, args?, named?}`` — run a prepared handle,
  shipping only the bindings. An unknown handle, or one prepared under
  an earlier policy version (the handle table is per-epoch and
  invalidated on hot reload), is refused with ``ERROR/malformed`` — the
  stale case additionally carries ``stale: true`` so clients can
  re-prepare transparently. Requires a session.
* ``PING {id}`` — liveness probe; allowed before HELLO.
* ``STATS {id}`` — server + gateway metrics; allowed before HELLO.
* ``GOODBYE {}`` — orderly close.

Admin verbs (policy lifecycle; allowed before HELLO, like STATS — they
act on the deployment, not on a session; all require the server to be
started with a :class:`~repro.lifecycle.reload.LifecycleManager`):

* ``POLICY {id}`` — active version, fingerprint, provenance, registered
  versions, rollback target, shadow status.
* ``RELOAD {id, policy_text, provenance?, label?}`` — parse
  ``policy_text`` (the ``repro.policy.serialize`` format) and hot-swap
  it in; replies with the reload report.
* ``SHADOW {id, action: "start"|"stop"|"status", policy_text?,
  provenance?, label?}`` — manage shadow mode.
* ``PROMOTE {id, max_divergences?, min_shadow_checks?, min_precision?,
  min_recall?}`` — run the promotion gates on the shadowed candidate;
  swaps it in only if every gate passes.
* ``ROLLBACK {id}`` — restore the previously active version.
* ``MINE {id, action: "status"|"candidates"|"approve"|"run",
  fingerprint?}`` — the continuous policy-mining service
  (``repro.mining``): ``status`` reports the miner section, ``candidates``
  lists mined candidate policies with scores and dispositions,
  ``approve`` submits a parked candidate (by content fingerprint) to
  shadow mode, ``run`` forces one mining cycle now. Requires the server's
  lifecycle manager to have a mining service attached
  (``GatewayConfig(mining=…)`` or ``repro serve --mine``).

These are additive message types: a version-1 client that never sends
them is unaffected, so ``PROTOCOL_VERSION`` stays 1.

Server → client:

* ``WELCOME {version, session}`` — HELLO accepted.
* ``PREPARED {id, handle, select, policy_version}`` — PREPARE accepted;
  ``select`` says whether EXECUTE will return rows or a rowcount.
* ``RESULT {id, columns, rows}`` — a SELECT's answer.
* ``RESULT {id, rowcount}`` — a write's affected-row count.
* ``BLOCKED {id, sql, reason, cached}`` — the policy checker denied the
  query (the paper's execute-as-is-or-block contract, over the wire).
* ``ERROR {id?, code, error}`` — anything else went wrong; ``code`` is
  one of the ``ERR_*`` constants below and is stable protocol surface.
* ``PONG {id}``, ``STATS {id, net, gateway, cache_hit_rate}``,
  ``BYE {reason}``.

Requests carry a client-chosen ``id`` echoed in the reply, so a client
can pipeline requests and still correlate answers. The server processes
a connection's frames strictly in arrival order (a session's statements
must stay ordered for trace history) but reads ahead while a statement
executes, so a client may keep many requests in flight and overlap its
encode/send work with server-side checking — see
``NetClientConnection.pipeline``. Replies therefore also come back in
request order; ids make the correlation explicit and future-proof.

``PREPARE``/``EXECUTE``/``PREPARED`` and pipelining are additive: a
version-1 client that never reads ahead or prepares sees byte-identical
behavior, so ``PROTOCOL_VERSION`` stays 1.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.util.errors import DbacError

#: Bumped on any incompatible change to framing or message shapes.
PROTOCOL_VERSION = 1

#: Default cap on a single frame's payload, server- and client-side.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

# -- message types -----------------------------------------------------------

HELLO = "HELLO"
QUERY = "QUERY"
EXEC = "EXEC"
PREPARE = "PREPARE"
EXECUTE = "EXECUTE"
PING = "PING"
STATS = "STATS"
GOODBYE = "GOODBYE"

# Policy-lifecycle admin verbs (see the module docstring).
POLICY = "POLICY"
RELOAD = "RELOAD"
SHADOW = "SHADOW"
PROMOTE = "PROMOTE"
ROLLBACK = "ROLLBACK"
MINE = "MINE"

WELCOME = "WELCOME"
PREPARED = "PREPARED"
RESULT = "RESULT"
BLOCKED = "BLOCKED"
ERROR = "ERROR"
PONG = "PONG"
BYE = "BYE"

# -- error codes (stable wire surface; see docs/networking.md) ---------------

ERR_OVERLOADED = "overloaded"  # admission control shed this request/connection
ERR_TIMEOUT = "timeout"  # per-request deadline exceeded
ERR_MALFORMED = "malformed"  # frame payload is not a valid message
ERR_OVERSIZED = "oversized"  # frame length exceeds max_frame_bytes
ERR_UNAUTHENTICATED = "unauthenticated"  # QUERY/EXEC before HELLO
ERR_UNAVAILABLE = "unavailable"  # a cluster router's target shard is down
ERR_BAD_VERSION = "bad_version"  # HELLO version mismatch
ERR_BAD_REQUEST = "bad_request"  # well-formed frame, invalid contents
ERR_SHUTTING_DOWN = "shutting_down"  # server is draining
ERR_ENGINE = "engine"  # parse/translation/execution error
ERR_INTERNAL = "internal"  # unexpected server-side failure


class NetError(DbacError):
    """A wire-level failure, carrying the protocol error ``code``."""

    def __init__(self, message: str, code: str = ERR_INTERNAL):
        super().__init__(message)
        self.code = code


class FrameTooLarge(NetError):
    """A frame's declared length exceeds the configured maximum."""

    def __init__(self, declared: int, limit: int):
        super().__init__(
            f"frame of {declared} bytes exceeds the {limit}-byte limit",
            code=ERR_OVERSIZED,
        )
        self.declared = declared
        self.limit = limit


class ConnectionClosed(NetError):
    """The peer closed the connection mid-frame (or before one)."""

    def __init__(self, message: str = "connection closed by peer"):
        super().__init__(message, code=ERR_INTERNAL)


# -- encoding ----------------------------------------------------------------


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message to a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


def encode_frame_into(message: dict[str, Any], buf: bytearray) -> None:
    """Append one encoded frame to ``buf``.

    The server's per-connection reply coalescer batches several small
    replies into one ``write()`` per drain cycle; appending into a
    reusable buffer avoids allocating (and the kernel avoids flushing)
    one segment per frame.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    buf += _LENGTH.pack(len(payload))
    buf += payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse a frame payload; raises :class:`NetError` (malformed) if bad."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetError(f"frame is not valid JSON: {exc}", code=ERR_MALFORMED) from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise NetError(
            "frame must be a JSON object with a string 'type'", code=ERR_MALFORMED
        )
    return message


# -- asyncio framing ---------------------------------------------------------


async def read_frame_async(reader, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Read one frame from an ``asyncio.StreamReader``.

    Raises :class:`ConnectionClosed` on EOF, :class:`FrameTooLarge`
    before consuming an over-limit payload, and :class:`NetError`
    (malformed) for undecodable payloads.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed() from exc
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed() from exc
    return decode_payload(payload)


# -- blocking-socket framing (the client side) -------------------------------


def write_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def read_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Read one frame from a blocking socket (see :func:`read_frame_async`)."""
    header = _recv_exactly(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    return decode_payload(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionClosed() from exc
        if not chunk:
            raise ConnectionClosed()
        chunks.extend(chunk)
    return bytes(chunks)
