"""Network-tier observability, layered on ``repro.serve.metrics``.

The gateway already measures the enforcement pipeline (parse / check /
execute histograms, decision counters). The network tier adds what only
the socket front end can see: connection lifecycle, admission-control
sheds, deadline timeouts, idle reaps, protocol violations, and
whole-request wire latency. Everything reuses the thread-safe
:class:`~repro.serve.metrics.GatewayMetrics` primitives, so one
``STATS`` wire command can render both layers with the same machinery.
"""

from __future__ import annotations

import threading

from repro.serve.metrics import GatewayMetrics, MetricsSnapshot

#: Counter names the server maintains (free-form, like gateway counters;
#: listed here so the STATS consumer and docs have one source of truth).
COUNTERS = (
    "connections_opened",
    "connections_closed",
    "connections_rejected",  # admission control: max_connections reached
    "requests",
    "requests_ok",
    "requests_blocked",  # policy denials (BLOCKED replies)
    "requests_failed",  # engine/protocol errors on a request
    "requests_shed",  # admission control: in-flight bound reached
    "requests_timed_out",  # per-request deadline exceeded
    "frames_malformed",
    "frames_oversized",
    "idle_reaped",
    "drained_connections",  # connections closed by graceful drain
)

#: Histogram stage for server-side wall time of one wire request
#: (read frame excluded: measured dispatch → reply queued).
STAGE_REQUEST = "net_request"


class NetMetrics:
    """Counters, the wire-latency histogram, and live gauges for one server."""

    def __init__(self) -> None:
        self._metrics = GatewayMetrics()
        self._gauge_lock = threading.Lock()
        self._active_connections = 0
        self._in_flight = 0

    # -- counters / histograms ----------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        self._metrics.increment(name, amount)

    def counter(self, name: str) -> int:
        return self._metrics.counter(name)

    def observe_request(self, seconds: float) -> None:
        self._metrics.observe_stage(STAGE_REQUEST, seconds)

    # -- gauges -------------------------------------------------------------------

    def connection_opened(self) -> int:
        """Returns the new active-connection count."""
        self._metrics.increment("connections_opened")
        with self._gauge_lock:
            self._active_connections += 1
            return self._active_connections

    def connection_closed(self) -> int:
        self._metrics.increment("connections_closed")
        with self._gauge_lock:
            self._active_connections -= 1
            return self._active_connections

    @property
    def active_connections(self) -> int:
        with self._gauge_lock:
            return self._active_connections

    def request_started(self) -> None:
        self._metrics.increment("requests")
        with self._gauge_lock:
            self._in_flight += 1

    def request_finished(self) -> None:
        with self._gauge_lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._gauge_lock:
            return self._in_flight

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return self._metrics.snapshot()

    def to_wire(self) -> dict:
        """The JSON-safe representation the STATS command returns."""
        snapshot = self.snapshot()
        return {
            "counters": snapshot.counters,
            "stages": snapshot.stages,
            "active_connections": self.active_connections,
            "in_flight": self.in_flight,
        }
