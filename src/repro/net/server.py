"""The asyncio network front end of the enforcement gateway.

One :class:`NetServer` owns one
:class:`~repro.serve.gateway.EnforcementGateway` and exposes it over TCP
via the protocol in :mod:`repro.net.protocol`. The event loop does all
socket work; the synchronous enforcement pipeline (parse → check →
execute) runs unchanged on a bounded thread pool, one statement at a
time per session (a session's statements must stay ordered so trace
history accumulates correctly — see Example 2.1).

Production shape, not a toy:

* **Admission control** — at most ``max_connections`` concurrent
  connections (excess are told ``ERROR/overloaded`` and closed) and at
  most ``max_in_flight`` statements executing at once. A statement
  arriving with the pipeline full is *shed* immediately with
  ``ERROR/overloaded`` rather than queued unboundedly: the client
  learns in microseconds and can back off, and admitted requests keep a
  bounded queue ahead of them (the E12 overload run measures exactly
  this — p50 of admitted requests stays flat while excess load is shed).
* **Per-request deadlines** — a statement that exceeds
  ``request_timeout_s`` gets ``ERROR/timeout`` and the connection is
  closed: the engine cannot cancel an in-flight check, so the session
  object may still be busy and must not receive further statements
  (the worker slot is reclaimed when the orphaned statement finishes).
* **Idle reaping** — a connection silent for ``idle_timeout_s`` is
  closed with ``BYE/idle`` so leaked client sockets cannot pin server
  state forever.
* **Frame hygiene** — oversized frames are rejected from the length
  prefix alone, malformed payloads answered with ``ERROR/malformed``;
  both close the connection (framing state is unrecoverable, and a
  confused peer should not keep a slot).
* **Graceful drain** — :meth:`shutdown` stops accepting, lets every
  in-flight statement finish and its reply flush, closes the survivors
  with ``BYE/shutting-down``, then tears down the pool. Statements that
  arrive *during* the drain get ``ERROR/shutting_down`` — including
  statements already queued in a pipelined connection's read-ahead
  buffer when the drain starts.
* **Frame pipelining** — each connection runs a dedicated reader task
  that keeps reading ahead (up to ``pipeline_depth`` frames) while the
  current statement executes on a worker thread, so a client that
  streams requests overlaps its encode/send work with server-side
  checking instead of paying a full round trip per request. Frames are
  still *dispatched* strictly in arrival order, serially per connection
  — a session's statements must stay ordered for trace history — so
  pipelining changes request latency, never semantics. A run of
  consecutive statement frames already queued is dispatched as one
  *batched* worker job (one loop<->pool handoff for the run, each
  statement still validated, admitted, executed, and metered
  individually), and replies are coalesced: consecutive small replies
  are encoded into one buffer and flushed with a single ``write()``
  when the read-ahead queue goes empty (or the buffer grows large),
  cutting per-reply syscall and segment overhead on the hit path.
* **Prepared statements** — ``PREPARE`` runs a statement's per-shape
  work (parse, bind plan, skeletonization) once and stores the plan in
  a per-connection handle table stamped with the policy version;
  ``EXECUTE`` ships only bindings. Handles from before a hot reload are
  refused with ``ERROR/malformed`` + ``stale: true`` so clients
  re-prepare — decisions always come from the current epoch.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.enforce.decision import PolicyViolation
from repro.net import protocol
from repro.net.metrics import NetMetrics
from repro.net.protocol import (
    ConnectionClosed,
    FrameTooLarge,
    NetError,
    read_frame_async,
)
from repro.serve.gateway import EnforcementGateway, GatewayConnection
from repro.util.errors import DbacError

logger = logging.getLogger("repro.net")


@dataclass(frozen=True)
class ServerConfig:
    """Everything configurable about a :class:`NetServer`.

    ``execute_delay_s`` is a fault-injection knob: it stalls every
    statement inside the worker thread for that long before execution.
    Tests and the E12 overload run use it to make timing-dependent
    behavior (shedding, deadlines, drain) deterministic; leave it 0 in
    real deployments.

    ``shard_id`` identifies this server within a ``repro.cluster``
    deployment; when set it is stamped into WELCOME and STATS (additive
    fields — older clients ignore them, so ``PROTOCOL_VERSION`` stays 1).
    """

    host: str = "127.0.0.1"
    port: int = 7433
    max_connections: int = 64
    max_in_flight: int = 16
    worker_threads: int = 8
    request_timeout_s: float = 10.0
    idle_timeout_s: float = 300.0
    drain_grace_s: float = 10.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    execute_delay_s: float = 0.0
    shard_id: int | None = None
    #: How many frames a connection's reader may buffer ahead of the
    #: dispatcher. Bounds per-connection memory and, once full, pushes
    #: backpressure onto the TCP window instead of the heap.
    pipeline_depth: int = 32

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")


class NetServer:
    """Serves one gateway over TCP; see the module docstring.

    ``lifecycle`` (a :class:`repro.lifecycle.reload.LifecycleManager`
    bound to the same gateway) enables the policy admin verbs —
    ``POLICY`` / ``RELOAD`` / ``SHADOW`` / ``PROMOTE`` / ``ROLLBACK`` /
    ``MINE`` — and a ``policy`` section in ``STATS``. Without it the
    admin verbs answer ``ERROR/bad_request``; ``MINE`` additionally
    needs a mining service attached to the manager.
    """

    def __init__(
        self,
        gateway: EnforcementGateway,
        config: ServerConfig | None = None,
        lifecycle=None,
    ):
        self.gateway = gateway
        self.config = config or ServerConfig()
        self.lifecycle = lifecycle
        self.metrics = NetMetrics()
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()
        # Loop-thread-only state (no lock needed: asyncio is single-threaded
        # and executor-future callbacks are delivered on the loop thread).
        self._in_flight = 0
        self._active = 0
        # One lock per session principal: two wire connections resuming the
        # same session must not run statements on one proxy concurrently.
        self._session_locks: dict[tuple, threading.Lock] = {}
        self._session_locks_guard = threading.Lock()
        self._started_at: float | None = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads, thread_name_prefix="repro-net"
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start` bound the listening socket."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close."""
        if self._server is None:
            return
        self._draining.set()
        self._server.close()
        await self._server.wait_closed()
        handlers = set(self._handlers)
        if handlers:
            done, pending = await asyncio.wait(
                handlers, timeout=self.config.drain_grace_s
            )
            for task in pending:  # past the grace period: force-close
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._server = None

    # -- connection handling ------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._handlers.add(task)
        try:
            await self._handle(reader, writer)
        except Exception:  # pragma: no cover - defensive; nothing should escape
            logger.exception("connection handler crashed")
        finally:
            self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._active >= self.config.max_connections or self.draining:
            self.metrics.increment("connections_rejected")
            code = (
                protocol.ERR_SHUTTING_DOWN if self.draining else protocol.ERR_OVERLOADED
            )
            await self._send(
                writer,
                {
                    "type": protocol.ERROR,
                    "code": code,
                    "error": f"server refused connection ({code})",
                },
            )
            return
        self._active += 1
        self.metrics.connection_opened()
        state = _ConnState()
        # The reader task keeps pulling frames while the dispatcher below
        # is busy executing a statement; the bounded queue is the
        # pipeline. Frames are dispatched strictly in arrival order.
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.pipeline_depth)
        reader_task = asyncio.ensure_future(self._read_loop(reader, queue))
        out = bytearray()
        drained = False
        pending: tuple | None = None
        try:
            while True:
                if pending is not None:
                    event, pending = pending, None
                else:
                    event = await self._next_event(queue, writer, out)
                if event is None:  # idle reap / drain while idle (BYE sent)
                    drained = self.draining
                    return
                kind, payload = event
                if kind == "eof":
                    drained = self.draining
                    return
                if kind in ("oversized", "malformed"):
                    # Framing state is unrecoverable; answer and close.
                    self.metrics.increment(f"frames_{kind}")
                    protocol.encode_frame_into(
                        {
                            "type": protocol.ERROR,
                            "code": payload.code,
                            "error": str(payload),
                        },
                        out,
                    )
                    return
                # Pipelined fast path: a run of statement frames already
                # queued behind this one executes as a single worker job
                # (one loop<->pool handoff for the whole run). A control or
                # admin frame — or a terminal reader event — ends the run
                # and is carried over to the next loop iteration.
                batch: list | None = None
                if self._batchable(payload, state) and not queue.empty():
                    batch = [payload]
                    while len(batch) < self.config.pipeline_depth and not queue.empty():
                        nxt = queue.get_nowait()
                        if nxt[0] == "frame" and self._batchable(nxt[1], state):
                            batch.append(nxt[1])
                        else:
                            pending = nxt
                            break
                if batch is not None and len(batch) > 1:
                    if not await self._execute_batch(batch, state, out):
                        return
                else:
                    reply, keep_open = await self._dispatch(frame=payload, state=state)
                    if isinstance(reply, _Authenticated):
                        state.bind(
                            reply.connection, reply.key, self._lock_for(reply.key)
                        )
                        reply = reply.welcome
                    if reply is not None:
                        protocol.encode_frame_into(reply, out)
                    if not keep_open:
                        return
                # Coalesce replies: hold small frames in ``out`` while more
                # requests are already queued; flush in one write when the
                # pipeline runs dry (or the buffer gets big). _next_event
                # also flushes before blocking, so a reply is never parked
                # while the connection waits for input.
                if len(out) >= _FLUSH_BYTES or (queue.empty() and pending is None):
                    await self._flush(writer, out)
                if self.draining and queue.empty() and pending is None:
                    # Between statements, pipeline empty: safe to say BYE.
                    # Queued statements (the pipelined-drain case) were
                    # answered ERR_SHUTTING_DOWN by the dispatch above.
                    drained = True
                    protocol.encode_frame_into(
                        {"type": protocol.BYE, "reason": "shutting down"}, out
                    )
                    return
        except ConnectionClosed:
            return
        except asyncio.CancelledError:  # drain grace expired
            raise
        finally:
            reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await reader_task
            with contextlib.suppress(ConnectionClosed, Exception):
                await self._flush(writer, out)
            self._active -= 1
            self.metrics.connection_closed()
            if drained:
                self.metrics.increment("drained_connections")

    async def _read_loop(self, reader: asyncio.StreamReader, queue: asyncio.Queue):
        """Per-connection reader: frames in arrival order, then one
        terminal event. ``queue.put`` blocks at ``pipeline_depth``,
        pushing backpressure onto the socket."""
        while True:
            try:
                frame = await read_frame_async(reader, self.config.max_frame_bytes)
            except ConnectionClosed:
                await queue.put(("eof", None))
                return
            except FrameTooLarge as exc:
                await queue.put(("oversized", exc))
                return
            except NetError as exc:
                await queue.put(("malformed", exc))
                return
            await queue.put(("frame", frame))

    async def _next_event(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter, out: bytearray
    ) -> tuple | None:
        """Next reader event, racing the idle clock and the drain signal.

        Returns ``None`` when the connection should close (idle reap,
        drain while idle); the BYE has been sent.
        """
        if not queue.empty():
            return queue.get_nowait()
        # About to block on the client: anything still buffered is owed.
        await self._flush(writer, out)
        get_task = asyncio.ensure_future(queue.get())
        drain_task = asyncio.ensure_future(self._draining.wait())
        try:
            done, _ = await asyncio.wait(
                {get_task, drain_task},
                timeout=self.config.idle_timeout_s,
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            drain_task.cancel()
        if get_task in done:
            return get_task.result()
        get_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            # The get may have completed between wait() and cancel();
            # never drop a frame on the floor.
            return await get_task
        if self.draining:
            await self._send(writer, {"type": protocol.BYE, "reason": "shutting down"})
            return None
        self.metrics.increment("idle_reaped")
        await self._send(writer, {"type": protocol.BYE, "reason": "idle"})
        return None

    # -- dispatch -----------------------------------------------------------------

    async def _dispatch(
        self, frame: dict, state: "_ConnState"
    ) -> tuple[dict | None, bool]:
        """Returns ``(reply, keep_open)``."""
        kind = frame["type"]
        if kind == protocol.HELLO:
            return self._handle_hello(frame, state.conn), True
        if kind == protocol.PING:
            return {"type": protocol.PONG, "id": frame.get("id")}, True
        if kind == protocol.STATS:
            return self._handle_stats(frame), True
        if kind == protocol.GOODBYE:
            return {"type": protocol.BYE, "reason": "goodbye"}, False
        if kind in (protocol.QUERY, protocol.EXEC):
            return await self._handle_statement(frame, state)
        if kind == protocol.PREPARE:
            return await self._handle_prepare(frame, state), True
        if kind == protocol.EXECUTE:
            return await self._handle_execute(frame, state)
        if kind in _ADMIN_VERBS:
            return await self._handle_admin(frame, kind), True
        return (
            _error(
                frame,
                protocol.ERR_BAD_REQUEST,
                f"unknown message type {kind!r}",
            ),
            True,
        )

    def _handle_hello(
        self, frame: dict, session_conn: GatewayConnection | None
    ) -> dict | "_Authenticated":
        if session_conn is not None:
            return _error(frame, protocol.ERR_BAD_REQUEST, "connection already bound")
        version = frame.get("version")
        if version != protocol.PROTOCOL_VERSION:
            return _error(
                frame,
                protocol.ERR_BAD_VERSION,
                f"server speaks protocol {protocol.PROTOCOL_VERSION}, client sent"
                f" {version!r}",
            )
        bindings = frame.get("bindings")
        if not isinstance(bindings, dict) or not bindings:
            return _error(
                frame,
                protocol.ERR_BAD_REQUEST,
                "HELLO needs a non-empty 'bindings' object",
            )
        fresh = bool(frame.get("fresh", False))
        connection = self.gateway.connect(bindings, fresh=fresh)
        key = tuple(sorted(bindings.items()))
        welcome = {
            "type": protocol.WELCOME,
            "version": protocol.PROTOCOL_VERSION,
            "session": dict(bindings),
            # Additive field (older clients ignore it): which storage
            # backend this deployment fronts.
            "backend": self.gateway.db.backend.describe(),
        }
        if self.config.shard_id is not None:
            welcome["shard_id"] = self.config.shard_id
        return _Authenticated(connection=connection, key=key, welcome=welcome)

    def _handle_stats(self, frame: dict) -> dict:
        gateway_snapshot = self.gateway.snapshot()
        reply = {
            "type": protocol.STATS,
            "id": frame.get("id"),
            "net": self.metrics.to_wire(),
            "gateway": {
                "counters": gateway_snapshot.counters,
                "view_checks": gateway_snapshot.view_checks,
                "stages": gateway_snapshot.stages,
            },
            "cache_hit_rate": self.gateway.cache_hit_rate(),
            "backend": self.gateway.db.backend.describe(),
            # Additive fields (see ServerConfig.shard_id): cluster identity
            # and process age, used by the router's aggregated STATS.
            "uptime_s": self.uptime_s,
        }
        if self.config.shard_id is not None:
            reply["shard_id"] = self.config.shard_id
        if self.lifecycle is not None:
            reply["policy"] = self.lifecycle.status()
        else:
            reply["policy"] = {"active_version": self.gateway.policy_version}
        return reply

    # -- policy-lifecycle admin verbs ---------------------------------------------

    async def _handle_admin(self, frame: dict, kind: str) -> dict:
        """Run one lifecycle verb on the worker pool (reloads spawn pools)."""
        if self.lifecycle is None:
            return _error(
                frame,
                protocol.ERR_BAD_REQUEST,
                "server was started without policy lifecycle management",
            )
        assert self._loop is not None and self._pool is not None
        try:
            work = self._admin_work(frame, kind)
        except DbacError as exc:
            return _error(frame, protocol.ERR_BAD_REQUEST, str(exc))
        try:
            # Generous fixed deadline: an operator verb may spawn checker
            # workers, which outlives the per-statement budget.
            return await asyncio.wait_for(
                self._loop.run_in_executor(self._pool, work), timeout=120.0
            )
        except asyncio.TimeoutError:
            return _error(frame, protocol.ERR_TIMEOUT, f"{kind} did not finish in 120s")

    def _admin_work(self, frame: dict, kind: str):
        """Build the (worker-thread) thunk for one admin verb.

        Frame validation happens here, on the loop thread, so malformed
        admin requests answer immediately.
        """
        from repro.policy.serialize import policy_from_text

        lifecycle = self.lifecycle
        frame_id = frame.get("id")

        def parse_policy() -> tuple:
            text = frame.get("policy_text")
            if not isinstance(text, str) or not text.strip():
                raise NetError(
                    f"{kind} needs a non-empty 'policy_text' string",
                    code=protocol.ERR_BAD_REQUEST,
                )
            provenance = frame.get("provenance", "hand-written")
            label = frame.get("label", "")
            return text, provenance, label

        if kind == protocol.POLICY:
            return lambda: {
                "type": protocol.POLICY,
                "id": frame_id,
                "policy": lifecycle.status(),
            }
        if kind == protocol.RELOAD:
            text, provenance, label = parse_policy()

            def do_reload() -> dict:
                policy = policy_from_text(text, self.gateway.db.schema, name=label or "reloaded")
                report = lifecycle.reload(policy, provenance=provenance, label=label)
                return {
                    "type": protocol.RELOAD,
                    "id": frame_id,
                    "report": _reload_to_wire(report),
                }

            return _admin_guard(frame, do_reload)
        if kind == protocol.SHADOW:
            action = frame.get("action")
            if action == "start":
                text, provenance, label = parse_policy()

                def do_start() -> dict:
                    policy = policy_from_text(
                        text, self.gateway.db.schema, name=label or "candidate"
                    )
                    version = lifecycle.start_shadow(
                        policy, provenance=provenance, label=label
                    )
                    return {
                        "type": protocol.SHADOW,
                        "id": frame_id,
                        "action": "start",
                        "candidate_version": version.version,
                        "fingerprint": version.fingerprint,
                    }

                return _admin_guard(frame, do_start)
            if action == "stop":
                return _admin_guard(
                    frame,
                    lambda: {
                        "type": protocol.SHADOW,
                        "id": frame_id,
                        "action": "stop",
                        "stats": lifecycle.stop_shadow(),
                    },
                )
            if action == "status":
                return _admin_guard(
                    frame,
                    lambda: {
                        "type": protocol.SHADOW,
                        "id": frame_id,
                        "action": "status",
                        "shadow": lifecycle.shadow_status(),
                    },
                )
            raise NetError(
                "SHADOW needs action: 'start', 'stop', or 'status'",
                code=protocol.ERR_BAD_REQUEST,
            )
        if kind == protocol.PROMOTE:
            from repro.lifecycle.promote import GateConfig

            overrides = {}
            for key in (
                "max_divergences",
                "min_shadow_checks",
                "min_precision",
                "min_recall",
            ):
                if key in frame:
                    overrides[key] = frame[key]
            try:
                gates = GateConfig(**overrides) if overrides else None
            except TypeError as exc:
                raise NetError(
                    f"bad PROMOTE gate override: {exc}", code=protocol.ERR_BAD_REQUEST
                ) from exc

            def do_promote() -> dict:
                report = lifecycle.promote(gates)
                return {
                    "type": protocol.PROMOTE,
                    "id": frame_id,
                    "promoted": report.promoted,
                    "candidate_version": report.candidate_version,
                    "gates": [
                        {"name": g.name, "passed": g.passed, "detail": g.detail}
                        for g in report.gates
                    ],
                    "diagnoses": report.diagnoses,
                }

            return _admin_guard(frame, do_promote)
        if kind == protocol.MINE:
            return self._mine_work(frame, frame_id)
        assert kind == protocol.ROLLBACK
        return _admin_guard(
            frame,
            lambda: {
                "type": protocol.ROLLBACK,
                "id": frame_id,
                "report": _reload_to_wire(lifecycle.rollback()),
            },
        )

    def _mine_work(self, frame: dict, frame_id):
        """Build the worker thunk for one MINE action."""
        mining = getattr(self.lifecycle, "mining", None)
        if mining is None:
            raise NetError(
                "no mining service attached; start the server with"
                " GatewayConfig(mining=…) or `repro serve --mine`",
                code=protocol.ERR_BAD_REQUEST,
            )
        action = frame.get("action")
        if action == "status":
            return _admin_guard(
                frame,
                lambda: {
                    "type": protocol.MINE,
                    "id": frame_id,
                    "action": "status",
                    "mining": mining.status(),
                },
            )
        if action == "candidates":
            return _admin_guard(
                frame,
                lambda: {
                    "type": protocol.MINE,
                    "id": frame_id,
                    "action": "candidates",
                    "candidates": mining.candidates_wire(),
                    "audit": mining.disposition_audit(),
                },
            )
        if action == "approve":
            fingerprint = frame.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint:
                raise NetError(
                    "MINE approve needs a non-empty 'fingerprint' string",
                    code=protocol.ERR_BAD_REQUEST,
                )
            return _admin_guard(
                frame,
                lambda: {
                    "type": protocol.MINE,
                    "id": frame_id,
                    "action": "approve",
                    "candidate": mining.approve(fingerprint),
                },
            )
        if action == "run":
            return _admin_guard(
                frame,
                lambda: {
                    "type": protocol.MINE,
                    "id": frame_id,
                    "action": "run",
                    "cycle": mining.run_once(),
                },
            )
        raise NetError(
            "MINE needs action: 'status', 'candidates', 'approve', or 'run'",
            code=protocol.ERR_BAD_REQUEST,
        )

    async def _handle_statement(
        self, frame: dict, state: "_ConnState"
    ) -> tuple[dict | None, bool]:
        reply, work_fn = self._statement_work(frame, state)
        if work_fn is None:
            return reply, True
        return await self._execute(frame, state, work_fn)

    def _statement_work(
        self, frame: dict, state: "_ConnState"
    ) -> tuple[dict | None, object | None]:
        """Validate one QUERY/EXEC/EXECUTE frame and build its worker thunk.

        Returns ``(immediate_reply, None)`` when the frame is answered
        without touching a worker (validation failure, shed, unknown or
        stale handle), or ``(None, work_fn)`` when it should execute.
        Shared by the one-at-a-time path and the batched pipeline path so
        the two cannot drift.
        """
        if state.conn is None:
            return _error(frame, protocol.ERR_UNAUTHENTICATED, "send HELLO first"), None
        session_conn = state.conn
        if frame["type"] == protocol.EXECUTE:
            handle = frame.get("handle")
            if not isinstance(handle, int) or isinstance(handle, bool):
                return (
                    _error(frame, protocol.ERR_BAD_REQUEST, "'handle' must be an integer"),
                    None,
                )
            args = frame.get("args") or []
            named = frame.get("named")
            if not isinstance(args, list) or not (named is None or isinstance(named, dict)):
                return (
                    _error(
                        frame,
                        protocol.ERR_BAD_REQUEST,
                        "'args' must be a list and 'named' an object",
                    ),
                    None,
                )
            shed = self._admission_check(frame)
            if shed is not None:
                return shed, None
            entry = state.prepared.get(handle)
            if entry is None:
                self.metrics.increment("prepared_unknown")
                reply = _error(
                    frame,
                    protocol.ERR_MALFORMED,
                    f"unknown prepared handle {handle}; PREPARE first",
                )
                # Additive flag so a client holding the statement text can
                # recover by re-preparing — a handle legitimately vanishes
                # when an earlier EXECUTE in the same pipeline window drew
                # the stale refusal that dropped it.
                reply["unknown_handle"] = True
                return reply, None
            if entry.policy_version != self.gateway.policy_version:
                # Lazy per-epoch invalidation: the policy was hot-reloaded
                # since this handle was prepared. Drop it and make the
                # client re-prepare, so no handle straddles a reload.
                del state.prepared[handle]
                self.metrics.increment("prepared_stale")
                reply = _error(
                    frame,
                    protocol.ERR_MALFORMED,
                    f"prepared handle {handle} is stale (policy"
                    f" v{entry.policy_version} -> v{self.gateway.policy_version});"
                    " re-prepare",
                )
                reply["stale"] = True
                return reply, None
            plan = entry.plan
            return None, lambda: session_conn.execute_prepared(plan, args, named)
        sql = frame.get("sql")
        if not isinstance(sql, str):
            return _error(frame, protocol.ERR_BAD_REQUEST, "'sql' must be a string"), None
        args = frame.get("args") or []
        named = frame.get("named")
        if not isinstance(args, list) or not (named is None or isinstance(named, dict)):
            return (
                _error(
                    frame,
                    protocol.ERR_BAD_REQUEST,
                    "'args' must be a list and 'named' an object",
                ),
                None,
            )
        shed = self._admission_check(frame)
        if shed is not None:
            return shed, None
        if frame["type"] == protocol.QUERY:
            return None, lambda: session_conn.query(sql, args, named)
        return None, lambda: session_conn.sql(sql, args, named)

    # -- prepared statements -------------------------------------------------------

    async def _handle_prepare(self, frame: dict, state: "_ConnState") -> dict:
        """PREPARE: parse + hoist shape analysis once; vend a handle.

        The handle table is per-connection and stamped with the policy
        version at prepare time; a hot reload makes every earlier handle
        stale (refused at EXECUTE), so prepared decisions can never
        outlive the epoch that shaped them.
        """
        if state.conn is None:
            return _error(frame, protocol.ERR_UNAUTHENTICATED, "send HELLO first")
        sql = frame.get("sql")
        if not isinstance(sql, str):
            return _error(frame, protocol.ERR_BAD_REQUEST, "'sql' must be a string")
        assert self._loop is not None and self._pool is not None
        conn = state.conn
        version = self.gateway.policy_version
        try:
            plan = await self._loop.run_in_executor(self._pool, conn.prepare, sql)
        except DbacError as exc:
            return _error(frame, protocol.ERR_ENGINE, str(exc))
        handle = state.next_handle
        state.next_handle += 1
        state.prepared[handle] = _PreparedEntry(plan, plan.is_select, version)
        self.metrics.increment("statements_prepared")
        return {
            "type": protocol.PREPARED,
            "id": frame.get("id"),
            "handle": handle,
            "select": plan.is_select,
            "policy_version": version,
        }

    async def _handle_execute(
        self, frame: dict, state: "_ConnState"
    ) -> tuple[dict | None, bool]:
        """EXECUTE: run a prepared handle, shipping only bindings."""
        reply, work_fn = self._statement_work(frame, state)
        if work_fn is None:
            return reply, True
        return await self._execute(frame, state, work_fn)

    def _admission_check(self, frame: dict) -> dict | None:
        """Drain + overload shedding, shared by QUERY/EXEC/EXECUTE.

        Returns the shed ERROR reply, or None when admitted.
        """
        if self.draining:
            self.metrics.increment("requests_shed")
            return _error(frame, protocol.ERR_SHUTTING_DOWN, "server is draining")
        if self._in_flight >= self.config.max_in_flight:
            # Shed instead of queueing: the caller finds out *now*.
            self.metrics.increment("requests_shed")
            return _error(
                frame,
                protocol.ERR_OVERLOADED,
                f"{self._in_flight} statements in flight (bound"
                f" {self.config.max_in_flight}); retry with backoff",
            )
        return None

    async def _execute(
        self, frame: dict, state: "_ConnState", work_fn
    ) -> tuple[dict | None, bool]:
        assert self._loop is not None and self._pool is not None
        lock = state.lock
        assert lock is not None
        delay = self.config.execute_delay_s

        def work():
            with lock:
                if delay:
                    time.sleep(delay)
                return work_fn()

        self._in_flight += 1
        self.metrics.request_started()
        started = time.perf_counter()
        future = self._loop.run_in_executor(self._pool, work)
        future.add_done_callback(self._statement_finished)
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            # The worker thread cannot be cancelled; the session object may
            # still be busy, so this connection must not carry more
            # statements. The slot frees when the orphan finishes
            # (_statement_finished).
            self.metrics.increment("requests_timed_out")
            return (
                _error(
                    frame,
                    protocol.ERR_TIMEOUT,
                    f"statement exceeded the {self.config.request_timeout_s:.3f}s"
                    " deadline; connection closed",
                ),
                False,
            )
        except PolicyViolation as violation:
            self.metrics.increment("requests_blocked")
            self.metrics.observe_request(time.perf_counter() - started)
            return self._blocked_reply(frame, violation), True
        except DbacError as exc:
            self.metrics.increment("requests_failed")
            self.metrics.observe_request(time.perf_counter() - started)
            return _error(frame, protocol.ERR_ENGINE, str(exc)), True
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("statement execution failed unexpectedly")
            self.metrics.increment("requests_failed")
            return _error(frame, protocol.ERR_INTERNAL, str(exc)), True
        self.metrics.increment("requests_ok")
        self.metrics.observe_request(time.perf_counter() - started)
        return self._result_reply(frame, outcome), True

    @staticmethod
    def _result_reply(frame: dict, outcome) -> dict:
        reply: dict = {"type": protocol.RESULT, "id": frame.get("id")}
        if isinstance(outcome, int):
            reply["rowcount"] = outcome
        else:
            reply["columns"] = list(outcome.columns)
            reply["rows"] = [list(row) for row in outcome.rows]
        return reply

    @staticmethod
    def _blocked_reply(frame: dict, violation: PolicyViolation) -> dict:
        decision = violation.decision
        return {
            "type": protocol.BLOCKED,
            "id": frame.get("id"),
            "sql": decision.sql,
            "reason": decision.reason,
            "cached": decision.from_cache,
        }

    # -- batched pipeline dispatch -------------------------------------------------

    @staticmethod
    def _batchable(frame: dict, state: "_ConnState") -> bool:
        """Statement frames on an authenticated connection batch together."""
        return state.conn is not None and frame.get("type") in (
            protocol.QUERY,
            protocol.EXEC,
            protocol.EXECUTE,
        )

    async def _execute_batch(
        self, frames: list, state: "_ConnState", out: bytearray
    ) -> bool:
        """Run a run of consecutive statement frames as ONE worker job.

        Pipelined clients queue several statements before the first reply;
        dispatching them one-at-a-time pays a loop<->worker handoff per
        frame, which dominates the cached-hit path. Here the whole run
        crosses into the pool once, executes strictly in order under the
        session lock, and the replies come back together (encoded in
        frame order, coalesced by the caller's flush rules).

        Per-frame semantics are preserved: validation/admission/stale
        checks run through :meth:`_statement_work` exactly as in the
        one-at-a-time path, the worker re-checks the drain flag before
        *each* statement (a mid-batch shutdown still sheds the not-yet-
        started tail with ERR_SHUTTING_DOWN), and per-statement metrics
        are applied when the replies are emitted. The request deadline
        becomes per-statement-with-progress: the batch fails only when a
        full ``request_timeout_s`` passes with no statement completing.

        Returns ``keep_open``.
        """
        plans: list[tuple[dict, dict | None, object | None]] = []
        for frame in frames:
            reply, work_fn = self._statement_work(frame, state)
            plans.append((frame, reply, work_fn))
        work_items = [(frame, fn) for frame, _, fn in plans if fn is not None]
        results: list[tuple[str, object, float]] = []  # appended by the worker
        if work_items:
            assert self._loop is not None and self._pool is not None
            lock = state.lock
            assert lock is not None
            delay = self.config.execute_delay_s
            draining = self._draining

            def run_batch():
                for _, fn in work_items:
                    if draining.is_set():
                        results.append(("shed", None, 0.0))
                        continue
                    started = time.perf_counter()
                    try:
                        with lock:
                            if delay:
                                time.sleep(delay)
                            value = fn()
                        results.append(("ok", value, time.perf_counter() - started))
                    except PolicyViolation as violation:
                        results.append(
                            ("blocked", violation, time.perf_counter() - started)
                        )
                    except DbacError as exc:
                        results.append(("engine", exc, time.perf_counter() - started))
                    except Exception as exc:  # pragma: no cover - defensive
                        logger.exception("statement execution failed unexpectedly")
                        results.append(("internal", exc, 0.0))
                return results

            self._in_flight += 1
            self.metrics.request_started()
            future = self._loop.run_in_executor(self._pool, run_batch)
            future.add_done_callback(self._statement_finished)
            completed_last_wait = 0
            while True:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(future), self.config.request_timeout_s
                    )
                    break
                except asyncio.TimeoutError:
                    if len(results) > completed_last_wait:
                        # Progress since the last deadline check: grant the
                        # statement now in flight its own budget.
                        completed_last_wait = len(results)
                        continue
                    # A full deadline with nothing finishing: same terminal
                    # semantics as the single-statement path — answer what
                    # is owed, report the stuck statement, close.
                    self.metrics.increment("requests_timed_out")
                    self._emit_batch_replies(plans, list(results), out)
                    return False
        self._emit_batch_replies(plans, list(results), out)
        return True

    def _emit_batch_replies(
        self,
        plans: list,
        results: list,
        out: bytearray,
    ) -> None:
        """Encode batch replies in frame order, applying per-item metrics.

        ``results`` holds worker outcomes for the executed subset, in
        order; when it is shorter than the executed subset (deadline hit),
        the first unanswered statement gets the timeout error and the
        rest are dropped with the connection.
        """
        cursor = 0
        for frame, reply, work_fn in plans:
            if work_fn is None:
                protocol.encode_frame_into(reply, out)
                continue
            if cursor >= len(results):
                protocol.encode_frame_into(
                    _error(
                        frame,
                        protocol.ERR_TIMEOUT,
                        f"statement exceeded the {self.config.request_timeout_s:.3f}s"
                        " deadline; connection closed",
                    ),
                    out,
                )
                return
            status, payload, seconds = results[cursor]
            cursor += 1
            if status == "ok":
                self.metrics.increment("requests_ok")
                self.metrics.observe_request(seconds)
                protocol.encode_frame_into(self._result_reply(frame, payload), out)
            elif status == "blocked":
                self.metrics.increment("requests_blocked")
                self.metrics.observe_request(seconds)
                protocol.encode_frame_into(self._blocked_reply(frame, payload), out)
            elif status == "shed":
                self.metrics.increment("requests_shed")
                protocol.encode_frame_into(
                    _error(frame, protocol.ERR_SHUTTING_DOWN, "server is draining"),
                    out,
                )
            elif status == "engine":
                self.metrics.increment("requests_failed")
                self.metrics.observe_request(seconds)
                protocol.encode_frame_into(
                    _error(frame, protocol.ERR_ENGINE, str(payload)), out
                )
            else:
                self.metrics.increment("requests_failed")
                protocol.encode_frame_into(
                    _error(frame, protocol.ERR_INTERNAL, str(payload)), out
                )

    def _statement_finished(self, _future: asyncio.Future) -> None:
        """Runs on the loop thread when a worker statement completes."""
        self._in_flight -= 1
        self.metrics.request_finished()
        if _future.cancelled():
            return
        _future.exception()  # orphaned timeouts: mark retrieved

    def _lock_for(self, key: tuple) -> threading.Lock:
        """Resolve the session principal's lock, once per connection.

        Called at HELLO (the key is the sorted bindings the HELLO
        carried) and cached on the connection state — re-deriving and
        re-sorting it per statement was measurable hit-path waste.
        """
        with self._session_locks_guard:
            lock = self._session_locks.get(key)
            if lock is None:
                lock = self._session_locks[key] = threading.Lock()
            return lock

    # -- plumbing -----------------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        try:
            writer.write(protocol.encode_frame(message))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionClosed() from exc

    async def _flush(self, writer: asyncio.StreamWriter, out: bytearray) -> None:
        """Write the coalesced reply buffer in one go and reset it."""
        if not out:
            return
        try:
            writer.write(bytes(out))
            del out[:]
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            del out[:]
            raise ConnectionClosed() from exc


_ADMIN_VERBS = (
    protocol.POLICY,
    protocol.RELOAD,
    protocol.SHADOW,
    protocol.PROMOTE,
    protocol.ROLLBACK,
    protocol.MINE,
)


def _admin_guard(frame: dict, thunk):
    """Wrap an admin thunk so domain errors become ERROR replies.

    Runs on a worker thread; :class:`DbacError` covers policy parse
    errors (with line numbers), registry errors, and lifecycle misuse.
    """

    def run() -> dict:
        try:
            return thunk()
        except DbacError as exc:
            return _error(frame, protocol.ERR_BAD_REQUEST, str(exc))

    return run


def _reload_to_wire(report) -> dict:
    return {
        "old_version": report.old_version,
        "new_version": report.new_version,
        "fingerprint": report.fingerprint,
        "provenance": report.provenance,
        "swap_pause_s": report.swap_pause_s,
        "build_s": report.build_s,
        "drained": report.drained,
        "sessions_preserved": report.sessions_preserved,
        "trace_facts_preserved": report.trace_facts_preserved,
    }


#: Flush the coalesced reply buffer once it reaches this many bytes even
#: if more requests are queued (bounds reply latency under a deep pipeline).
_FLUSH_BYTES = 64 * 1024


@dataclass
class _PreparedEntry:
    """One PREPARE'd plan in a connection's handle table."""

    plan: object
    select: bool
    policy_version: int


class _ConnState:
    """Per-connection mutable state. Loop-thread only (no locks needed);
    the hot-path invariants — session lock, sorted-bindings key — are
    resolved once at HELLO instead of per statement."""

    __slots__ = ("conn", "key", "lock", "prepared", "next_handle")

    def __init__(self) -> None:
        self.conn: GatewayConnection | None = None
        self.key: tuple | None = None
        self.lock: threading.Lock | None = None
        self.prepared: dict[int, _PreparedEntry] = {}
        self.next_handle = 1

    def bind(self, conn: GatewayConnection, key: tuple, lock: threading.Lock) -> None:
        self.conn = conn
        self.key = key
        self.lock = lock


@dataclass
class _Authenticated:
    """Internal: a successful HELLO carrying the bound session."""

    connection: GatewayConnection
    key: tuple
    welcome: dict


def _error(frame: dict, code: str, message: str) -> dict:
    return {
        "type": protocol.ERROR,
        "id": frame.get("id"),
        "code": code,
        "error": message,
    }


# --------------------------------------------------------------------------
# Running a server off the main thread (tests, benchmarks, embedding)
# --------------------------------------------------------------------------


class BackgroundServer:
    """A :class:`NetServer` on a dedicated event-loop thread.

    The blocking client and the benchmarks need a live server in the
    same process; this wrapper owns the loop thread and exposes
    ``host``/``port`` once :meth:`start` returns. Use as a context
    manager for deterministic teardown (graceful drain included).
    """

    def __init__(
        self,
        gateway: EnforcementGateway,
        config: ServerConfig | None = None,
        lifecycle=None,
    ):
        self.server = NetServer(gateway, config, lifecycle=lifecycle)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None
        self.port: int | None = None

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="repro-net-server"
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        if self.port is None:
            raise NetError("server failed to start within 10s")
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def stop(self) -> None:
        """Graceful drain, then join the loop thread. Idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
