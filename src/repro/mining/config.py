"""Mining-service configuration (import-light: the gateway embeds it)."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

#: The two operating modes of the service. ``propose_only`` mines and
#: parks candidates for an operator's MINE/APPROVE; ``auto_promote``
#: additionally submits floor-clearing candidates to shadow mode and
#: promotes them once the gates pass.
MODES = ("propose_only", "auto_promote")


@dataclass(frozen=True)
class MiningConfig:
    """Tuning knobs for the background mining service.

    ``min_support`` / ``min_confidence`` are the aumai-policyminer-style
    score floor in [0, 1]: *support* is the share of the audit window
    that directly evidences a candidate, *confidence* is how cleanly the
    candidate explains that evidence (gap-fill: fraction of its source
    observations the generalized view re-derives; tightening: fraction
    of current-version allows justified without the removed view). A
    candidate below either floor is parked, never auto-submitted.
    """

    #: Seconds between background mining cycles (``MiningService.start``).
    interval_s: float = 30.0
    #: Most recent audit entries the miner considers (the window).
    window_cap: int = 4096
    #: Entries required before the first mining pass runs.
    min_window: int = 8
    #: Score floor (see class docstring).
    min_support: float = 0.01
    min_confidence: float = 0.9
    #: ``propose_only`` or ``auto_promote``.
    mode: str = "propose_only"
    #: New candidates emitted per mining cycle, most-supported first.
    max_candidates_per_cycle: int = 4
    #: Example decision ids stamped into each candidate's provenance.
    max_examples: int = 8
    #: (table, column) opacity hints forwarded to the trace miner.
    opaque_columns: frozenset = frozenset()
    #: Bound on each in-process audit subscription queue; overflow is
    #: counted (``audit_dropped``), never silent.
    subscription_cap: int = 8192
    #: Optional durable JSONL sink path for the audit stream.
    audit_sink: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mining mode {self.mode!r}; expected {MODES}")
        for name in ("min_support", "min_confidence"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.window_cap < 1 or self.min_window < 1:
            raise ValueError("window_cap and min_window must be >= 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")

    def fingerprint(self) -> str:
        """A stable hash of every knob that shapes mining *output*.

        Stamped into each candidate's provenance so an auditor can tell
        whether two candidate sets came from the same miner settings.
        Sink/queue plumbing is excluded: it cannot change what is mined.
        """
        payload = json.dumps(
            {
                "window_cap": self.window_cap,
                "min_window": self.min_window,
                "min_support": self.min_support,
                "min_confidence": self.min_confidence,
                "max_candidates_per_cycle": self.max_candidates_per_cycle,
                "max_examples": self.max_examples,
                "opaque_columns": sorted(map(list, self.opaque_columns)),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]
