"""The decision-audit stream: durable sink + bounded subscriptions.

``gateway.decision_audit`` is a single nullable callback. An
:class:`AuditStream` is what a deployment installs there: it stamps each
:class:`~repro.serve.gateway.DecisionAuditRecord` with a monotonic id,
appends it to an optional durable JSONL sink, and fans it out to any
number of bounded in-process subscriptions (the mining service holds
one; tooling may hold others).

Loss is explicit, never silent: a subscription whose queue is full
evicts its oldest entry and increments a ``dropped`` counter; the
stream's :meth:`~AuditStream.stats` aggregate feeds the gateway's
``audit_dropped`` snapshot counter. A consumer can therefore always tell
a complete window from a clipped one — the property the old capped
decision ring lacked.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class AuditEntry:
    """One audited decision with its stream-assigned id."""

    id: int
    record: object  # repro.serve.gateway.DecisionAuditRecord (duck-typed)


class AuditSubscription:
    """A bounded queue of :class:`AuditEntry`, fed by one stream."""

    def __init__(self, stream: "AuditStream", cap: int):
        if cap < 1:
            raise ValueError("subscription cap must be >= 1")
        self._stream = stream
        self._cap = cap
        self._lock = threading.Lock()
        self._entries: deque[AuditEntry] = deque()
        self.dropped = 0
        self.delivered = 0

    def offer(self, entry: AuditEntry) -> None:
        with self._lock:
            if len(self._entries) >= self._cap:
                self._entries.popleft()
                self.dropped += 1
            self._entries.append(entry)
            self.delivered += 1

    def drain(self) -> list[AuditEntry]:
        """All queued entries, oldest first; the queue is left empty."""
        with self._lock:
            entries = list(self._entries)
            self._entries.clear()
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def close(self) -> None:
        self._stream._unsubscribe(self)


class AuditStream:
    """The callable installed as ``gateway.decision_audit``."""

    def __init__(self, sink_path: str | None = None):
        self._lock = threading.Lock()
        self._next_id = 1
        self._subscriptions: list[AuditSubscription] = []
        self.records = 0
        self.sink_records = 0
        self.sink_errors = 0
        self._sink_path = sink_path
        self._sink = open(sink_path, "a", encoding="utf-8") if sink_path else None

    # -- the audit hook -----------------------------------------------------------

    def __call__(self, record) -> None:
        with self._lock:
            entry = AuditEntry(id=self._next_id, record=record)
            self._next_id += 1
            self.records += 1
            subscriptions = list(self._subscriptions)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(self._to_wire(entry)) + "\n")
                    self._sink.flush()
                    self.sink_records += 1
                except OSError:
                    self.sink_errors += 1
        for subscription in subscriptions:
            subscription.offer(entry)

    # -- subscriptions ------------------------------------------------------------

    def subscribe(self, cap: int = 8192) -> AuditSubscription:
        subscription = AuditSubscription(self, cap)
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: AuditSubscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            subscriptions = list(self._subscriptions)
            stats = {
                "records": self.records,
                "subscribers": len(subscriptions),
                "sink_records": self.sink_records,
                "sink_errors": self.sink_errors,
            }
        stats["dropped"] = sum(s.dropped for s in subscriptions)
        return stats

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
            self._subscriptions.clear()

    # -- sink format --------------------------------------------------------------

    @staticmethod
    def _to_wire(entry: AuditEntry) -> dict:
        """One JSONL sink line; facts use the cluster wire encoding."""
        from repro.cluster.exchange import _serialize_fact

        record = entry.record
        return {
            "id": entry.id,
            "sql": record.sql,
            "bindings": dict(record.bindings),
            "allowed": record.allowed,
            "policy_version": record.policy_version,
            "from_cache": record.from_cache,
            "trace_len": record.trace_len,
            "views": list(getattr(record, "views", ())),
            "facts": [_serialize_fact(fact) for fact in record.facts],
        }
