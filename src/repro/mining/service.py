"""The background mining service: audit tap → miner → shadow → promote.

One :class:`MiningService` is bound to a gateway and its
:class:`~repro.lifecycle.reload.LifecycleManager`. Each cycle
(:meth:`run_once`, driven by a background thread or an admin verb):

1. drains the audit subscription into the bounded mining window;
2. progresses any mined candidate currently in shadow — once it has
   enough live shadow checks it is promoted through the standard gates,
   and the outcome (promoted, or rejected with §5 diagnoses) is recorded
   in the per-candidate disposition audit;
3. when the shadow slot is free and the window is warm, runs the
   :class:`~repro.mining.miner.AuditMiner` and dispositions each new
   candidate: below the score floor → *parked*; above it → submitted to
   shadow (``auto_promote``) or parked awaiting MINE/APPROVE
   (``propose_only``).

Safety model (docs/mining.md): a mined candidate never reaches the
active epoch except through the same ShadowRunner + promotion gates an
operator-pushed candidate would face. Gap-fillers are gated with
``max_allow_to_block=0`` (widening is the point; breaking the
application is fatal) plus the deployment's disclosure suite; tightening
candidates are gated with zero divergences of any kind (a removed view
that live traffic actually needed flips allows to blocks and is
rejected, with diagnoses).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.lifecycle.promote import GateConfig
from repro.mining.config import MiningConfig
from repro.mining.miner import AuditMiner, MinedCandidate, clears_floor
from repro.mining.stream import AuditEntry, AuditStream
from repro.util.errors import DbacError


class MiningError(DbacError):
    """Raised for invalid mining-service operations."""


#: Loosened total-divergence budget for gap-fill promotion: the per-kind
#: ``max_allow_to_block=0`` cap is the real gate.
_GAP_FILL_DIVERGENCE_BUDGET = 1_000_000


class MiningService:
    """Continuous policy mining bound to one gateway + lifecycle manager."""

    def __init__(
        self,
        gateway,
        lifecycle,
        config: MiningConfig | None = None,
        stream: AuditStream | None = None,
    ):
        self.gateway = gateway
        self.lifecycle = lifecycle
        self.config = config or MiningConfig()
        self.miner = AuditMiner(gateway.db, self.config)
        self._lock = threading.RLock()
        self.stream = stream or AuditStream(sink_path=self.config.audit_sink)
        if gateway.decision_audit is None:
            gateway.decision_audit = self.stream
        elif gateway.decision_audit is not self.stream:
            raise MiningError(
                "gateway.decision_audit is already taken by another hook;"
                " install the AuditStream first and pass it as stream="
            )
        self.subscription = self.stream.subscribe(cap=self.config.subscription_cap)
        self._window: deque[AuditEntry] = deque(maxlen=self.config.window_cap)
        #: Every candidate ever mined or submitted, by content fingerprint.
        self.candidates: dict[str, MinedCandidate] = {}
        #: Append-only per-candidate disposition audit (why promoted /
        #: parked / rejected), newest last; bounded.
        self.disposition_log: deque[dict] = deque(maxlen=256)
        self._shadow_fingerprint: str | None = None
        self.cycles = 0
        self.mined_total = 0
        self.promoted = 0
        self.rejected = 0
        self.parked = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- the mining cycle ---------------------------------------------------------

    def run_once(self) -> dict:
        """One full cycle; returns a JSON-able summary of what happened."""
        with self._lock:
            self.cycles += 1
            drained = self.subscription.drain()
            self._window.extend(drained)
            progressed = self._progress_shadow()
            mined = []
            if self._shadow_fingerprint is None and (
                len(self._window) >= self.config.min_window
            ):
                mined = self._mine_and_disposition()
            return {
                "cycle": self.cycles,
                "drained": len(drained),
                "window": len(self._window),
                "progressed": progressed,
                "mined": [c.fingerprint for c in mined],
            }

    def _mine_and_disposition(self) -> list[MinedCandidate]:
        report = self.miner.mine(
            self.gateway.policy,
            self.gateway.policy_version,
            list(self._window),
        )
        fresh: list[MinedCandidate] = []
        for candidate in report.candidates:
            known = self.candidates.get(candidate.fingerprint)
            if known is not None and known.status in (
                "promoted",
                "rejected",
                "shadowing",
            ):
                continue  # already dispositioned; don't thrash
            self.candidates[candidate.fingerprint] = candidate
            if known is None:
                self.mined_total += 1
                fresh.append(candidate)
                self._log(candidate, "mined", self._score_line(candidate))
            if not clears_floor(candidate, self.config):
                self._park(
                    candidate,
                    f"below score floor ({self._score_line(candidate)};"
                    f" floor support ≥ {self.config.min_support},"
                    f" confidence ≥ {self.config.min_confidence})",
                )
            elif self.config.mode != "auto_promote":
                self._park(candidate, "propose_only mode: awaiting MINE/APPROVE")
            elif self._shadow_fingerprint is not None:
                self._park(candidate, "shadow slot busy; will retry next cycle")
            else:
                self._submit(candidate)
        return fresh

    def _progress_shadow(self) -> dict | None:
        """Promote (or keep waiting on) the mined candidate in shadow."""
        fingerprint = self._shadow_fingerprint
        if fingerprint is None:
            return None
        candidate = self.candidates[fingerprint]
        runner = self.gateway.shadow
        if runner is not None:
            runner.drain(timeout_s=10.0)  # checks are async; count settled work
        status = self.lifecycle.shadow_status()
        if status is None:  # shadow torn down behind our back (operator)
            self._shadow_fingerprint = None
            self._park(candidate, "shadow stopped externally; re-parked")
            return {"fingerprint": fingerprint, "action": "re-parked"}
        gates = self._gates_for(candidate)
        if status["checks"] < gates.min_shadow_checks:
            return {
                "fingerprint": fingerprint,
                "action": "waiting",
                "checks": status["checks"],
                "required": gates.min_shadow_checks,
            }
        report = self.lifecycle.promote(gates=gates)
        if report.promoted:
            self.promoted += 1
            candidate.status = "promoted"
            candidate.disposition = (
                f"passed all gates after {status['checks']} shadow checks"
            )
            self._log(candidate, "promoted", candidate.disposition)
        else:
            self.rejected += 1
            candidate.status = "rejected"
            failed = [gate for gate in report.gates if not gate.passed]
            candidate.disposition = "; ".join(gate.describe() for gate in failed)
            candidate.diagnoses = tuple(report.diagnoses)
            self._log(
                candidate,
                "rejected",
                candidate.disposition,
                diagnoses=list(report.diagnoses),
            )
            self.lifecycle.stop_shadow()
        self._shadow_fingerprint = None
        return {"fingerprint": fingerprint, "action": candidate.status}

    # -- submission ---------------------------------------------------------------

    def approve(self, fingerprint: str) -> dict:
        """Operator approval: submit a parked/proposed candidate to shadow."""
        with self._lock:
            candidate = self.candidates.get(fingerprint)
            if candidate is None:
                raise MiningError(f"no mined candidate with fingerprint {fingerprint!r}")
            if candidate.status in ("shadowing", "promoted"):
                raise MiningError(
                    f"candidate {fingerprint} is already {candidate.status}"
                )
            if self._shadow_fingerprint is not None:
                raise MiningError(
                    "another mined candidate is already shadowing;"
                    " promote or stop it first"
                )
            self._log(candidate, "approved", "operator approved via MINE/APPROVE")
            self._submit(candidate)
            return candidate.to_wire()

    def submit(self, candidate: MinedCandidate) -> None:
        """Submit an externally-built candidate (tests, benchmarks)."""
        with self._lock:
            self.candidates[candidate.fingerprint] = candidate
            self._submit(candidate)

    def _submit(self, candidate: MinedCandidate) -> None:
        label = f"mined:{candidate.kind}:{candidate.fingerprint[:8]}"
        self.lifecycle.start_shadow(
            candidate.policy, provenance="mined", label=label
        )
        self._shadow_fingerprint = candidate.fingerprint
        candidate.status = "shadowing"
        candidate.disposition = f"submitted to shadow as {label}"
        self._log(candidate, "shadowing", candidate.disposition)

    def _park(self, candidate: MinedCandidate, reason: str) -> None:
        if candidate.status == "parked" and candidate.disposition == reason:
            return  # unchanged; don't spam the disposition log
        candidate.status = "parked"
        candidate.disposition = reason
        self.parked += 1
        self._log(candidate, "parked", reason)

    def _gates_for(self, candidate: MinedCandidate) -> GateConfig:
        """Kind-aware promotion gates (see the module docstring)."""
        base = self.lifecycle.gates
        if candidate.kind == "gap-fill":
            return GateConfig(
                max_divergences=_GAP_FILL_DIVERGENCE_BUDGET,
                max_allow_to_block=0,
                min_shadow_checks=base.min_shadow_checks,
                min_precision=0.0,  # widening is intended…
                min_recall=1.0,  # …losing coverage is not
                sensitive_suite=base.sensitive_suite,
                max_candidates=base.max_candidates,
                max_diagnoses=base.max_diagnoses,
            )
        return GateConfig(
            max_divergences=0,
            min_shadow_checks=base.min_shadow_checks,
            min_precision=1.0,  # narrowing must stay within the active policy
            min_recall=0.0,  # dropping an unexercised view lowers recall
            sensitive_suite=base.sensitive_suite,
            max_candidates=base.max_candidates,
            max_diagnoses=base.max_diagnoses,
        )

    # -- background loop ----------------------------------------------------------

    def start(self) -> None:
        """Run :meth:`run_once` every ``interval_s`` on a daemon thread."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="mining-service", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.run_once()
            except DbacError:
                # A cycle may race an operator action (e.g. a concurrent
                # shadow start); the next cycle re-reads the world.
                continue

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=10.0)

    def close(self) -> None:
        self.stop()
        self.subscription.close()
        self.stream.close()

    # -- observability ------------------------------------------------------------

    def status(self) -> dict:
        """The miner section of STATS / MINE STATUS."""
        with self._lock:
            by_status: dict[str, int] = {}
            for candidate in self.candidates.values():
                by_status[candidate.status] = by_status.get(candidate.status, 0) + 1
            return {
                "mode": self.config.mode,
                "running": self._thread is not None,
                "cycles": self.cycles,
                "window": len(self._window),
                "mined_total": self.mined_total,
                "promoted": self.promoted,
                "rejected": self.rejected,
                "candidates": by_status,
                "shadowing": self._shadow_fingerprint,
                "miner_fingerprint": self.config.fingerprint(),
                "stream": self.stream.stats(),
                "floor": {
                    "min_support": self.config.min_support,
                    "min_confidence": self.config.min_confidence,
                },
            }

    def candidates_wire(self) -> list[dict]:
        """MINE/CANDIDATES payload, strongest evidence first."""
        with self._lock:
            return [
                candidate.to_wire()
                for candidate in sorted(
                    self.candidates.values(),
                    key=lambda c: (-c.support, c.fingerprint),
                )
            ]

    def disposition_audit(self) -> list[dict]:
        with self._lock:
            return list(self.disposition_log)

    def _log(
        self,
        candidate: MinedCandidate,
        action: str,
        reason: str,
        diagnoses: list[str] | None = None,
    ) -> None:
        entry = {
            "seq": len(self.disposition_log) + 1,
            "fingerprint": candidate.fingerprint,
            "kind": candidate.kind,
            "view": candidate.view_name,
            "action": action,
            "reason": reason,
        }
        if diagnoses:
            entry["diagnoses"] = diagnoses
        self.disposition_log.append(entry)

    @staticmethod
    def _score_line(candidate: MinedCandidate) -> str:
        return (
            f"{candidate.kind} {candidate.view_name}:"
            f" support {candidate.support:.4f},"
            f" confidence {candidate.confidence:.4f}"
        )
