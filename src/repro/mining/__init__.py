"""repro.mining — continuous policy mining from the live decision audit.

The paper's position is that enforcement is one leg of the access-control
lifecycle: policies must also be *extracted, audited, and evolved* from
application behavior. This package closes that loop for a running
deployment:

* :class:`AuditStream` taps the gateway's per-decision audit hook into
  bounded in-process subscriptions and an optional durable JSONL sink,
  with an explicit ``audit_dropped`` counter instead of silent
  ring-buffer overwrite.
* :class:`AuditMiner` turns an accumulated audit window into scored
  **candidate policies**: *gap-filling* views generalized from observed
  allows that the current policy version cannot derive, and *tightening*
  removals of views live traffic never exercises.
* :class:`MiningService` runs the miner periodically in the background
  and feeds candidates that clear the support/confidence floor into the
  existing shadow → gated-promotion pipeline (``repro.lifecycle``),
  either automatically (``auto_promote``) or parked for an operator's
  MINE/APPROVE (``propose_only``).

See docs/mining.md for the architecture and the safety model.
"""

from repro.mining.config import MiningConfig
from repro.mining.miner import (
    AuditMiner,
    MinedCandidate,
    MiningPassReport,
    clears_floor,
    reconcile_by_fingerprint,
)
from repro.mining.service import MiningError, MiningService
from repro.mining.stream import AuditEntry, AuditStream, AuditSubscription

__all__ = [
    "AuditEntry",
    "AuditMiner",
    "AuditStream",
    "AuditSubscription",
    "MinedCandidate",
    "MiningConfig",
    "MiningError",
    "MiningPassReport",
    "MiningService",
    "clears_floor",
    "reconcile_by_fingerprint",
]
