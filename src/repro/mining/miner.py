"""Mining candidate policies out of a decision-audit window.

Two candidate kinds, both derived purely from what the gateway audited:

* **gap-filling** — an allowed decision the *current* policy version
  cannot re-derive (it was allowed under an earlier version, and the gap
  appeared when the policy changed). Matching observations are grouped
  by query skeleton and generalized through the §3 trace miner
  (:class:`repro.extract.miner.TraceMiner` over synthetic single-event
  traces; active discovery is off — an audit record cannot be re-run);
  each generalized view yields one candidate ``current ∪ {view}``.
* **tightening** — a view of the current policy that no audited allow's
  justification ever leaned on, over a window with enough
  current-version traffic to mean something; the candidate is
  ``current ∖ {view}``.

Every candidate carries aumai-style ``support``/``confidence`` scores in
[0, 1], the source window bounds, example decision ids, and the
miner-config fingerprint — stamped both on the dataclass and into the
candidate policy's ``# @…`` provenance annotations so the metadata
survives text serialization and the wire.

Mining is deterministic: the window is canonically ordered before
grouping, so the same entries produce byte-identical candidates (and
fingerprints) regardless of ingest order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import Result
from repro.extract.miner import MinerConfig, QueryEvent, RequestTrace, TraceMiner
from repro.mining.config import MiningConfig
from repro.mining.stream import AuditEntry
from repro.policy.policy import Policy
from repro.policy.serialize import policy_to_text
from repro.policy.view import View
from repro.sqlir import ast
from repro.sqlir.skeleton import skeletonize
from repro.util.errors import DbacError
from repro.workloads.runner import Request

#: Session-attribute prefix used when rebuilding miner sessions from
#: audit bindings (the trace miner matches slots against session attrs).
_BINDING_ATTR = "binding:"


@dataclass
class MinedCandidate:
    """One scored candidate policy with full provenance."""

    kind: str  # "gap-fill" | "tighten"
    policy: Policy
    view_name: str  # the view added (gap-fill) or removed (tighten)
    view_sql: str
    fingerprint: str  # Policy.fingerprint() of the candidate
    support: float
    confidence: float
    window: tuple[int, int]  # first/last audit decision id considered
    examples: tuple[int, ...]  # example decision ids evidencing it
    miner_fingerprint: str
    source_version: int  # the active policy version mined against
    status: str = "proposed"  # proposed|parked|shadowing|promoted|rejected
    disposition: str = ""  # why the status is what it is
    diagnoses: tuple[str, ...] = ()  # §5 diagnoses attached on rejection

    def to_wire(self) -> dict:
        """JSON-able summary for MINE/CANDIDATES and the STATS section."""
        return {
            "kind": self.kind,
            "view": self.view_name,
            "view_sql": self.view_sql,
            "fingerprint": self.fingerprint,
            "support": round(self.support, 4),
            "confidence": round(self.confidence, 4),
            "window": list(self.window),
            "examples": list(self.examples),
            "miner_fingerprint": self.miner_fingerprint,
            "source_version": self.source_version,
            "status": self.status,
            "disposition": self.disposition,
            "diagnoses": list(self.diagnoses),
            "views": len(self.policy),
            "text": policy_to_text(self.policy),
        }


@dataclass
class MiningPassReport:
    """What one mining pass saw (for STATS and the E19 tables)."""

    window: int = 0
    allows: int = 0
    blocks: int = 0
    underivable_allows: int = 0
    skipped_unparseable: int = 0
    gap_groups: int = 0
    candidates: list[MinedCandidate] = field(default_factory=list)


class AuditMiner:
    """Stateless candidate extraction over one audit window."""

    def __init__(self, db, config: MiningConfig | None = None):
        self.db = db
        self.config = config or MiningConfig()

    # -- the mining pass ----------------------------------------------------------

    def mine(
        self,
        current: Policy,
        current_version: int,
        window: list[AuditEntry],
    ) -> MiningPassReport:
        report = MiningPassReport(window=len(window))
        if not window:
            return report
        # Canonical order: grouping and view naming must not depend on
        # ingest order (the determinism property in tests/properties).
        entries = sorted(
            window,
            key=lambda e: (
                e.record.sql,
                repr(sorted(e.record.bindings.items())),
                not e.record.allowed,
                e.id,
            ),
        )
        first_id = min(e.id for e in entries)
        last_id = max(e.id for e in entries)
        span = (first_id, last_id)
        miner_fp = self.config.fingerprint()

        checker = self._checker_for(current)
        gap_groups: dict[object, list[AuditEntry]] = {}
        uses: dict[str, int] = {view.name: 0 for view in current}
        current_version_allows = 0
        for entry in entries:
            record = entry.record
            if not record.allowed:
                report.blocks += 1
                continue
            report.allows += 1
            for name in getattr(record, "views", ()):
                if name in uses:
                    uses[name] += 1
            if record.policy_version == current_version:
                current_version_allows += 1
                continue  # the current policy itself allowed it: no gap
            parsed = self._parse_select(record.sql)
            if parsed is None:
                report.skipped_unparseable += 1
                continue
            if self._derivable(checker, parsed, record):
                continue
            report.underivable_allows += 1
            gap_groups.setdefault(skeletonize(parsed).statement, []).append(entry)
        report.gap_groups = len(gap_groups)

        candidates: list[MinedCandidate] = []
        seen = {current.fingerprint()}
        for group in sorted(
            gap_groups.values(), key=lambda g: min(e.record.sql for e in g)
        ):
            candidate = self._gap_candidate(
                current, current_version, group, len(entries), span, miner_fp
            )
            if candidate is not None and candidate.fingerprint not in seen:
                seen.add(candidate.fingerprint)
                candidates.append(candidate)

        if current_version_allows >= self.config.min_window and len(current) > 1:
            example_ids = tuple(
                sorted(
                    e.id
                    for e in entries
                    if e.record.allowed
                    and e.record.policy_version == current_version
                )[: self.config.max_examples]
            )
            for view in sorted(current, key=lambda v: v.name):
                if uses.get(view.name, 0) > 0:
                    continue
                candidate = self._tighten_candidate(
                    current,
                    current_version,
                    view,
                    current_version_allows,
                    len(entries),
                    span,
                    example_ids,
                    miner_fp,
                )
                if candidate.fingerprint not in seen:
                    seen.add(candidate.fingerprint)
                    candidates.append(candidate)

        report.candidates = candidates[: self.config.max_candidates_per_cycle]
        return report

    # -- gap-filling --------------------------------------------------------------

    def _gap_candidate(
        self,
        current: Policy,
        current_version: int,
        group: list[AuditEntry],
        window_size: int,
        span: tuple[int, int],
        miner_fp: str,
    ) -> MinedCandidate | None:
        mined = self._generalize(group)
        if mined is None:
            return None
        name = self._fresh_view_name(current)
        view = View(
            name,
            mined.ast,
            self.db.schema,
            f"mined gap-fill from audit window {span[0]}..{span[1]}",
        )
        policy = current.with_view(view)
        # Confidence: how cleanly the generalized view re-derives its own
        # source observations (a sloppy generalization scores below 1.0).
        candidate_checker = self._checker_for(policy)
        rederived = 0
        for entry in group:
            parsed = self._parse_select(entry.record.sql)
            if parsed is not None and self._derivable(
                candidate_checker, parsed, entry.record
            ):
                rederived += 1
        support = len(group) / window_size
        confidence = rederived / len(group)
        examples = tuple(sorted(e.id for e in group)[: self.config.max_examples])
        return self._finalize(
            kind="gap-fill",
            policy=policy,
            view_name=name,
            view_sql=view.sql,
            support=support,
            confidence=confidence,
            span=span,
            examples=examples,
            miner_fp=miner_fp,
            source_version=current_version,
        )

    def _generalize(self, group: list[AuditEntry]) -> View | None:
        """Run the §3 trace miner over one skeleton group of audit allows.

        Each audit record becomes a synthetic single-event trace: guards
        cannot be reconstructed from audit (no per-request grouping, no
        result rows), and active discovery is off (records cannot be
        re-run) — both conservative: the generalized view covers exactly
        the observed shape, slot by slot.
        """
        traces = []
        attrs: dict[str, str] = {}
        for entry in group:
            record = entry.record
            parsed = self._parse_select(record.sql)
            if parsed is None:
                continue
            session = {}
            for key in sorted(record.bindings):
                attr = f"{_BINDING_ATTR}{key}"
                attrs[attr] = key
                session[attr] = record.bindings[key]
            skeleton = skeletonize(parsed)
            traces.append(
                RequestTrace(
                    request=Request(handler="audit", params={}, session=session),
                    events=[
                        QueryEvent(
                            index=0,
                            sql_skeleton=skeleton,
                            values=skeleton.values,
                            result=Result(columns=[], rows=[]),
                            statement=parsed,
                        )
                    ],
                )
            )
        if not traces:
            return None
        miner = TraceMiner(
            None,
            self.db,
            MinerConfig(
                opaque_columns=self.config.opaque_columns,
                size_budget=None,
                active_discovery=False,
                session_params=attrs,
            ),
        )
        try:
            mined = miner.mine_traces(traces)
        except DbacError:
            return None
        views = mined.views
        return views[0] if views else None

    # -- tightening ---------------------------------------------------------------

    def _tighten_candidate(
        self,
        current: Policy,
        current_version: int,
        view: View,
        current_version_allows: int,
        window_size: int,
        span: tuple[int, int],
        examples: tuple[int, ...],
        miner_fp: str,
    ) -> MinedCandidate:
        policy = Policy(
            [v for v in current.views if v.name != view.name],
            name=current.name,
            meta=current.meta,
        )
        support = current_version_allows / window_size
        return self._finalize(
            kind="tighten",
            policy=policy,
            view_name=view.name,
            view_sql=view.sql,
            support=support,
            # No audited justification ever leaned on the view, so every
            # observed allow is explained without it.
            confidence=1.0,
            span=span,
            examples=examples,
            miner_fp=miner_fp,
            source_version=current_version,
        )

    # -- shared plumbing ----------------------------------------------------------

    def _finalize(
        self,
        kind: str,
        policy: Policy,
        view_name: str,
        view_sql: str,
        support: float,
        confidence: float,
        span: tuple[int, int],
        examples: tuple[int, ...],
        miner_fp: str,
        source_version: int,
    ) -> MinedCandidate:
        fingerprint = policy.fingerprint()
        policy.name = f"mined-{kind}-{fingerprint[:8]}"
        policy.meta = dict(policy.meta)
        policy.meta.update(
            {
                "provenance": "mined",
                "kind": kind,
                "window": f"{span[0]}..{span[1]}",
                "examples": ",".join(str(i) for i in examples),
                "miner": miner_fp,
                "support": f"{support:.4f}",
                "confidence": f"{confidence:.4f}",
                "source-version": str(source_version),
            }
        )
        return MinedCandidate(
            kind=kind,
            policy=policy,
            view_name=view_name,
            view_sql=view_sql,
            fingerprint=fingerprint,
            support=support,
            confidence=confidence,
            window=span,
            examples=examples,
            miner_fingerprint=miner_fp,
            source_version=source_version,
        )

    @staticmethod
    def _fresh_view_name(current: Policy) -> str:
        index = 1
        while f"G{index}" in current:
            index += 1
        return f"G{index}"

    def _checker_for(self, policy: Policy):
        from repro.enforce.checker import ComplianceChecker

        return ComplianceChecker(self.db.schema, policy, history_enabled=True)

    def _parse_select(self, sql: str) -> ast.Select | None:
        try:
            parsed = self.db.parse(sql)
        except DbacError:
            return None
        return parsed if isinstance(parsed, ast.Select) else None

    def _derivable(self, checker, parsed: ast.Select, record) -> bool:
        """Replay one audited decision against ``checker`` (E14a-style)."""
        from repro.serve.pool import _TraceReplica

        replica = _TraceReplica()
        replica.apply([("add", fact) for fact in record.facts])
        try:
            return checker.check(parsed, record.bindings, replica).allowed
        except DbacError:
            return False


def clears_floor(candidate: MinedCandidate, config: MiningConfig) -> bool:
    """Does the candidate meet the auto-submission score floor?"""
    return (
        candidate.support >= config.min_support
        and candidate.confidence >= config.min_confidence
    )


def reconcile_by_fingerprint(candidate_lists: list[list[dict]]) -> list[dict]:
    """Merge per-shard MINE/CANDIDATES replies by content fingerprint.

    Shards of a cluster mine from their own audit streams; the same
    traffic shape mined on two shards produces candidates with the same
    content fingerprint (``Policy.fingerprint()`` is ingest- and
    shard-independent). The router merges them into one entry carrying
    the per-shard supports and the union of example ids.
    """
    merged: dict[str, dict] = {}
    for shard_index, candidates in enumerate(candidate_lists):
        for candidate in candidates:
            fingerprint = candidate.get("fingerprint", "")
            entry = merged.get(fingerprint)
            if entry is None:
                entry = dict(candidate)
                entry["shards"] = []
                merged[fingerprint] = entry
            entry["shards"].append(
                {
                    "shard": shard_index,
                    "support": candidate.get("support", 0.0),
                    "confidence": candidate.get("confidence", 0.0),
                    "status": candidate.get("status", ""),
                }
            )
            # Headline score: the strongest shard's evidence.
            if candidate.get("support", 0.0) > entry.get("support", 0.0):
                for key in ("support", "confidence", "status", "disposition"):
                    if key in candidate:
                        entry[key] = candidate[key]
            examples = set(entry.get("examples", ())) | set(
                candidate.get("examples", ())
            )
            entry["examples"] = sorted(examples)
    return sorted(
        merged.values(),
        key=lambda c: (-c.get("support", 0.0), c.get("fingerprint", "")),
    )


__all__ = [
    "AuditMiner",
    "MinedCandidate",
    "MiningPassReport",
    "clears_floor",
    "reconcile_by_fingerprint",
]
