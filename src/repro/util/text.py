"""Small text helpers shared across modules."""

from __future__ import annotations

from collections.abc import Iterable


def sql_quote(value: object) -> str:
    """Render a Python value as a SQL literal.

    ``None`` becomes ``NULL``, booleans become ``TRUE``/``FALSE``, strings
    are single-quoted with embedded quotes doubled.
    """
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def comma_join(parts: Iterable[str]) -> str:
    """Join parts with ``", "`` — the separator used throughout SQL output."""
    return ", ".join(parts)


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of ``text`` by ``prefix``."""
    return "\n".join(prefix + line for line in text.splitlines())


def fresh_name_factory(prefix: str):
    """Return a callable producing ``prefix0``, ``prefix1``, ... on each call."""
    counter = 0

    def fresh() -> str:
        nonlocal counter
        name = f"{prefix}{counter}"
        counter += 1
        return name

    return fresh
