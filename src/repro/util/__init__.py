"""Shared utilities for the dbac reproduction: errors and text helpers."""

from repro.util.errors import (
    DbacError,
    EngineError,
    IntegrityError,
    ParseError,
    PolicyError,
    TranslationError,
    UnsupportedSqlError,
)

__all__ = [
    "DbacError",
    "EngineError",
    "IntegrityError",
    "ParseError",
    "PolicyError",
    "TranslationError",
    "UnsupportedSqlError",
]
