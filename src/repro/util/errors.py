"""Exception hierarchy for the dbac package.

Every error raised by this package derives from :class:`DbacError`, so
applications embedding the library can catch one type at the boundary.
The sub-hierarchy mirrors the package layout: parsing, translation to the
conjunctive-query IR, engine execution, and policy handling each get their
own class.
"""

from __future__ import annotations


class DbacError(Exception):
    """Base class for all errors raised by the dbac package."""


class ParseError(DbacError):
    """Raised when SQL text cannot be lexed or parsed.

    Carries the offending position so callers can render a caret under the
    bad token.
    """

    def __init__(self, message: str, position: int | None = None, sql: str | None = None):
        super().__init__(message)
        self.position = position
        self.sql = sql

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None or self.sql is None:
            return base
        line = self.sql.replace("\n", " ")
        caret = " " * self.position + "^"
        return f"{base}\n  {line}\n  {caret}"


class UnsupportedSqlError(DbacError):
    """Raised when SQL parses but uses a feature outside the dialect."""


class TranslationError(DbacError):
    """Raised when a SQL statement cannot be translated to the CQ IR.

    This covers features the engine can execute but the reasoning layer
    cannot represent (aggregates, LEFT JOIN, arithmetic in predicates).
    """


class EngineError(DbacError):
    """Raised for execution-time failures in the in-memory engine."""


class IntegrityError(EngineError):
    """Raised when an insert/update/delete violates a schema constraint."""


class PolicyError(DbacError):
    """Raised for malformed policies or policy files."""
