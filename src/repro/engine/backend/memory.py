"""The in-memory backend: the original toy engine, re-homed.

Storage is the :class:`~repro.engine.table.Table` dict that used to live
inside ``Database``; execution is the AST-walking executor in
:mod:`repro.engine.executor`, which receives this backend as its ``db``
context (it needs only ``schema`` and ``table()``). Snapshots are cheap
structural copies, which is what makes the active-learning extraction
loop fast.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.backend.base import EngineBackend
from repro.engine.schema import Schema, TableSchema
from repro.engine.table import Table
from repro.sqlir import ast
from repro.util.errors import EngineError


class MemoryBackend(EngineBackend):
    """Tables as Python dicts with per-column hash indexes."""

    name = "memory"

    def __init__(self, schema: Schema):
        super().__init__(schema)
        self._tables: dict[str, Table] = {
            name: Table(table_schema)
            for name, table_schema in schema.tables.items()
        }

    # -- storage primitives --------------------------------------------------------

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise EngineError(f"unknown table {name!r}")
        return self._tables[name]

    def create_table(self, table_schema: TableSchema) -> None:
        self._ensure_open()
        self._tables[table_schema.name] = Table(table_schema)

    def execute(self, stmt: ast.Statement) -> object:
        self._ensure_open()
        from repro.engine.executor import execute

        return execute(self, stmt)

    def insert_rows(self, table: str, rows: Sequence[Sequence[object]]) -> int:
        self._ensure_open()
        target = self.table(table)
        from repro.engine.executor import _check_foreign_keys

        for row in rows:
            _check_foreign_keys(self, target.schema, list(row))
            target.insert(list(row))
        return len(rows)

    # -- snapshots -----------------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        self._ensure_open()
        return {name: table.snapshot() for name, table in self._tables.items()}

    def restore(self, snapshot: object) -> None:
        self._ensure_open()
        assert isinstance(snapshot, dict)
        for name, table_snapshot in snapshot.items():
            self._tables[name].restore(table_snapshot)

    # -- introspection -------------------------------------------------------------

    def row_count(self, table: str) -> int:
        return len(self.table(table))

    def relation_contents(self) -> dict[str, set[tuple]]:
        return {name: set(table.rows()) for name, table in self._tables.items()}
