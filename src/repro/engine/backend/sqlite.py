"""The stdlib-``sqlite3`` backend: a real database behind the proxy.

This is what lets the enforcement stack front millions of durable rows
(the Blockaid deployment shape) instead of the toy in-memory engine:
statements in our SQL IR are compiled to SQLite SQL with **positional
parameter binding** (every literal becomes a ``?``; nothing is spliced
into SQL text), integrity is delegated to SQLite itself
(``PRAGMA foreign_keys = ON``, declared PRIMARY KEY / NOT NULL), and
snapshot/restore run as single transactions.

Dialect fidelity notes (the contract suite and the E15 agreement run
hold the line where it matters):

* **Types** — SQLite is dynamically typed, so INSERTed values are
  checked against the declared column types with the same
  :func:`~repro.engine.types.check_value` the in-memory engine uses;
  BOOL columns are declared ``BOOLEAN`` and round-tripped back to
  Python bools via a declared-type converter.
* **Division** — our engine's ``/`` is real division; SQLite's integer
  ``/`` truncates, so the compiler emits ``CAST(x AS REAL) / y``.
  Division by zero yields NULL here but raises in the in-memory engine.
* **Row order** — SELECT without ORDER BY returns rowid order, which
  matches the in-memory engine's insertion order except for tables
  whose single INTEGER primary key aliases the rowid (then it is PK
  order). Order-sensitive callers must say ORDER BY.
* **Threading** — one connection guarded by an RLock; the serving
  gateway's concurrent readers serialize here (SQLite serializes
  writers anyway). Fine for benchmarking enforcement overhead, which
  dwarfs queue time at our scales.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Sequence

from repro.engine.backend.base import EngineBackend
from repro.engine.executor import Result
from repro.engine.schema import Schema, TableSchema
from repro.engine.types import ColumnType, check_value
from repro.sqlir import ast
from repro.util.errors import EngineError, IntegrityError
from repro.util.text import comma_join

#: Declared-type names, chosen so BOOL survives the round trip via the
#: converter below (sqlite3's PARSE_DECLTYPES applies it to any result
#: column whose *declared* type is BOOLEAN; computed expressions keep
#: SQLite's native 0/1).
_TYPE_NAMES = {
    ColumnType.INT: "INTEGER",
    ColumnType.TEXT: "TEXT",
    ColumnType.REAL: "REAL",
    ColumnType.BOOL: "BOOLEAN",
}

sqlite3.register_converter("BOOLEAN", lambda raw: raw not in (b"0", b""))


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class SqliteBackend(EngineBackend):
    """Durable (or ``:memory:``) storage via the stdlib ``sqlite3``."""

    name = "sqlite"

    def __init__(self, schema: Schema, path: str | None = None):
        super().__init__(schema)
        self.path = path or ":memory:"
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path,
            check_same_thread=False,
            detect_types=sqlite3.PARSE_DECLTYPES,
        )
        self._conn.execute("PRAGMA foreign_keys = ON")
        if path is not None:
            # File-backed databases may be shared by a whole shard fleet
            # (cluster --shared-db-path): WAL lets N readers proceed
            # under the single writer, and the busy timeout absorbs
            # seed-time write contention instead of surfacing
            # "database is locked" immediately.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA busy_timeout = 10000")
        for table_schema in schema.tables.values():
            self._create(table_schema)
        self._conn.commit()

    # -- identity ------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "path": self.path}

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._conn.close()

    # -- DDL -----------------------------------------------------------------------

    def create_table(self, table_schema: TableSchema) -> None:
        self._ensure_open()
        with self._lock, self._conn:
            self._create(table_schema)

    def _create(self, table_schema: TableSchema) -> None:
        """``CREATE TABLE IF NOT EXISTS`` — reopening a durable file keeps
        its data; the caller is responsible for schema compatibility."""
        defs = []
        for column in table_schema.columns:
            pieces = [_quote_ident(column.name), _TYPE_NAMES[column.type]]
            if not column.nullable:
                pieces.append("NOT NULL")
            defs.append(" ".join(pieces))
        if table_schema.primary_key:
            keys = comma_join(_quote_ident(c) for c in table_schema.primary_key)
            defs.append(f"PRIMARY KEY ({keys})")
        for fk in table_schema.foreign_keys:
            defs.append(
                f"FOREIGN KEY ({_quote_ident(fk.column)}) REFERENCES"
                f" {_quote_ident(fk.ref_table)} ({_quote_ident(fk.ref_column)})"
            )
        ddl = (
            f"CREATE TABLE IF NOT EXISTS {_quote_ident(table_schema.name)}"
            f" ({comma_join(defs)})"
        )
        self._conn.execute(ddl)

    # -- execution -----------------------------------------------------------------

    def execute(self, stmt: ast.Statement) -> Result | int:
        self._ensure_open()
        if isinstance(stmt, ast.Select):
            sql_text, params = compile_statement(stmt)
            with self._lock:
                cursor = self._run(sql_text, params)
                rows = [tuple(row) for row in cursor.fetchall()]
                columns = (
                    [d[0] for d in cursor.description] if cursor.description else []
                )
            return Result(columns=self._output_names(stmt, columns), rows=rows)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.Update) or isinstance(stmt, ast.Delete):
            sql_text, params = compile_statement(stmt)
            with self._lock, self._conn:
                return self._run(sql_text, params).rowcount
        raise EngineError(f"cannot execute {type(stmt).__name__}")

    def _run(self, sql_text: str, params: Sequence[object]) -> sqlite3.Cursor:
        try:
            return self._conn.execute(sql_text, tuple(params))
        except sqlite3.IntegrityError as exc:
            raise IntegrityError(f"sqlite integrity violation: {exc}") from exc
        except sqlite3.Error as exc:
            raise EngineError(f"sqlite error: {exc}") from exc

    def _output_names(self, stmt: ast.Select, cursor_names: list[str]) -> list[str]:
        """Result column names matching the in-memory engine's conventions
        (bare column names, ``colN`` for unnamed expressions)."""
        names: list[str] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                aliases = (
                    [item.expr.table]
                    if item.expr.table is not None
                    else [ref.alias for ref in stmt.tables()]
                )
                alias_to_name = {ref.alias: ref.name for ref in stmt.tables()}
                for alias in aliases:
                    names.extend(self.schema.table(alias_to_name[alias]).column_names)
                continue
            name = item.alias or (
                item.expr.name
                if isinstance(item.expr, ast.Column)
                else f"col{len(names)}"
            )
            names.append(name)
        if len(names) != len(cursor_names):  # defensive: fall back to sqlite's
            return cursor_names
        return names

    def _execute_insert(self, stmt: ast.Insert) -> int:
        """INSERT with the same width/typing/unknown-column checks the
        in-memory executor applies, then one parameterized statement."""
        table_schema = self.schema.table(stmt.table)
        checked_rows: list[tuple] = []
        for row_exprs in stmt.rows:
            if stmt.columns is not None:
                if len(row_exprs) != len(stmt.columns):
                    raise EngineError("INSERT row width does not match column list")
                provided = dict(
                    zip(stmt.columns, (_literal_value(e) for e in row_exprs))
                )
                unknown = set(provided) - set(table_schema.column_names)
                if unknown:
                    raise IntegrityError(f"unknown INSERT columns {sorted(unknown)}")
                values = [provided.get(c.name) for c in table_schema.columns]
            else:
                if len(row_exprs) != len(table_schema.columns):
                    raise EngineError("INSERT row width does not match table")
                values = [_literal_value(e) for e in row_exprs]
            checked_rows.append(self._check_row(table_schema, values))
        with self._lock, self._conn:
            cursor = self._conn.cursor()
            sql_text = self._insert_sql(table_schema)
            try:
                cursor.executemany(sql_text, checked_rows)
            except sqlite3.IntegrityError as exc:
                raise IntegrityError(f"sqlite integrity violation: {exc}") from exc
            except sqlite3.Error as exc:
                raise EngineError(f"sqlite error: {exc}") from exc
        return len(checked_rows)

    def _insert_sql(self, table_schema: TableSchema) -> str:
        columns = comma_join(_quote_ident(c) for c in table_schema.column_names)
        slots = comma_join("?" for _ in table_schema.columns)
        return (
            f"INSERT INTO {_quote_ident(table_schema.name)} ({columns})"
            f" VALUES ({slots})"
        )

    def _check_row(self, table_schema: TableSchema, values: Sequence[object]) -> tuple:
        if len(values) != len(table_schema.columns):
            raise IntegrityError(
                f"table {table_schema.name!r} expects {len(table_schema.columns)}"
                f" values, got {len(values)}"
            )
        checked = []
        for value, column in zip(values, table_schema.columns):
            coerced = check_value(value, column.type, column.name)
            if coerced is None and not column.nullable:
                raise IntegrityError(
                    f"column {column.name!r} of {table_schema.name!r} is NOT NULL"
                )
            checked.append(coerced)
        return tuple(checked)

    # -- bulk load -----------------------------------------------------------------

    def insert_rows(self, table: str, rows: Sequence[Sequence[object]]) -> int:
        self._ensure_open()
        table_schema = self.schema.table(table)
        checked = [self._check_row(table_schema, row) for row in rows]
        with self._lock, self._conn:
            cursor = self._conn.cursor()
            try:
                cursor.executemany(self._insert_sql(table_schema), checked)
            except sqlite3.IntegrityError as exc:
                raise IntegrityError(f"sqlite integrity violation: {exc}") from exc
            except sqlite3.Error as exc:
                raise EngineError(f"sqlite error: {exc}") from exc
        return len(checked)

    # -- snapshots -----------------------------------------------------------------

    def snapshot(self) -> dict[str, list[tuple]]:
        self._ensure_open()
        with self._lock:
            return {
                name: [tuple(row) for row in self._select_all(name)]
                for name in self.schema.tables
            }

    def restore(self, snapshot: object) -> None:
        """Replace all contents in one transaction (FK checks deferred to
        commit, so restore order does not matter)."""
        self._ensure_open()
        assert isinstance(snapshot, dict)
        with self._lock, self._conn:
            self._conn.execute("PRAGMA defer_foreign_keys = ON")
            for name, rows in snapshot.items():
                table_schema = self.schema.table(name)
                self._conn.execute(f"DELETE FROM {_quote_ident(name)}")
                self._conn.executemany(
                    self._insert_sql(table_schema), [tuple(row) for row in rows]
                )

    # -- introspection -------------------------------------------------------------

    def row_count(self, table: str) -> int:
        self._ensure_open()
        self.schema.table(table)  # raises on unknown table, like memory
        with self._lock:
            cursor = self._run(
                f"SELECT COUNT(*) FROM {_quote_ident(table)}", ()
            )
            return int(cursor.fetchone()[0])

    def relation_contents(self) -> dict[str, set[tuple]]:
        self._ensure_open()
        with self._lock:
            return {
                name: {tuple(row) for row in self._select_all(name)}
                for name in self.schema.tables
            }

    def _select_all(self, table: str) -> list:
        columns = comma_join(
            _quote_ident(c) for c in self.schema.table(table).column_names
        )
        return self._run(
            f"SELECT {columns} FROM {_quote_ident(table)} ORDER BY rowid", ()
        ).fetchall()


# --------------------------------------------------------------------------
# IR -> SQLite compilation
# --------------------------------------------------------------------------


def compile_statement(stmt: ast.Statement) -> tuple[str, list[object]]:
    """Compile a bound IR statement to (SQLite SQL, positional params).

    Every literal becomes a ``?`` placeholder (LIMIT excepted — it is an
    int in the AST, not an expression), so values never appear in SQL
    text and SQLite's binding layer handles quoting and types.
    """
    compiler = _Compiler()
    if isinstance(stmt, ast.Select):
        text = compiler.select(stmt)
    elif isinstance(stmt, ast.Update):
        text = compiler.update(stmt)
    elif isinstance(stmt, ast.Delete):
        text = compiler.delete(stmt)
    else:
        raise EngineError(f"cannot compile {type(stmt).__name__} for sqlite")
    return text, compiler.params


class _Compiler:
    """Mirrors the canonical printer, but parameterizes literals and
    papers over the dialect gaps (integer division, identifier quoting)."""

    def __init__(self) -> None:
        self.params: list[object] = []

    # -- statements ---------------------------------------------------------------

    def select(self, stmt: ast.Select) -> str:
        parts = ["SELECT"]
        if stmt.distinct:
            parts.append("DISTINCT")
        parts.append(comma_join(self._select_item(item) for item in stmt.items))
        parts.append("FROM")
        parts.append(comma_join(self._table_ref(src) for src in stmt.sources))
        for join in stmt.joins:
            keyword = "JOIN" if join.kind == "INNER" else "LEFT JOIN"
            parts.append(
                f"{keyword} {self._table_ref(join.table)} ON {self.expr(join.on)}"
            )
        if stmt.where is not None:
            parts.append(f"WHERE {self.expr(stmt.where)}")
        if stmt.group_by:
            parts.append("GROUP BY " + comma_join(self.expr(k) for k in stmt.group_by))
        if stmt.having is not None:
            parts.append(f"HAVING {self.expr(stmt.having)}")
        if stmt.order_by:
            keys = comma_join(
                self.expr(o.expr) + (" DESC" if o.descending else "")
                for o in stmt.order_by
            )
            parts.append(f"ORDER BY {keys}")
        if stmt.limit is not None:
            parts.append(f"LIMIT {int(stmt.limit)}")
        return " ".join(parts)

    def update(self, stmt: ast.Update) -> str:
        sets = comma_join(
            f"{_quote_ident(col)} = {self.expr(e)}" for col, e in stmt.assignments
        )
        text = f"UPDATE {_quote_ident(stmt.table)} SET {sets}"
        if stmt.where is not None:
            text += f" WHERE {self.expr(stmt.where)}"
        return text

    def delete(self, stmt: ast.Delete) -> str:
        text = f"DELETE FROM {_quote_ident(stmt.table)}"
        if stmt.where is not None:
            text += f" WHERE {self.expr(stmt.where)}"
        return text

    # -- clauses ------------------------------------------------------------------

    def _select_item(self, item: ast.SelectItem) -> str:
        text = self.expr(item.expr)
        if item.alias is not None:
            return f"{text} AS {_quote_ident(item.alias)}"
        return text

    def _table_ref(self, ref: ast.TableRef) -> str:
        if ref.alias != ref.name:
            return f"{_quote_ident(ref.name)} AS {_quote_ident(ref.alias)}"
        return _quote_ident(ref.name)

    # -- expressions --------------------------------------------------------------

    def expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                # Bound as a parameter NULL never matches `= ?`; rendered
                # NULL keeps SQLite's 3VL identical to the evaluator's.
                return "NULL"
            self.params.append(
                int(expr.value) if isinstance(expr.value, bool) else expr.value
            )
            return "?"
        if isinstance(expr, ast.Column):
            if expr.table is not None:
                return f"{_quote_ident(expr.table)}.{_quote_ident(expr.name)}"
            return _quote_ident(expr.name)
        if isinstance(expr, ast.Param):
            raise EngineError(
                f"unbound parameter {expr.label()!r} reached the sqlite backend"
            )
        if isinstance(expr, ast.Star):
            return f"{_quote_ident(expr.table)}.*" if expr.table is not None else "*"
        if isinstance(expr, ast.Comparison):
            return f"{self._operand(expr.left)} {expr.op} {self._operand(expr.right)}"
        if isinstance(expr, ast.Arith):
            if expr.op == "/":
                # SQLite's integer / truncates; ours is real division.
                return (
                    f"CAST({self._operand(expr.left)} AS REAL)"
                    f" / {self._operand(expr.right)}"
                )
            return f"{self._operand(expr.left)} {expr.op} {self._operand(expr.right)}"
        if isinstance(expr, ast.BoolOp):
            joiner = f" {expr.op} "
            return joiner.join(self._bool_operand(op, expr.op) for op in expr.operands)
        if isinstance(expr, ast.Not):
            return f"NOT {self._bool_operand(expr.operand, 'NOT')}"
        if isinstance(expr, ast.InList):
            keyword = "NOT IN" if expr.negated else "IN"
            items = comma_join(self.expr(item) for item in expr.items)
            return f"{self._operand(expr.expr)} {keyword} ({items})"
        if isinstance(expr, ast.IsNull):
            keyword = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"{self._operand(expr.expr)} {keyword}"
        if isinstance(expr, ast.FuncCall):
            distinct = "DISTINCT " if expr.distinct else ""
            args = comma_join(self.expr(a) for a in expr.args)
            return f"{expr.name}({distinct}{args})"
        if isinstance(expr, ast.Exists):
            return f"EXISTS ({self.select(expr.query)})"
        raise EngineError(f"cannot compile expression {type(expr).__name__}")

    def _operand(self, expr: ast.Expr) -> str:
        text = self.expr(expr)
        if isinstance(expr, ast.Arith | ast.BoolOp | ast.Not):
            return f"({text})"
        return text

    def _bool_operand(self, expr: ast.Expr, context_op: str) -> str:
        text = self.expr(expr)
        if isinstance(expr, ast.BoolOp) and expr.op != context_op:
            return f"({text})"
        if context_op == "NOT" and isinstance(expr, ast.BoolOp | ast.Not):
            return f"({text})"
        return text


def _literal_value(expr: ast.Expr) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    raise EngineError("INSERT values must be literals (bind parameters first)")
