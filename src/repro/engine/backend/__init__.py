"""Pluggable storage backends behind :class:`~repro.engine.database.Database`.

See ``docs/backends.md`` for the interface contract, the registry, and
how to add a backend.
"""

from repro.engine.backend.base import EngineBackend
from repro.engine.backend.memory import MemoryBackend
from repro.engine.backend.registry import (
    BACKEND_ENV_VAR,
    available_backends,
    create_backend,
    default_backend_name,
    open_database,
    register_backend,
)
from repro.engine.backend.sqlite import SqliteBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "EngineBackend",
    "MemoryBackend",
    "SqliteBackend",
    "available_backends",
    "create_backend",
    "default_backend_name",
    "open_database",
    "register_backend",
]
