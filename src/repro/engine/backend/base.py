"""The abstract storage-engine interface every backend implements.

An :class:`EngineBackend` is the *storage* half of a database: it owns
rows and executes **fully bound** statements (parameters already
substituted — parsing and binding are backend-independent and stay in
:class:`~repro.engine.database.Database`, which fronts exactly one
backend). The enforcement stack — proxy, gateway, wire tier — never
talks to a backend directly; it sees the ``Connection`` protocol, and
the compliance checker needs only the schema and trace facts, so
enforcement semantics are identical across backends by construction
(E15 verifies this empirically: zero allow/block disagreements between
the in-memory and SQLite backends on replayed workloads).

The contract, pinned by ``tests/engine/test_backend_contract.py`` for
every registered backend:

* ``execute(stmt)`` — run one bound DQL/DML statement; SELECT returns a
  :class:`~repro.engine.executor.Result`, DML an affected-row count.
  Integrity violations (primary key, foreign key, NOT NULL, value
  typing) raise :class:`~repro.util.errors.IntegrityError`; anything
  else engine-shaped raises :class:`~repro.util.errors.EngineError`.
* ``create_table(table_schema)`` — materialize storage for a table that
  was just added to the shared :class:`~repro.engine.schema.Schema`.
* ``insert_rows(table, rows)`` — bulk load (schema column order)
  bypassing SQL parsing; same integrity guarantees as ``execute``.
* ``snapshot()`` / ``restore(snapshot)`` — capture all contents as an
  *opaque* token and roll back to it later (the active-learning
  extraction loop mutates and restores repeatedly). Tokens are
  backend-specific; never introspect them.
* ``row_count`` / ``total_rows`` / ``relation_contents`` — row
  introspection; ``relation_contents`` returns rows per relation as
  sets, the shape the evaluators consume.
* ``close()`` — idempotent; any use after close raises ``EngineError``
  mentioning "closed".

Row *order* of a SELECT without ORDER BY is backend-defined; callers
that need determinism must say ORDER BY (the in-memory backend happens
to yield insertion order, SQLite yields rowid order).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar

from repro.engine.schema import Schema, TableSchema
from repro.util.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import Result
    from repro.engine.table import Table
    from repro.sqlir import ast


class EngineBackend(abc.ABC):
    """One storage engine behind a :class:`~repro.engine.database.Database`.

    Subclasses set ``name`` (the registry key, also surfaced over the
    wire in WELCOME/STATS) and implement the storage primitives; the
    shared close bookkeeping lives here so every backend refuses work
    after ``close()`` the same way.
    """

    #: Registry key; subclasses override (e.g. ``"memory"``, ``"sqlite"``).
    name: ClassVar[str] = "abstract"

    def __init__(self, schema: Schema):
        self.schema = schema
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release storage resources. Idempotent."""
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise EngineError(f"{self.name} backend is closed")

    # -- identity ----------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Wire-safe identity of this backend (WELCOME/STATS surface)."""
        return {"name": self.name}

    def table(self, name: str) -> "Table":
        """Direct row-storage access; only backends with in-process
        :class:`~repro.engine.table.Table` objects (memory) support it."""
        raise EngineError(
            f"backend {self.name!r} does not expose Table objects; go through sql()"
        )

    # -- storage primitives (the contract) ----------------------------------------

    @abc.abstractmethod
    def execute(self, stmt: "ast.Statement") -> "Result | int":
        """Execute one fully bound statement (never CREATE TABLE)."""

    @abc.abstractmethod
    def create_table(self, table_schema: TableSchema) -> None:
        """Materialize storage for a newly added table."""

    @abc.abstractmethod
    def insert_rows(self, table: str, rows: Sequence[Sequence[object]]) -> int:
        """Bulk insert rows (schema column order) bypassing SQL parsing."""

    @abc.abstractmethod
    def snapshot(self) -> object:
        """Capture all table contents as an opaque token for :meth:`restore`."""

    @abc.abstractmethod
    def restore(self, snapshot: object) -> None:
        """Roll contents back to a token from :meth:`snapshot`."""

    @abc.abstractmethod
    def row_count(self, table: str) -> int:
        """Number of rows currently in ``table``."""

    @abc.abstractmethod
    def relation_contents(self) -> dict[str, set[tuple]]:
        """All rows per relation, as sets — the shape the evaluators use."""

    def total_rows(self) -> int:
        return sum(self.row_count(name) for name in self.schema.tables)
