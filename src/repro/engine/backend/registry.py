"""Backend registry + the ``open_database()`` factory.

The registry maps short names (``"memory"``, ``"sqlite"``) to backend
factories so backend selection can travel as plain data — a CLI flag, a
``GatewayConfig`` field, an environment variable — all the way down to
storage without any call site importing a concrete backend class.
Third-party backends join by calling :func:`register_backend` at import
time (the docling plugin-registry shape).
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.engine.backend.base import EngineBackend
from repro.engine.schema import Schema
from repro.util.errors import EngineError

#: Factory signature: ``(schema, **options) -> EngineBackend``. Options
#: a backend does not understand must be rejected, not ignored.
BackendFactory = Callable[..., EngineBackend]

_REGISTRY: dict[str, BackendFactory] = {}

#: Environment override honored by :func:`default_backend_name` (and so
#: by ``open_database`` when no explicit backend is given). CI uses this
#: to run the whole tier-1 suite against SQLite.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``; refuses silent shadowing."""
    if name in _REGISTRY and not replace:
        raise EngineError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, schema: Schema, **options: object) -> EngineBackend:
    """Instantiate the backend registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise EngineError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    return factory(schema, **options)


def default_backend_name() -> str:
    """The backend ``open_database`` uses when none is requested:
    ``$REPRO_BACKEND`` if set, else ``"memory"``."""
    return os.environ.get(BACKEND_ENV_VAR, "memory")


def open_database(
    schema: Schema | None = None,
    backend: str | None = None,
    *,
    path: str | None = None,
):
    """Open a :class:`~repro.engine.database.Database` on a named backend.

    This is the one construction path application code, workloads, the
    CLI, and benchmarks share. ``backend=None`` defers to
    :func:`default_backend_name`, which is how the ``REPRO_BACKEND=sqlite``
    CI leg reroutes every workload database without touching call sites.
    """
    from repro.engine.database import Database

    return Database(schema, backend or default_backend_name(), path=path)


def _make_memory(schema: Schema, path: str | None = None) -> EngineBackend:
    from repro.engine.backend.memory import MemoryBackend

    if path is not None:
        raise EngineError("the memory backend does not take a path")
    return MemoryBackend(schema)


def _make_sqlite(schema: Schema, path: str | None = None) -> EngineBackend:
    from repro.engine.backend.sqlite import SqliteBackend

    return SqliteBackend(schema, path=path)


register_backend("memory", _make_memory)
register_backend("sqlite", _make_sqlite)
