"""Table storage: rows, primary-key enforcement, secondary hash indexes."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.engine.schema import TableSchema
from repro.engine.types import check_value
from repro.util.errors import IntegrityError


class Table:
    """Row storage for one table.

    Rows are tuples in schema column order, stored in a dict keyed by a
    monotonically increasing row id (so deletes are O(1) and iteration
    order is deterministic). Every column has a secondary hash index —
    with in-memory scale this is cheap and makes the equality lookups the
    executor issues O(1).
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, tuple] = {}
        self._next_id = 0
        self._indexes: list[dict[object, set[int]]] = [
            {} for _ in schema.columns
        ]
        self._pk_index: dict[tuple, int] = {}
        self._pk_positions = tuple(
            schema.index_of(c) for c in schema.primary_key
        )

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple]:
        """All rows in insertion order."""
        for row_id in sorted(self._rows):
            yield self._rows[row_id]

    def row_items(self) -> Iterator[tuple[int, tuple]]:
        for row_id in sorted(self._rows):
            yield row_id, self._rows[row_id]

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[object]) -> int:
        """Insert one row (values in schema order); returns its row id."""
        schema = self.schema
        if len(values) != len(schema.columns):
            raise IntegrityError(
                f"table {schema.name!r} expects {len(schema.columns)} values,"
                f" got {len(values)}"
            )
        row = []
        for value, column in zip(values, schema.columns):
            checked = check_value(value, column.type, column.name)
            if checked is None and not column.nullable:
                raise IntegrityError(
                    f"column {column.name!r} of {schema.name!r} is NOT NULL"
                )
            row.append(checked)
        row_tuple = tuple(row)
        if self._pk_positions:
            key = tuple(row_tuple[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {schema.name!r}"
                )
        row_id = self._next_id
        self._next_id += 1
        self._rows[row_id] = row_tuple
        for position, value in enumerate(row_tuple):
            self._indexes[position].setdefault(value, set()).add(row_id)
        if self._pk_positions:
            self._pk_index[tuple(row_tuple[i] for i in self._pk_positions)] = row_id
        return row_id

    def delete_ids(self, row_ids: Iterable[int]) -> int:
        count = 0
        for row_id in list(row_ids):
            row = self._rows.pop(row_id, None)
            if row is None:
                continue
            count += 1
            for position, value in enumerate(row):
                bucket = self._indexes[position].get(value)
                if bucket is not None:
                    bucket.discard(row_id)
                    if not bucket:
                        del self._indexes[position][value]
            if self._pk_positions:
                self._pk_index.pop(tuple(row[i] for i in self._pk_positions), None)
        return count

    def update_id(self, row_id: int, new_values: Sequence[object]) -> None:
        if row_id not in self._rows:
            raise IntegrityError(f"no row {row_id} in table {self.schema.name!r}")
        self.delete_ids([row_id])
        # Re-insert under the same id to keep ordering stable.
        saved_next = self._next_id
        self._next_id = row_id
        try:
            self.insert(new_values)
        finally:
            self._next_id = max(saved_next, row_id + 1)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, column: str, value: object) -> Iterator[tuple[int, tuple]]:
        """Rows with ``column = value`` via the hash index."""
        position = self.schema.index_of(column)
        for row_id in sorted(self._indexes[position].get(value, ())):
            yield row_id, self._rows[row_id]

    def contains_value(self, column: str, value: object) -> bool:
        position = self.schema.index_of(column)
        return value in self._indexes[position]

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A cheap structural copy sufficient to restore later."""
        return {
            "rows": dict(self._rows),
            "next_id": self._next_id,
        }

    def restore(self, snapshot: dict) -> None:
        self._rows = dict(snapshot["rows"])
        self._next_id = snapshot["next_id"]
        self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        self._indexes = [{} for _ in self.schema.columns]
        self._pk_index = {}
        for row_id, row in self._rows.items():
            for position, value in enumerate(row):
                self._indexes[position].setdefault(value, set()).add(row_id)
            if self._pk_positions:
                self._pk_index[tuple(row[i] for i in self._pk_positions)] = row_id
