"""The backend-agnostic connection interface.

Everything that serves application queries — the raw
:class:`~repro.engine.database.Database`, the enforcement proxy, the RLS
baseline, and gateway sessions — exposes the same three methods, so
workload handlers and the serving layer never know (or care) which
backend they talk to:

* ``sql(sql, args, named)`` — parse, bind, and run one statement;
  returns a :class:`~repro.engine.executor.Result` for SELECTs and an
  affected-row count for writes.
* ``query(sql, args, named)`` — like ``sql`` but asserts a SELECT.
* ``close()`` — release per-connection state. The contract, shared by
  every implementation and pinned by
  ``tests/engine/test_connection_contract.py``: ``close()`` is
  **idempotent** (closing twice is a no-op, never an error) and a
  closed connection **refuses further statements** with an
  :class:`~repro.util.errors.EngineError` mentioning "closed". The
  in-memory backends hold no OS resources, but the network client does
  hold a socket, and uniform semantics keep every call site honest.

The protocol is ``runtime_checkable`` so tests can assert conformance
with ``isinstance``; structural typing means none of the implementations
need to inherit from it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.engine.executor import Result
from repro.sqlir import ast


@runtime_checkable
class Connection(Protocol):
    """What application code may assume about its database handle."""

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Parse, bind, and execute one statement."""
        ...  # pragma: no cover - protocol signature

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        """Like :meth:`sql` but asserts a SELECT and returns its Result."""
        ...  # pragma: no cover - protocol signature

    def close(self) -> None:
        """Release per-connection state; further use is undefined."""
        ...  # pragma: no cover - protocol signature
