"""The backend-agnostic connection interface.

Everything that serves application queries — the raw
:class:`~repro.engine.database.Database`, the enforcement proxy, the RLS
baseline, and gateway sessions — exposes the same three methods, so
workload handlers and the serving layer never know (or care) which
backend they talk to:

* ``sql(sql, args, named)`` — parse, bind, and run one statement;
  returns a :class:`~repro.engine.executor.Result` for SELECTs and an
  affected-row count for writes.
* ``query(sql, args, named)`` — like ``sql`` but asserts a SELECT.
* ``close()`` — release per-connection state. The contract, shared by
  every implementation and pinned by
  ``tests/engine/test_connection_contract.py``: ``close()`` is
  **idempotent** (closing twice is a no-op, never an error) and a
  closed connection **refuses further statements** with an
  :class:`~repro.util.errors.EngineError` mentioning "closed". The
  in-memory backends hold no OS resources, but the network client does
  hold a socket, and uniform semantics keep every call site honest.

The protocol is ``runtime_checkable`` so tests can assert conformance
with ``isinstance``; structural typing means none of the implementations
need to inherit from it.

Prepared statements are an *optional extension* of the contract,
expressed as the separate :class:`PreparedConnection` protocol —
``prepare(sql)`` hoists a statement's per-shape work into a reusable
handle and ``execute_prepared(handle, args, named)`` runs it without
re-parsing (see ``docs/prepared.md``). It is deliberately not folded
into :class:`Connection`: ``runtime_checkable`` protocols check by
attribute presence, and existing third-party connection shims must keep
passing ``isinstance(conn, Connection)`` without growing new methods.
The local implementations (``Database``, ``EnforcementProxy``/gateway
sessions, and the wire client) all satisfy both protocols; the handle
type differs per implementation (a
:class:`~repro.sqlir.prepared.PreparedPlan` in-process, a wire handle
over the network), which is why the extension protocol types it as an
opaque object.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.engine.executor import Result
from repro.sqlir import ast


@runtime_checkable
class Connection(Protocol):
    """What application code may assume about its database handle."""

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Parse, bind, and execute one statement."""
        ...  # pragma: no cover - protocol signature

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        """Like :meth:`sql` but asserts a SELECT and returns its Result."""
        ...  # pragma: no cover - protocol signature

    def close(self) -> None:
        """Release per-connection state; further use is undefined."""
        ...  # pragma: no cover - protocol signature


@runtime_checkable
class PreparedConnection(Connection, Protocol):
    """Optional prepared-statement extension of :class:`Connection`.

    ``prepare`` returns an implementation-specific handle (opaque to the
    caller); ``execute_prepared`` accepts that handle plus per-request
    bindings. Implementations guarantee the prepared path is
    decision-equivalent to ``sql()`` — same allow/block outcome, same
    rows — it only skips re-doing per-shape work.
    """

    def prepare(self, sql: str | ast.Statement) -> object:
        """Hoist per-shape work for one statement into a reusable handle."""
        ...  # pragma: no cover - protocol signature

    def execute_prepared(
        self,
        plan: object,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Bind and run a prepared handle without re-parsing."""
        ...  # pragma: no cover - protocol signature
