"""Column types and value checking for the engine."""

from __future__ import annotations

import enum

from repro.util.errors import IntegrityError


class ColumnType(enum.Enum):
    """The engine's four storable types (NULL is absence of a value)."""

    INT = "INT"
    TEXT = "TEXT"
    REAL = "REAL"
    BOOL = "BOOL"

    @staticmethod
    def from_sql(type_name: str) -> "ColumnType":
        normalized = type_name.upper()
        if normalized in ("INT", "INTEGER"):
            return ColumnType.INT
        if normalized in ("TEXT", "VARCHAR"):
            return ColumnType.TEXT
        if normalized in ("REAL", "FLOAT"):
            return ColumnType.REAL
        if normalized == "BOOLEAN":
            return ColumnType.BOOL
        raise IntegrityError(f"unknown column type {type_name!r}")


def check_value(value: object, column_type: ColumnType, column: str) -> object:
    """Validate and coerce ``value`` for storage in a column of this type.

    INT accepts bools as ints would be surprising, so bools are rejected
    for INT/REAL; INT values are accepted for REAL columns and widened.
    """
    if value is None:
        return None
    if column_type is ColumnType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise IntegrityError(f"column {column!r} expects INT, got {value!r}")
        return value
    if column_type is ColumnType.REAL:
        if isinstance(value, bool) or not isinstance(value, int | float):
            raise IntegrityError(f"column {column!r} expects REAL, got {value!r}")
        return float(value)
    if column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise IntegrityError(f"column {column!r} expects TEXT, got {value!r}")
        return value
    if column_type is ColumnType.BOOL:
        if not isinstance(value, bool):
            raise IntegrityError(f"column {column!r} expects BOOL, got {value!r}")
        return value
    raise AssertionError(column_type)
