"""Schema objects: columns, tables, foreign keys.

:class:`Schema` also implements the :class:`repro.relalg.translate.SchemaInfo`
protocol (``columns_of``), so the same object drives both execution and
CQ translation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.engine.types import ColumnType
from repro.sqlir import ast
from repro.util.errors import IntegrityError


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    type: ColumnType
    nullable: bool = True


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key ``column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class TableSchema:
    """A table: ordered columns, optional primary key, foreign keys."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise IntegrityError(f"duplicate column in table {self.name!r}")
        for key_col in self.primary_key:
            if key_col not in names:
                raise IntegrityError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise IntegrityError(
                    f"foreign key column {fk.column!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def index_of(self, column: str) -> int:
        try:
            return self.column_names.index(column)
        except ValueError:
            raise IntegrityError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]


@dataclass
class Schema:
    """A database schema: a named collection of tables."""

    tables: dict[str, TableSchema] = field(default_factory=dict)

    @staticmethod
    def of(*tables: TableSchema) -> "Schema":
        schema = Schema()
        for table in tables:
            schema.add(table)
        return schema

    def add(self, table: TableSchema) -> None:
        if table.name in self.tables:
            raise IntegrityError(f"table {table.name!r} already exists")
        for fk in table.foreign_keys:
            if fk.ref_table not in self.tables and fk.ref_table != table.name:
                raise IntegrityError(
                    f"foreign key of {table.name!r} references unknown table"
                    f" {fk.ref_table!r}"
                )
        self.tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        if name not in self.tables:
            raise IntegrityError(f"unknown table {name!r}")
        return self.tables[name]

    # SchemaInfo protocol (used by the CQ translator).
    def columns_of(self, table: str) -> Sequence[str]:
        if table not in self.tables:
            raise KeyError(table)
        return self.tables[table].column_names

    def table_names(self) -> Iterable[str]:
        return self.tables.keys()

    @staticmethod
    def from_create_statements(statements: Iterable[ast.CreateTable]) -> "Schema":
        """Build a schema from parsed CREATE TABLE statements."""
        schema = Schema()
        for stmt in statements:
            columns = tuple(
                Column(
                    name=c.name,
                    type=ColumnType.from_sql(c.type_name),
                    nullable=c.nullable and not c.primary_key,
                )
                for c in stmt.columns
            )
            primary = tuple(c.name for c in stmt.columns if c.primary_key)
            fks = tuple(
                ForeignKey(column=c.name, ref_table=c.references[0], ref_column=c.references[1])
                for c in stmt.columns
                if c.references is not None
            )
            schema.add(
                TableSchema(
                    name=stmt.name,
                    columns=columns,
                    primary_key=primary,
                    foreign_keys=fks,
                )
            )
        return schema
