"""Expression evaluation over row environments.

SQL's three-valued logic is implemented with ``None`` standing for
UNKNOWN: comparisons against NULL yield UNKNOWN, AND/OR/NOT follow the
Kleene tables, and a WHERE clause keeps a row only when the predicate is
definitely TRUE.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.sqlir import ast
from repro.util.errors import EngineError

# An environment maps (alias, column) -> value; aliases come from the FROM
# clause. Unqualified columns are resolved by the executor before
# evaluation, so the evaluator only ever sees qualified references.
Env = Mapping[tuple[str, str], object]

#: Environment key under which the executor stashes the database, so
#: correlated EXISTS subqueries can be executed from within expression
#: evaluation. The key shape cannot collide with (alias, column) pairs.
DB_CONTEXT = ("\x00db", "\x00db")


def evaluate(expr: ast.Expr, env: Env) -> object:
    """Evaluate ``expr`` to a value, or None for NULL/UNKNOWN."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Column):
        if expr.table is None:
            raise EngineError(f"unresolved column {expr.name!r} reached evaluator")
        key = (expr.table, expr.name)
        if key not in env:
            raise EngineError(f"unknown column {expr.table}.{expr.name}")
        return env[key]
    if isinstance(expr, ast.Param):
        raise EngineError(f"unbound parameter {expr.label()!r} reached evaluator")
    if isinstance(expr, ast.Comparison):
        return _compare(expr.op, evaluate(expr.left, env), evaluate(expr.right, env))
    if isinstance(expr, ast.BoolOp):
        return _bool_op(expr, env)
    if isinstance(expr, ast.Not):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        return not _truthy(value)
    if isinstance(expr, ast.InList):
        return _in_list(expr, env)
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.expr, env)
        result = value is None
        return (not result) if expr.negated else result
    if isinstance(expr, ast.Arith):
        return _arith(expr.op, evaluate(expr.left, env), evaluate(expr.right, env))
    if isinstance(expr, ast.Exists):
        return _exists(expr, env)
    raise EngineError(f"cannot evaluate {type(expr).__name__}")


def _exists(expr: ast.Exists, env: Env) -> bool:
    """Evaluate a correlated EXISTS subquery.

    Outer references — columns whose alias is not declared by the
    subquery itself — are substituted with the current row's values, then
    the decorrelated subquery executes through the normal path.
    """
    db = env.get(DB_CONTEXT)
    if db is None:
        raise EngineError("EXISTS requires executor context")
    inner_aliases = {ref.alias for ref in expr.query.tables()}

    def substitute(node: ast.Expr) -> ast.Expr:
        if not isinstance(node, ast.Column):
            return node
        if node.table is not None:
            if node.table in inner_aliases:
                return node
            key = (node.table, node.name)
            if key in env:
                return ast.Literal(env[key])  # type: ignore[arg-type]
            raise EngineError(
                f"EXISTS references unknown alias {node.table!r}"
            )
        # Unqualified: prefer the subquery's own tables; fall back to a
        # unique outer binding.
        for alias in inner_aliases:
            try:
                table = db.schema.table(
                    next(
                        ref.name
                        for ref in expr.query.tables()
                        if ref.alias == alias
                    )
                )
            except StopIteration:  # pragma: no cover - aliases built above
                continue
            if node.name in table.column_names:
                return node
        outer = [key for key in env if key != DB_CONTEXT and key[1] == node.name]
        if len(outer) == 1:
            return ast.Literal(env[outer[0]])  # type: ignore[arg-type]
        raise EngineError(f"cannot resolve column {node.name!r} in EXISTS")

    decorrelated = ast.map_statement(expr.query, substitute)
    assert isinstance(decorrelated, ast.Select)
    from repro.engine.executor import execute_select

    return not execute_select(db, decorrelated).is_empty()


def predicate_holds(expr: ast.Expr | None, env: Env) -> bool:
    """WHERE semantics: keep the row only if the predicate is TRUE."""
    if expr is None:
        return True
    value = evaluate(expr, env)
    return value is True or (value is not None and _truthy(value))


def _truthy(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int | float):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return value is not None


def _compare(op: str, left: object, right: object) -> bool | None:
    if left is None or right is None:
        return None  # UNKNOWN
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if not _comparable(left, right):
        raise EngineError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise EngineError(f"unknown comparison operator {op!r}")


def _comparable(left: object, right: object) -> bool:
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return type(left) is type(right)


def _bool_op(expr: ast.BoolOp, env: Env) -> bool | None:
    values = [evaluate(op, env) for op in expr.operands]
    bools = [
        v if isinstance(v, bool) or v is None else _truthy(v) for v in values
    ]
    if expr.op == "AND":
        if any(v is False for v in bools):
            return False
        if any(v is None for v in bools):
            return None
        return True
    if expr.op == "OR":
        if any(v is True for v in bools):
            return True
        if any(v is None for v in bools):
            return None
        return False
    raise EngineError(f"unknown boolean operator {expr.op!r}")


def _in_list(expr: ast.InList, env: Env) -> bool | None:
    value = evaluate(expr.expr, env)
    if value is None:
        return None
    saw_null = False
    hit = False
    for item in expr.items:
        item_value = evaluate(item, env)
        if item_value is None:
            saw_null = True
        elif item_value == value:
            hit = True
            break
    if hit:
        result: bool | None = True
    elif saw_null:
        result = None
    else:
        result = False
    if expr.negated:
        return None if result is None else not result
    return result


def _arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if not isinstance(left, int | float) or not isinstance(right, int | float):
        raise EngineError("arithmetic over non-numeric values")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise EngineError("division by zero")
        return left / right
    raise EngineError(f"unknown arithmetic operator {op!r}")
