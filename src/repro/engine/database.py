"""The Database object: schema + tables + the user-facing ``sql()`` API."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.engine.executor import Result, execute
from repro.engine.schema import Schema, TableSchema
from repro.engine.table import Table
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_sql
from repro.util.errors import EngineError


class Database:
    """An in-memory database instance.

    ``sql()`` is the application-facing entry point: it parses (with a
    small statement cache), binds parameters, and executes. The
    enforcement proxy exposes the same signature, so application code is
    written once and runs with or without access control.
    """

    def __init__(self, schema: Schema | None = None):
        self.schema = schema or Schema()
        self._tables: dict[str, Table] = {
            name: Table(table_schema)
            for name, table_schema in self.schema.tables.items()
        }
        self._statement_cache: dict[str, ast.Statement] = {}
        self._closed = False

    # -- schema management -----------------------------------------------------

    def create_table(self, table_schema: TableSchema) -> None:
        self.schema.add(table_schema)
        self._tables[table_schema.name] = Table(table_schema)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise EngineError(f"unknown table {name!r}")
        return self._tables[name]

    # -- data access -------------------------------------------------------------

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Parse, bind, and execute one statement."""
        if self._closed:
            raise EngineError("connection is closed")
        stmt = self.parse(sql)
        if isinstance(stmt, ast.CreateTable):
            self.create_table(Schema.from_create_statements([stmt]).table(stmt.name))
            return 0
        bound = bind_parameters(stmt, args, named)
        return execute(self, bound)

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        """Like :meth:`sql` but asserts a SELECT and returns its Result."""
        result = self.sql(sql, args, named)
        if not isinstance(result, Result):
            raise EngineError("query() requires a SELECT statement")
        return result

    def parse(self, sql: str | ast.Statement) -> ast.Statement:
        """Parse one statement, memoized per SQL text.

        Public because every front end layered over the database — the
        enforcement proxy, the RLS baseline, the serving gateway — needs
        the parsed statement *before* deciding what to do with it, and
        all of them should share one statement cache.
        """
        if isinstance(sql, ast.Statement):
            return sql
        cached = self._statement_cache.get(sql)
        if cached is None:
            cached = parse_sql(sql)
            self._statement_cache[sql] = cached
        return cached

    # Backwards-compatible alias; prefer :meth:`parse`.
    _parse = parse

    def close(self) -> None:
        """Connection-protocol close: refuse further statements. Idempotent.

        The in-memory engine holds no OS handles, but the ``Connection``
        contract (one all implementations share, tested in
        ``tests/engine/test_connection_contract.py``) is that a closed
        connection refuses further statements rather than limping on.
        """
        self._closed = True

    def insert_rows(self, table: str, rows: Sequence[Sequence[object]]) -> int:
        """Bulk insert rows (schema column order) bypassing SQL parsing."""
        target = self.table(table)
        from repro.engine.executor import _check_foreign_keys

        for row in rows:
            _check_foreign_keys(self, target.schema, list(row))
            target.insert(list(row))
        return len(rows)

    # -- snapshots (used by active-learning extraction) ---------------------------

    def snapshot(self) -> dict[str, dict]:
        """Capture all table contents; restore with :meth:`restore`."""
        return {name: table.snapshot() for name, table in self._tables.items()}

    def restore(self, snapshot: dict[str, dict]) -> None:
        for name, table_snapshot in snapshot.items():
            self._tables[name].restore(table_snapshot)

    # -- introspection --------------------------------------------------------------

    def row_count(self, table: str) -> int:
        return len(self.table(table))

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def relation_contents(self) -> dict[str, set[tuple]]:
        """All rows per relation, as sets — the shape the evaluators use."""
        return {name: set(table.rows()) for name, table in self._tables.items()}
