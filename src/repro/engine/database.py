"""The Database object: parse/bind front end over a pluggable backend.

``Database`` owns everything backend-*independent* — SQL parsing (with a
shared statement cache), parameter binding, CREATE TABLE schema
evolution — and delegates storage and execution to an
:class:`~repro.engine.backend.EngineBackend`. The enforcement stack
layers over ``sql()`` regardless of which backend is underneath; see
``docs/backends.md``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.engine.backend.base import EngineBackend
from repro.engine.executor import Result
from repro.engine.schema import Schema, TableSchema
from repro.engine.table import Table
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_sql
from repro.sqlir.prepared import PreparedPlan, prepare_plan
from repro.sqlir.printer import to_sql
from repro.util.errors import EngineError


class Database:
    """A database instance: one schema, one storage backend.

    ``sql()`` is the application-facing entry point: it parses (with a
    small statement cache), binds parameters, and executes on the
    backend. The enforcement proxy exposes the same signature, so
    application code is written once and runs with or without access
    control.

    ``backend`` may be an :class:`~repro.engine.backend.EngineBackend`
    instance (adopted as-is; its schema wins if ``schema`` is None), a
    registry name like ``"sqlite"`` (constructed via
    :func:`~repro.engine.backend.create_backend`, with ``path`` passed
    through), or None for the in-memory default. Prefer
    :func:`~repro.engine.backend.open_database` at call sites — it also
    honors the ``REPRO_BACKEND`` environment override; the bare
    constructor deliberately does not, so engine tests pin the backend
    they mean.
    """

    def __init__(
        self,
        schema: Schema | None = None,
        backend: EngineBackend | str | None = None,
        *,
        path: str | None = None,
    ):
        if isinstance(backend, EngineBackend):
            if schema is not None and backend.schema is not schema:
                raise EngineError(
                    "backend was built for a different schema; pass schema=None"
                )
            self.schema = backend.schema
            self._backend = backend
        else:
            self.schema = schema or Schema()
            if backend is None:
                from repro.engine.backend.memory import MemoryBackend

                if path is not None:
                    raise EngineError(
                        "path= requires a path-capable backend (e.g. 'sqlite')"
                    )
                self._backend = MemoryBackend(self.schema)
            else:
                from repro.engine.backend.registry import create_backend

                self._backend = create_backend(backend, self.schema, path=path)
        self._statement_cache: dict[str, ast.Statement] = {}
        self._closed = False

    # -- backend identity --------------------------------------------------------

    @property
    def backend(self) -> EngineBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # -- schema management -----------------------------------------------------

    def create_table(self, table_schema: TableSchema) -> None:
        self.schema.add(table_schema)
        self._backend.create_table(table_schema)

    def table(self, name: str) -> Table:
        """Direct row-storage access (memory backend only)."""
        return self._backend.table(name)

    # -- data access -------------------------------------------------------------

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Parse, bind, and execute one statement."""
        if self._closed:
            raise EngineError("connection is closed")
        stmt = self.parse(sql)
        if isinstance(stmt, ast.CreateTable):
            self.create_table(Schema.from_create_statements([stmt]).table(stmt.name))
            return 0
        bound = bind_parameters(stmt, args, named)
        return self._backend.execute(bound)

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        """Like :meth:`sql` but asserts a SELECT and returns its Result."""
        result = self.sql(sql, args, named)
        if not isinstance(result, Result):
            raise EngineError("query() requires a SELECT statement")
        return result

    # -- prepared statements -----------------------------------------------------

    def prepare(self, sql: str | ast.Statement) -> PreparedPlan:
        """Parse once and hoist the statement's shape analysis.

        The raw database has no checker, so the plan's skeleton is
        unused here — but :meth:`prepare`/:meth:`execute_prepared` keep
        the same surface as the enforcement proxy and the wire client,
        letting application code prepare against any Connection-shaped
        handle (see ``docs/prepared.md``).
        """
        stmt = self.parse(sql)
        return prepare_plan(stmt, sql if isinstance(sql, str) else to_sql(stmt))

    def execute_prepared(
        self,
        plan: PreparedPlan,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Bind and execute a prepared plan, skipping the parse."""
        if self._closed:
            raise EngineError("connection is closed")
        stmt = plan.statement
        if isinstance(stmt, ast.CreateTable):
            self.create_table(Schema.from_create_statements([stmt]).table(stmt.name))
            return 0
        return self._backend.execute(plan.bind(args, named))

    def parse(self, sql: str | ast.Statement) -> ast.Statement:
        """Parse one statement, memoized per SQL text.

        Public because every front end layered over the database — the
        enforcement proxy, the RLS baseline, the serving gateway — needs
        the parsed statement *before* deciding what to do with it, and
        all of them should share one statement cache.
        """
        if isinstance(sql, ast.Statement):
            return sql
        cached = self._statement_cache.get(sql)
        if cached is None:
            cached = parse_sql(sql)
            self._statement_cache[sql] = cached
        return cached

    # Backwards-compatible alias; prefer :meth:`parse`.
    _parse = parse

    def close(self) -> None:
        """Connection-protocol close: refuse further statements and release
        backend resources. Idempotent.

        The ``Connection`` contract (one all implementations share,
        tested in ``tests/engine/test_connection_contract.py``) is that
        a closed connection refuses further statements rather than
        limping on.
        """
        self._closed = True
        self._backend.close()

    def insert_rows(self, table: str, rows: Sequence[Sequence[object]]) -> int:
        """Bulk insert rows (schema column order) bypassing SQL parsing."""
        return self._backend.insert_rows(table, rows)

    # -- snapshots (used by active-learning extraction) ---------------------------

    def snapshot(self) -> object:
        """Capture all table contents as an opaque token for :meth:`restore`."""
        return self._backend.snapshot()

    def restore(self, snapshot: object) -> None:
        self._backend.restore(snapshot)

    # -- introspection --------------------------------------------------------------

    def row_count(self, table: str) -> int:
        return self._backend.row_count(table)

    def total_rows(self) -> int:
        return self._backend.total_rows()

    def relation_contents(self) -> dict[str, set[tuple]]:
        """All rows per relation, as sets — the shape the evaluators use."""
        return self._backend.relation_contents()
