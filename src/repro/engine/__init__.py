"""In-memory relational engine.

A small but real database: typed schemas with primary/foreign keys,
secondary hash indexes, a SQL executor for the full dialect (including
features outside the reasoning fragment, like COUNT and LEFT JOIN), and
snapshot/restore support used by the active-learning extraction loop.

The engine plays the role of the production DBMS in the Blockaid setting:
the enforcement proxy (``repro.enforce``) wraps a :class:`Database` and
intercepts queries before execution.
"""

from repro.engine.types import ColumnType
from repro.engine.schema import Column, ForeignKey, Schema, TableSchema
from repro.engine.connection import Connection
from repro.engine.database import Database
from repro.engine.executor import Result

__all__ = [
    "Column",
    "ColumnType",
    "Connection",
    "Database",
    "ForeignKey",
    "Result",
    "Schema",
    "TableSchema",
]
