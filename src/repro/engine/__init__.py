"""Relational engine: parse/bind front end over pluggable storage backends.

A small but real database stack: typed schemas with primary/foreign
keys, a SQL dialect parser, and a :class:`Database` facade that parses
and binds statements, then executes them on an
:class:`~repro.engine.backend.EngineBackend` — the in-memory engine
(hash-indexed Python dicts, the default) or stdlib SQLite (durable,
scales to millions of rows). Backends are chosen by name through
:func:`~repro.engine.backend.open_database`; see ``docs/backends.md``.

The engine plays the role of the production DBMS in the Blockaid setting:
the enforcement proxy (``repro.enforce``) wraps a :class:`Database` and
intercepts queries before execution — enforcement never depends on which
backend is underneath.
"""

from repro.engine.types import ColumnType
from repro.engine.schema import Column, ForeignKey, Schema, TableSchema
from repro.engine.backend import (
    EngineBackend,
    MemoryBackend,
    SqliteBackend,
    available_backends,
    open_database,
    register_backend,
)
from repro.engine.connection import Connection
from repro.engine.database import Database
from repro.engine.executor import Result

__all__ = [
    "Column",
    "ColumnType",
    "Connection",
    "Database",
    "EngineBackend",
    "ForeignKey",
    "MemoryBackend",
    "Result",
    "Schema",
    "SqliteBackend",
    "TableSchema",
    "available_backends",
    "open_database",
    "register_backend",
]
