"""SQL execution against a :class:`~repro.engine.database.Database`.

The executor runs the full dialect — including LEFT JOIN and COUNT, which
the reasoning layer rejects — so workload applications are not limited by
the CQ fragment. Join processing is index-driven: when a join/where
conjunct equates a column of the table being added with an already-bound
value, the secondary hash index supplies matching rows; otherwise the
executor falls back to a filtered scan.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.engine.evaluator import DB_CONTEXT, evaluate, predicate_holds
from repro.engine.schema import Schema
from repro.sqlir import ast
from repro.util.errors import EngineError, IntegrityError


@dataclass
class Result:
    """A query result: column names plus rows (tuples, in order)."""

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute(db, stmt: ast.Statement) -> Result | int:
    """Execute a bound statement; SELECT returns a Result, DML a row count."""
    if isinstance(stmt, ast.Select):
        return execute_select(db, stmt)
    if isinstance(stmt, ast.Insert):
        return _execute_insert(db, stmt)
    if isinstance(stmt, ast.Update):
        return _execute_update(db, stmt)
    if isinstance(stmt, ast.Delete):
        return _execute_delete(db, stmt)
    raise EngineError(f"cannot execute {type(stmt).__name__}")


# --------------------------------------------------------------------------
# SELECT
# --------------------------------------------------------------------------


def execute_select(db, stmt: ast.Select) -> Result:
    schema: Schema = db.schema
    aliases: dict[str, str] = {}
    for ref in stmt.tables():
        if ref.alias in aliases:
            raise EngineError(f"duplicate table alias {ref.alias!r}")
        aliases[ref.alias] = ref.name

    resolver = _ColumnResolver(schema, aliases)
    stmt = resolver.resolve_statement(stmt)

    # Collect conjuncts: WHERE split on top-level AND; join ON conditions
    # stay attached to their join step (required for LEFT JOIN semantics).
    where_conjuncts = _split_and(stmt.where)

    envs: list[dict[tuple[str, str], object]] = [{DB_CONTEXT: db}]
    bound: set[str] = set()
    # Seed with the comma-separated sources (inner semantics).
    pending = list(where_conjuncts)
    for ref in stmt.sources:
        envs = _join_inner(db, envs, ref, [], pending, bound)
        bound.add(ref.alias)
    for join in stmt.joins:
        on_conjuncts = _split_and(join.on)
        if join.kind == "INNER":
            envs = _join_inner(db, envs, join.table, on_conjuncts, pending, bound)
        else:
            envs = _join_left(db, envs, join.table, on_conjuncts, schema)
        bound.add(join.table.alias)
    # Residual WHERE conjuncts (those not consumed as join conditions).
    for conjunct in pending:
        envs = [env for env in envs if predicate_holds(conjunct, env)]

    return _project(db, stmt, envs, aliases)


def _split_and(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BoolOp) and expr.op == "AND":
        return list(expr.operands)
    return [expr]


class _ColumnResolver:
    """Qualifies unqualified column references with their table alias."""

    def __init__(self, schema: Schema, aliases: dict[str, str]):
        self.schema = schema
        self.aliases = aliases

    def resolve_statement(self, stmt: ast.Select) -> ast.Select:
        resolved = ast.map_statement(stmt, self._resolve_expr)
        assert isinstance(resolved, ast.Select)
        return resolved

    def _resolve_expr(self, expr: ast.Expr) -> ast.Expr:
        if not isinstance(expr, ast.Column):
            return expr
        if expr.table is not None:
            if expr.table not in self.aliases:
                raise EngineError(f"unknown table alias {expr.table!r}")
            table = self.schema.table(self.aliases[expr.table])
            table.index_of(expr.name)  # raises if missing
            return expr
        owners = [
            alias
            for alias, table_name in self.aliases.items()
            if expr.name in self.schema.table(table_name).column_names
        ]
        if not owners:
            raise EngineError(f"unknown column {expr.name!r}")
        if len(owners) > 1:
            raise EngineError(f"ambiguous column {expr.name!r}")
        return ast.Column(table=owners[0], name=expr.name)


def _env_ready(expr: ast.Expr, bound_aliases: set[str]) -> bool:
    """Can ``expr`` be evaluated once the given aliases are bound?"""
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.Column) and node.table not in bound_aliases:
            return False
    return True


def _equality_probe(
    conjunct: ast.Expr, alias: str, bound: set[str]
) -> tuple[str, ast.Expr] | None:
    """If ``conjunct`` equates a column of ``alias`` with an expression over
    already-bound aliases (or constants), return (column, value-expr)."""
    if not isinstance(conjunct, ast.Comparison) or conjunct.op != "=":
        return None
    for column_side, other in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if (
            isinstance(column_side, ast.Column)
            and column_side.table == alias
            and _env_ready(other, bound)
        ):
            return column_side.name, other
    return None


def _join_inner(db, envs, ref: ast.TableRef, on_conjuncts, pending, bound: set[str]) -> list[dict]:
    """Add ``ref`` to every env, consuming usable conjuncts from pending."""
    table = db.table(ref.name)
    bound_after = bound | {ref.alias}

    # Conditions usable during this join step: the join's own ON conjuncts
    # plus any pending WHERE conjunct evaluable once ref is bound.
    local = list(on_conjuncts)
    remaining_pending = []
    for conjunct in pending:
        if _env_ready(conjunct, bound_after) and not _env_ready(conjunct, bound):
            local.append(conjunct)
        else:
            remaining_pending.append(conjunct)
    pending[:] = remaining_pending

    probe = None
    for conjunct in local:
        probe = _equality_probe(conjunct, ref.alias, bound)
        if probe is not None:
            break

    columns = table.schema.column_names
    out = []
    for env in envs:
        if probe is not None:
            column, value_expr = probe
            value = evaluate(value_expr, env)
            candidates = (
                row for _, row in table.lookup(column, value)
            ) if value is not None else iter(())
        else:
            candidates = table.rows()
        for row in candidates:
            new_env = dict(env)
            for column_name, value in zip(columns, row):
                new_env[(ref.alias, column_name)] = value
            if all(predicate_holds(c, new_env) for c in local):
                out.append(new_env)
    return out


def _join_left(db, envs, ref: ast.TableRef, on_conjuncts, schema: Schema) -> list[dict]:
    table = db.table(ref.name)
    columns = table.schema.column_names
    out = []
    for env in envs:
        matched = False
        for row in table.rows():
            new_env = dict(env)
            for column_name, value in zip(columns, row):
                new_env[(ref.alias, column_name)] = value
            if all(predicate_holds(c, new_env) for c in on_conjuncts):
                matched = True
                out.append(new_env)
        if not matched:
            new_env = dict(env)
            for column_name in columns:
                new_env[(ref.alias, column_name)] = None
            out.append(new_env)
    return out


def _project(db, stmt: ast.Select, envs, aliases: dict[str, str]) -> Result:
    schema: Schema = db.schema
    # Expand the select list into (name, expr-or-star-column) pairs.
    output: list[tuple[str, ast.Expr]] = []
    has_aggregate = False
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            star_aliases = (
                [item.expr.table] if item.expr.table is not None else list(aliases)
            )
            for alias in star_aliases:
                if alias not in aliases:
                    raise EngineError(f"unknown table alias {alias!r}")
                for column_name in schema.table(aliases[alias]).column_names:
                    output.append(
                        (column_name, ast.Column(table=alias, name=column_name))
                    )
            continue
        if isinstance(item.expr, ast.FuncCall):
            has_aggregate = True
        name = item.alias or (
            item.expr.name if isinstance(item.expr, ast.Column) else f"col{len(output)}"
        )
        output.append((name, item.expr))

    columns = [name for name, _ in output]

    if has_aggregate or stmt.group_by:
        return _aggregate(stmt, output, columns, envs)

    rows = [
        tuple(evaluate(expr, env) for _, expr in output) for env in envs
    ]
    if stmt.distinct:
        seen = set()
        deduped = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        rows = deduped
    if stmt.order_by:
        key_exprs = [(o.expr, o.descending) for o in stmt.order_by]
        # Multi-key sort with per-key direction: stable sorts applied
        # right-to-left give the combined ordering.
        if stmt.distinct:
            # After DISTINCT the row/env pairing is lost; only projected
            # columns may be ordered on.
            for expr, descending in reversed(key_exprs):
                if not isinstance(expr, ast.Column) or expr.name not in columns:
                    raise EngineError("ORDER BY after DISTINCT must use output columns")
                index = columns.index(expr.name)
                rows.sort(key=lambda r, i=index: _order_key(r[i]), reverse=descending)
        else:
            paired = list(zip(rows, envs))
            for expr, descending in reversed(key_exprs):
                paired.sort(
                    key=lambda pair, e=expr: _order_key(evaluate(e, pair[1])),
                    reverse=descending,
                )
            rows = [row for row, _ in paired]
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return Result(columns=columns, rows=rows)


_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


def _aggregate(stmt: ast.Select, output, columns, envs) -> Result:
    """GROUP BY / aggregate evaluation over the joined row set.

    Groups follow first-appearance order. Non-aggregate output
    expressions must appear in the GROUP BY list (the strict SQL rule —
    no silent "any value from the group").
    """
    group_exprs = list(stmt.group_by)
    for name, expr in output:
        if isinstance(expr, ast.FuncCall):
            if expr.name.upper() not in _AGGREGATES:
                raise EngineError(f"unsupported aggregate {expr.name!r}")
            continue
        if expr not in group_exprs:
            raise EngineError(
                f"output column {name!r} must appear in GROUP BY"
            )

    groups: dict[tuple, list] = {}
    for env in envs:
        key = tuple(evaluate(k, env) for k in group_exprs)
        groups.setdefault(key, []).append(env)
    if not group_exprs and not groups:
        groups[()] = []  # aggregates over an empty set still yield one row

    rows = []
    for key, members in groups.items():
        if stmt.having is not None and not _having_holds(
            stmt.having, members, group_exprs, key
        ):
            continue
        row = []
        for _, expr in output:
            if isinstance(expr, ast.FuncCall):
                row.append(_apply_aggregate(expr, members))
            else:
                row.append(key[group_exprs.index(expr)])
        rows.append(tuple(row))

    if stmt.order_by:
        for order in reversed(stmt.order_by):
            expr = order.expr
            if not isinstance(expr, ast.Column) or expr.name not in columns:
                raise EngineError("ORDER BY with GROUP BY must use output columns")
            index = columns.index(expr.name)
            rows.sort(key=lambda r, i=index: _order_key(r[i]), reverse=order.descending)
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return Result(columns=columns, rows=rows)


def _having_holds(having: ast.Expr, members, group_exprs, key) -> bool:
    """Evaluate HAVING for one group.

    Aggregate calls and group-key expressions are folded into literals,
    then the ordinary (3VL) predicate evaluation runs on the residue.
    """

    def fold(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.FuncCall):
            return ast.Literal(_apply_aggregate(node, members))  # type: ignore[arg-type]
        if node in group_exprs:
            return ast.Literal(key[group_exprs.index(node)])  # type: ignore[arg-type]
        return node

    folded = ast.map_expr(having, fold)
    return predicate_holds(folded, {})


def _apply_aggregate(func: ast.FuncCall, members) -> object:
    name = func.name.upper()
    if name == "COUNT" and isinstance(func.args[0], ast.Star):
        return len(members)
    values = [evaluate(func.args[0], env) for env in members]
    values = [v for v in values if v is not None]
    if func.distinct:
        values = list(dict.fromkeys(values))
    if name == "COUNT":
        return len(values)
    if not values:
        return None  # SQL: SUM/MIN/MAX/AVG over no non-null values is NULL
    if name == "SUM":
        return sum(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    if name == "AVG":
        return sum(values) / len(values)
    raise AssertionError(name)


def _order_key(value: object) -> tuple:
    """Total order over heterogeneous values: NULL first, then by type."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, int | float):
        return (2, "", value)
    return (3, str(value), 0)


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------


def _literal_value(expr: ast.Expr) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    raise EngineError("INSERT values must be literals (bind parameters first)")


def _execute_insert(db, stmt: ast.Insert) -> int:
    table = db.table(stmt.table)
    schema = table.schema
    count = 0
    for row_exprs in stmt.rows:
        if stmt.columns is not None:
            if len(row_exprs) != len(stmt.columns):
                raise EngineError("INSERT row width does not match column list")
            provided = dict(zip(stmt.columns, (_literal_value(e) for e in row_exprs)))
            values = [provided.get(c.name) for c in schema.columns]
            unknown = set(provided) - set(schema.column_names)
            if unknown:
                raise IntegrityError(f"unknown INSERT columns {sorted(unknown)}")
        else:
            if len(row_exprs) != len(schema.columns):
                raise EngineError("INSERT row width does not match table")
            values = [_literal_value(e) for e in row_exprs]
        _check_foreign_keys(db, schema, values)
        table.insert(values)
        count += 1
    return count


def _check_foreign_keys(db, schema, values) -> None:
    for fk in schema.foreign_keys:
        value = values[schema.index_of(fk.column)]
        if value is None:
            continue
        referenced = db.table(fk.ref_table)
        if not referenced.contains_value(fk.ref_column, value):
            raise IntegrityError(
                f"foreign key violation: {schema.name}.{fk.column}={value!r}"
                f" has no match in {fk.ref_table}.{fk.ref_column}"
            )


def _matching_ids(db, table, where: ast.Expr | None, alias: str) -> list[int]:
    resolver = _ColumnResolver(db.schema, {alias: table.schema.name})
    if where is not None:
        where = ast.map_expr(where, resolver._resolve_expr)
    matches = []
    columns = table.schema.column_names
    for row_id, row in table.row_items():
        env = {(alias, c): v for c, v in zip(columns, row)}
        env[DB_CONTEXT] = db
        if predicate_holds(where, env):
            matches.append(row_id)
    return matches


def _execute_update(db, stmt: ast.Update) -> int:
    table = db.table(stmt.table)
    schema = table.schema
    alias = stmt.table
    resolver = _ColumnResolver(db.schema, {alias: stmt.table})
    row_ids = _matching_ids(db, table, stmt.where, alias)
    columns = schema.column_names
    count = 0
    for row_id in row_ids:
        row = dict(zip(columns, dict(table.row_items())[row_id]))
        env = {(alias, c): v for c, v in row.items()}
        new_row = dict(row)
        for column, expr in stmt.assignments:
            if column not in columns:
                raise IntegrityError(f"unknown column {column!r} in UPDATE")
            resolved = ast.map_expr(expr, resolver._resolve_expr)
            new_row[column] = evaluate(resolved, env)
        values = [new_row[c] for c in columns]
        _check_foreign_keys(db, schema, values)
        table.update_id(row_id, values)
        count += 1
    return count


def _execute_delete(db, stmt: ast.Delete) -> int:
    table = db.table(stmt.table)
    row_ids = _matching_ids(db, table, stmt.where, stmt.table)
    return table.delete_ids(row_ids)
