"""Negative Query Implication (§4.3).

``NQI_S(V)`` holds when revealing the contents of the views ``V`` could
render a *possible* answer to the sensitive query ``S`` *impossible*.

Checking algorithm
------------------

The constructive sufficient condition is the mirror image of PQI: if
there is a *containing* rewriting — a query ``R`` over the views whose
expansion contains ``S`` (``S ⊑ expansion(R)``) — then every answer of
``S`` must appear in ``R`` evaluated over the view contents. A possible
answer ``t`` absent from ``R(V(D))`` is therefore impossible on every
database with those view contents.

This matches Example 4.2: with ``V = {Q2}`` (adults) and ``S = Q1``
(seniors), the identity rewriting over Q2 contains Q1, so NQI holds —
anyone *not* listed as an adult certainly isn't a senior.

The checker also materializes an illustrative instance pair: a database
``D`` on which some row ``t`` is a possible answer to ``S``, and the
(empty-view) contents under which ``t`` becomes impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluate.answers import Instance
from repro.relalg.cq import CQ
from repro.relalg.chase import TGD, chase
from repro.relalg.frozen import freeze
from repro.relalg.rewrite import Rewriting, ViewDef, enumerate_rewritings
from repro.relalg.containment import cq_contained_in, satisfiable
from repro.relalg.constraints import ConstraintSet
from repro.util.errors import DbacError


@dataclass
class NQIResult:
    """Outcome of an NQI check."""

    holds: bool
    sensitive: CQ
    method: str
    witness: Rewriting | None = None
    possible_row: tuple | None = None
    possible_instance: Instance | None = None

    def explain(self) -> str:
        if not self.holds:
            return (
                "no NQI witness found: the views place no upper bound on"
                f" the sensitive query's answers ({self.method})"
            )
        assert self.witness is not None
        lines = [
            "NQI holds: revealing the views can rule out possible answers"
            " to the sensitive query.",
            f"  bounding rewriting: {self.witness.describe()}",
        ]
        if self.possible_row is not None:
            lines.append(
                f"  e.g. {self.possible_row!r} is possible a priori, but"
                " impossible whenever it is absent from the rewriting's"
                " answer over the revealed views"
            )
        return "\n".join(lines)


def check_nqi(
    sensitive: CQ,
    views: list[ViewDef],
    constraints: list[TGD] | None = None,
    max_candidates: int = 2000,
) -> NQIResult:
    """Check NQI of the views against a sensitive CQ (instantiated)."""
    if constraints:
        sensitive = chase(sensitive, constraints)
    if not satisfiable(sensitive):
        return NQIResult(
            holds=False, sensitive=sensitive, method="sensitive query unsatisfiable"
        )
    for candidate in enumerate_rewritings(
        sensitive, views, max_candidates=max_candidates, allow_partial=True
    ):
        if not candidate.atoms:
            continue
        expansion = candidate.expansion
        if not ConstraintSet(expansion.comps).consistent():
            continue
        if not cq_contained_in(sensitive, expansion):
            continue
        instance, row = _possible_witness(sensitive)
        return NQIResult(
            holds=True,
            sensitive=sensitive,
            method="containing rewriting",
            witness=candidate,
            possible_row=row,
            possible_instance=instance,
        )
    return NQIResult(
        holds=False,
        sensitive=sensitive,
        method=f"rewriting enumeration (budget {max_candidates})",
    )


def _possible_witness(sensitive: CQ) -> tuple[Instance | None, tuple | None]:
    try:
        frozen = freeze(sensitive)
    except DbacError:
        return None, None
    instance: Instance = {rel: set(rows) for rel, rows in frozen.facts.items()}
    return instance, frozen.head_row
