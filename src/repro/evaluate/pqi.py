"""Positive Query Implication (§4.3).

``PQI_S(V)`` holds when revealing the contents of the views ``V`` could
render a *possible* answer to the sensitive query ``S`` *certain*
(Benedikt et al., Def. 3.5, adapted to view-based access control).

Checking algorithm
------------------

The constructive sufficient condition: if ``S`` has a satisfiable
*contained rewriting* ``R`` over ``V``, then PQI holds — on any database
where ``R`` returns a row ``t``, every database with the same view
contents also returns ``t`` from ``R``, and ``R``'s containment in ``S``
makes ``t`` a certain answer to ``S``. The checker materializes this
witness: it freezes the rewriting's expansion into a concrete database
``D`` and reports the row rendered certain.

This matches Example 4.2: with ``V = {Q1}`` (seniors) and ``S = Q2``
(adults), the identity rewriting over Q1 is contained in Q2, so PQI
holds; anyone listed as a senior is certainly an adult.

A ``False`` verdict means no witness was found within the enumeration
budget — sound evidence of absence for the conjunctive fragment the
generator covers, reported with the caveat in :attr:`PQIResult.method`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluate.answers import Instance, evaluate_cq
from repro.relalg.cq import CQ
from repro.relalg.chase import TGD, chase
from repro.relalg.frozen import freeze
from repro.relalg.rewrite import Rewriting, ViewDef, enumerate_rewritings
from repro.relalg.containment import cq_contained_in, satisfiable
from repro.relalg.constraints import ConstraintSet
from repro.util.errors import DbacError


@dataclass
class PQIResult:
    """Outcome of a PQI check."""

    holds: bool
    sensitive: CQ
    method: str
    witness: Rewriting | None = None
    witness_instance: Instance | None = None
    certain_row: tuple | None = None

    def explain(self) -> str:
        if not self.holds:
            return (
                "no PQI witness found: no satisfiable combination of the"
                " views pins down an answer to the sensitive query"
                f" ({self.method})"
            )
        assert self.witness is not None
        lines = [
            "PQI holds: revealing the views can render an answer to the"
            " sensitive query certain.",
            f"  witness rewriting: {self.witness.describe()}",
        ]
        if self.certain_row is not None:
            lines.append(f"  e.g. the answer row {self.certain_row!r} becomes certain")
        return "\n".join(lines)


def check_pqi(
    sensitive: CQ,
    views: list[ViewDef],
    constraints: list[TGD] | None = None,
    max_candidates: int = 2000,
) -> PQIResult:
    """Check PQI of the views against a sensitive CQ.

    The sensitive query and views must be instantiated (no free params).
    """
    original = sensitive
    if constraints:
        # Candidates are generated over the chased query (more subgoals,
        # more coverage opportunities); validity is containment *under the
        # constraints*: chase(expansion) ⊑ original sensitive query.
        sensitive = chase(sensitive, constraints)
    if not satisfiable(sensitive):
        return PQIResult(
            holds=False, sensitive=sensitive, method="sensitive query unsatisfiable"
        )
    for candidate in enumerate_rewritings(sensitive, views, max_candidates=max_candidates):
        if not candidate.atoms:
            continue  # must actually use a view
        expansion = candidate.expansion
        if not ConstraintSet(expansion.comps).consistent():
            continue
        expansion_chased = chase(expansion, constraints) if constraints else expansion
        if not cq_contained_in(expansion_chased, original):
            continue
        witness_instance, certain_row = _materialize(expansion)
        return PQIResult(
            holds=True,
            sensitive=sensitive,
            method="contained rewriting",
            witness=candidate,
            witness_instance=witness_instance,
            certain_row=certain_row,
        )
    return PQIResult(
        holds=False,
        sensitive=sensitive,
        method=f"rewriting enumeration (budget {max_candidates})",
    )


def _materialize(expansion: CQ) -> tuple[Instance | None, tuple | None]:
    """Freeze the witness expansion into a concrete database and row."""
    try:
        frozen = freeze(expansion)
    except DbacError:
        return None, None
    instance: Instance = {rel: set(rows) for rel, rows in frozen.facts.items()}
    rows = evaluate_cq(expansion, instance)
    row = frozen.head_row if frozen.head_row in rows else (next(iter(rows), None))
    return instance, row
