"""The Bayesian disclosure baseline (§4.2) and its prior sensitivity.

Bayesian privacy models disclosure as the shift in an adversary's belief
about a sensitive query's answer after observing the views. The paper's
argument for prior-agnostic criteria (§4.3) is that this shift depends on
the adversary's *prior*, which cannot be validated empirically.
Experiment E8 makes that argument quantitative: the same policy and the
same database produce wildly different belief shifts under different
priors, while the PQI/NQI verdicts stay fixed.

Two prior families are implemented:

* :class:`TupleIndependentPrior` — every potential tuple is present
  independently with its own probability (the classic model of Miklau &
  Suciu).
* :class:`ChoicePrior` — mutually exclusive alternatives: for each key, a
  distribution over the possible value tuples (the shape needed to model
  "each patient has exactly one disease", following Dalvi et al.'s
  restricted prior families).

The posterior is estimated by Monte-Carlo rejection sampling: sample
instances from the prior, keep those whose view images match the
observed ones, and tally the sensitive query's answers.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.evaluate.answers import Instance, evaluate_cq, view_image
from repro.relalg.cq import CQ
from repro.relalg.rewrite import ViewDef


@dataclass
class TupleIndependentPrior:
    """Independent presence probabilities per potential tuple.

    ``fixed`` holds tuples present with probability 1 (public scaffolding
    like the Patients/Doctors tables); ``uncertain`` maps relation name to
    a list of (tuple, probability).
    """

    fixed: Instance = field(default_factory=dict)
    uncertain: dict[str, list[tuple[tuple, float]]] = field(default_factory=dict)

    def sample(self, rng: random.Random) -> Instance:
        instance: Instance = {rel: set(rows) for rel, rows in self.fixed.items()}
        for rel, options in self.uncertain.items():
            bucket = instance.setdefault(rel, set())
            for row, probability in options:
                if rng.random() < probability:
                    bucket.add(row)
        return instance


@dataclass
class ChoicePrior:
    """Mutually exclusive alternatives per key.

    ``choices`` maps a relation name to a list of groups; each group is a
    list of (tuple, probability) from which *exactly one* tuple is drawn
    (probabilities within a group must sum to 1).
    """

    fixed: Instance = field(default_factory=dict)
    choices: dict[str, list[list[tuple[tuple, float]]]] = field(default_factory=dict)

    def sample(self, rng: random.Random) -> Instance:
        instance: Instance = {rel: set(rows) for rel, rows in self.fixed.items()}
        for rel, groups in self.choices.items():
            bucket = instance.setdefault(rel, set())
            for group in groups:
                bucket.add(_draw(group, rng))
        return instance


def _draw(group: Sequence[tuple[tuple, float]], rng: random.Random) -> tuple:
    roll = rng.random()
    cumulative = 0.0
    for row, probability in group:
        cumulative += probability
        if roll <= cumulative:
            return row
    return group[-1][0]


@dataclass
class BeliefReport:
    """Prior and posterior beliefs over the sensitive query's answers."""

    prior_distribution: dict[frozenset, float]
    posterior_distribution: dict[frozenset, float]
    accepted: int
    samples: int

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.samples if self.samples else 0.0

    @property
    def belief_shift(self) -> float:
        """Total-variation distance between prior and posterior."""
        return total_variation(self.prior_distribution, self.posterior_distribution)

    def top_posterior(self) -> tuple[frozenset, float] | None:
        if not self.posterior_distribution:
            return None
        answer = max(self.posterior_distribution.items(), key=lambda kv: kv[1])
        return answer


def posterior_over_sensitive(
    prior,
    views: Sequence[ViewDef],
    observed_images: dict[str, frozenset],
    sensitive: CQ,
    samples: int = 4000,
    rng: random.Random | None = None,
    constraint=None,
) -> BeliefReport:
    """Monte-Carlo rejection sampling of the posterior belief.

    ``observed_images`` maps view name to the revealed contents (e.g.
    computed from the real database). ``constraint``, when given, is a
    predicate over sampled instances encoding background knowledge (e.g.
    an integrity constraint the adversary knows the world satisfies);
    samples violating it are rejected alongside view mismatches. The
    returned report pairs the unconditional prior distribution over
    sensitive answers with the posterior conditioned on the observation.
    """
    rng = rng or random.Random(0)
    prior_counts: dict[frozenset, int] = {}
    posterior_counts: dict[frozenset, int] = {}
    accepted = 0
    for _ in range(samples):
        instance = prior.sample(rng)
        answer = frozenset(evaluate_cq(sensitive, instance))
        prior_counts[answer] = prior_counts.get(answer, 0) + 1
        if constraint is not None and not constraint(instance):
            continue
        if all(
            view_image(view.cq, instance) == observed_images.get(view.name, frozenset())
            for view in views
        ):
            accepted += 1
            posterior_counts[answer] = posterior_counts.get(answer, 0) + 1
    return BeliefReport(
        prior_distribution=_normalize(prior_counts, samples),
        posterior_distribution=_normalize(posterior_counts, accepted),
        accepted=accepted,
        samples=samples,
    )


def _normalize(counts: dict[frozenset, int], total: int) -> dict[frozenset, float]:
    if total == 0:
        return {}
    return {answer: count / total for answer, count in counts.items()}


def total_variation(
    left: dict[frozenset, float], right: dict[frozenset, float]
) -> float:
    """Total-variation distance between two answer distributions."""
    keys = set(left) | set(right)
    return 0.5 * sum(abs(left.get(k, 0.0) - right.get(k, 0.0)) for k in keys)
