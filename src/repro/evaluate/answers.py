"""Evaluating conjunctive queries over plain relational instances.

An *instance* is just ``dict[str, set[tuple]]`` — relation name to rows.
This is the representation frozen canonical databases, Monte-Carlo
samples, and counterexample candidates all share, so one evaluator serves
the PQI/NQI checkers, the Bayesian estimator, and counterexample
verification.

Answer terminology (§4.3): a row ``t`` is a *possible* answer to ``S``
if ``t ∈ S(D)`` for some instance ``D``, *certain* if for all, and
*impossible* if for none.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.relalg.constraints import _const_cmp
from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Term, Var

Instance = dict[str, set[tuple]]


def evaluate_cq(query: CQ, instance: Instance) -> set[tuple]:
    """All answer rows of ``query`` on ``instance`` (set semantics).

    Residual :class:`Param` terms are treated as rigid unknowns that match
    nothing — instantiate the query first.
    """
    rows: set[tuple] = set()
    for binding in _matches(query.body, query.comps, instance):
        rows.add(tuple(_value(term, binding) for term in query.head))
    return rows


def evaluate_ucq(query: UCQ, instance: Instance) -> set[tuple]:
    rows: set[tuple] = set()
    for disjunct in query.disjuncts:
        rows |= evaluate_cq(disjunct, instance)
    return rows


def view_image(view_cq: CQ, instance: Instance) -> frozenset[tuple]:
    """The contents of a view on an instance, as an immutable set."""
    return frozenset(evaluate_cq(view_cq, instance))


def images_of(views, instance: Instance) -> dict[str, frozenset[tuple]]:
    """Images of a collection of :class:`ViewDef`-likes, keyed by name."""
    return {view.name: view_image(view.cq, instance) for view in views}


def nonempty(query: CQ, instance: Instance) -> bool:
    """Does the query return at least one row? (Early-exit evaluation.)"""
    for _ in _matches(query.body, query.comps, instance):
        return True
    return False


# --------------------------------------------------------------------------
# Matching engine
# --------------------------------------------------------------------------


def _matches(
    body: tuple[Atom, ...],
    comps: tuple[Comp, ...],
    instance: Instance,
) -> Iterator[dict[Var, object]]:
    """Yield every satisfying assignment of the body over the instance."""
    # Order atoms smallest-relation-first for cheap pruning.
    order = sorted(range(len(body)), key=lambda i: len(instance.get(body[i].rel, ())))

    def check_comps(binding: dict[Var, object]) -> bool:
        for comp in comps:
            left = _value_or_none(comp.left, binding)
            right = _value_or_none(comp.right, binding)
            if left is _UNBOUND or right is _UNBOUND:
                continue  # defer until bound; final check below re-verifies
            if not _const_cmp(comp.op, left, right):
                return False
        return True

    def extend(position: int, binding: dict[Var, object]) -> Iterator[dict[Var, object]]:
        if position == len(order):
            # All atoms matched; all comps are fully bound by now unless a
            # comp references a variable outside the body — treat such a
            # query as returning nothing (it is not range-restricted).
            for comp in comps:
                left = _value_or_none(comp.left, binding)
                right = _value_or_none(comp.right, binding)
                if left is _UNBOUND or right is _UNBOUND:
                    return
                if not _const_cmp(comp.op, left, right):
                    return
            yield binding
            return
        atom = body[order[position]]
        for row in instance.get(atom.rel, ()):
            if len(row) != len(atom.args):
                continue
            extension: dict[Var, object] = {}
            ok = True
            for arg, value in zip(atom.args, row):
                if isinstance(arg, Const):
                    if arg.value != value:
                        ok = False
                        break
                elif isinstance(arg, Var):
                    bound = binding.get(arg, extension.get(arg, _UNBOUND))
                    if bound is _UNBOUND:
                        extension[arg] = value
                    elif bound != value:
                        ok = False
                        break
                else:  # Param: rigid unknown — matches nothing
                    ok = False
                    break
            if not ok:
                continue
            binding.update(extension)
            if check_comps(binding):
                yield from extend(position + 1, binding)
            for key in extension:
                del binding[key]

    yield from extend(0, {})


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _value(term: Term, binding: dict[Var, object]) -> object:
    value = _value_or_none(term, binding)
    if value is _UNBOUND:
        raise KeyError(f"unbound term {term!r} in head")
    return value


def _value_or_none(term: Term, binding: dict[Var, object]):
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return binding.get(term, _UNBOUND)
    return _UNBOUND  # Param


# --------------------------------------------------------------------------
# Bounded instance enumeration (for semantics tests and tiny refutations)
# --------------------------------------------------------------------------


def enumerate_instances(
    arities: dict[str, int],
    domain: Iterable[object],
    max_rows: int,
) -> Iterator[Instance]:
    """All instances over ``domain`` with at most ``max_rows`` total rows.

    Exponential — usable only for tiny semantics checks in tests (e.g.
    verifying the PQI/NQI definitions against brute force).
    """
    domain = list(domain)
    all_tuples: list[tuple[str, tuple]] = []
    for rel, arity in sorted(arities.items()):
        all_tuples.extend((rel, combo) for combo in _product(domain, arity))

    def build(index: int, remaining: int, current: Instance) -> Iterator[Instance]:
        yield {rel: set(rows) for rel, rows in current.items()}
        if remaining == 0:
            return
        for next_index in range(index, len(all_tuples)):
            rel, row = all_tuples[next_index]
            current.setdefault(rel, set()).add(row)
            yield from build(next_index + 1, remaining - 1, current)
            current[rel].discard(row)

    base: Instance = {rel: set() for rel in arities}
    yield from build(0, max_rows, base)


def _product(domain: list, arity: int) -> Iterator[tuple]:
    if arity == 0:
        yield ()
        return
    for value in domain:
        for rest in _product(domain, arity - 1):
            yield (value, *rest)
