"""Policy evaluation (§4): does a policy disclose sensitive data?

* :mod:`repro.evaluate.answers` — evaluating CQs over plain instances;
  possible/certain answer machinery shared by the checkers.
* :mod:`repro.evaluate.pqi` / :mod:`repro.evaluate.nqi` — the paper's
  proposed prior-agnostic criteria: positive and negative query
  implication (Benedikt et al., adapted to view-based access control).
* :mod:`repro.evaluate.kanon` — k-anonymity with generalization
  hierarchies (another prior-agnostic criterion the paper cites).
* :mod:`repro.evaluate.bayes` — the Bayesian belief-shift baseline (§4.2),
  used to demonstrate the prior-sensitivity that motivates §4.3.
"""

from repro.evaluate.answers import evaluate_cq, evaluate_ucq, view_image
from repro.evaluate.bounded import BoundedResult, bounded_nqi, bounded_pqi
from repro.evaluate.pqi import PQIResult, check_pqi
from repro.evaluate.nqi import NQIResult, check_nqi
from repro.evaluate.kanon import (
    GeneralizationHierarchy,
    age_hierarchy,
    find_minimal_generalization,
    k_anonymity,
    l_diversity,
    suppress_to_k,
    zip_hierarchy,
)
from repro.evaluate.bayes import (
    BeliefReport,
    ChoicePrior,
    TupleIndependentPrior,
    posterior_over_sensitive,
    total_variation,
)

__all__ = [
    "BeliefReport",
    "BoundedResult",
    "ChoicePrior",
    "GeneralizationHierarchy",
    "NQIResult",
    "PQIResult",
    "TupleIndependentPrior",
    "age_hierarchy",
    "bounded_nqi",
    "bounded_pqi",
    "check_nqi",
    "check_pqi",
    "evaluate_cq",
    "evaluate_ucq",
    "find_minimal_generalization",
    "k_anonymity",
    "l_diversity",
    "posterior_over_sensitive",
    "suppress_to_k",
    "total_variation",
    "view_image",
    "zip_hierarchy",
]
