"""k-anonymity with generalization hierarchies (§4.3's other criterion).

The paper cites k-anonymity (Samarati '01, Sweeney '02) as an existing
*prior-agnostic* criterion whose practical algorithms assume single-table
schemas. This module implements that baseline: grouping by
quasi-identifier, domain generalization hierarchies, and a Samarati-style
lattice search for a minimal generalization achieving ``k`` (with bounded
row suppression).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.util.errors import DbacError


@dataclass(frozen=True)
class GeneralizationHierarchy:
    """A domain generalization hierarchy for one column.

    ``levels[0]`` is the identity; each subsequent level maps a value to
    a coarser representation. The top level conventionally maps to "*".
    """

    name: str
    levels: tuple[Callable[[object], object], ...]

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    def apply(self, level: int, value: object) -> object:
        if not 0 <= level < len(self.levels):
            raise DbacError(f"hierarchy {self.name!r} has no level {level}")
        return self.levels[level](value)


def age_hierarchy() -> GeneralizationHierarchy:
    """Ages: exact → 5-year band → 10-year band → 20-year band → ``*``."""

    def band(width: int):
        def generalize(value: object) -> object:
            if not isinstance(value, int):
                return "*"
            low = (value // width) * width
            return f"{low}-{low + width - 1}"

        return generalize

    return GeneralizationHierarchy(
        name="age",
        levels=(lambda v: v, band(5), band(10), band(20), lambda v: "*"),
    )


def zip_hierarchy() -> GeneralizationHierarchy:
    """ZIP codes: mask one trailing digit per level (02139 → 0213* → ...)."""

    def mask(digits: int):
        def generalize(value: object) -> object:
            text = str(value)
            if digits >= len(text):
                return "*" * len(text)
            return text[: len(text) - digits] + "*" * digits

        return generalize

    return GeneralizationHierarchy(
        name="zip",
        levels=(lambda v: v, mask(1), mask(2), mask(3), lambda v: "*" * len(str(v))),
    )


def categorical_hierarchy(name: str) -> GeneralizationHierarchy:
    """Categorical columns: exact value or fully suppressed."""
    return GeneralizationHierarchy(name=name, levels=(lambda v: v, lambda v: "*"))


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------


def k_anonymity(rows: Sequence[tuple], quasi_indexes: Sequence[int]) -> int:
    """The k of a release: the size of the smallest quasi-identifier group.

    An empty release is vacuously anonymous; by convention we return 0 so
    callers can distinguish it from any real guarantee.
    """
    if not rows:
        return 0
    groups: dict[tuple, int] = {}
    for row in rows:
        key = tuple(row[i] for i in quasi_indexes)
        groups[key] = groups.get(key, 0) + 1
    return min(groups.values())


def l_diversity(
    rows: Sequence[tuple],
    quasi_indexes: Sequence[int],
    sensitive_index: int,
) -> int:
    """The l of a release: distinct sensitive values in the smallest group.

    k-anonymity alone leaves the homogeneity attack open — a group of
    k identical sensitive values discloses the value exactly (this is the
    Example 4.1 inference in microdata form). An empty release returns 0.
    """
    if not rows:
        return 0
    groups: dict[tuple, set] = {}
    for row in rows:
        key = tuple(row[i] for i in quasi_indexes)
        groups.setdefault(key, set()).add(row[sensitive_index])
    return min(len(values) for values in groups.values())


def generalize_rows(
    rows: Sequence[tuple],
    quasi_indexes: Sequence[int],
    hierarchies: Sequence[GeneralizationHierarchy],
    levels: Sequence[int],
) -> list[tuple]:
    """Apply per-column generalization levels to the quasi-identifiers."""
    if not (len(quasi_indexes) == len(hierarchies) == len(levels)):
        raise DbacError("quasi_indexes, hierarchies, and levels must align")
    out = []
    for row in rows:
        new_row = list(row)
        for position, hierarchy, level in zip(quasi_indexes, hierarchies, levels):
            new_row[position] = hierarchy.apply(level, row[position])
        out.append(tuple(new_row))
    return out


def suppress_to_k(
    rows: Sequence[tuple], quasi_indexes: Sequence[int], k: int
) -> tuple[list[tuple], int]:
    """Drop rows in groups smaller than ``k``; returns (kept, suppressed)."""
    groups: dict[tuple, list[tuple]] = {}
    for row in rows:
        key = tuple(row[i] for i in quasi_indexes)
        groups.setdefault(key, []).append(row)
    kept: list[tuple] = []
    suppressed = 0
    for members in groups.values():
        if len(members) >= k:
            kept.extend(members)
        else:
            suppressed += len(members)
    return kept, suppressed


@dataclass
class GeneralizationResult:
    """Outcome of the minimal-generalization search."""

    levels: tuple[int, ...]
    rows: list[tuple]
    suppressed: int
    k: int

    @property
    def total_level(self) -> int:
        return sum(self.levels)


def find_minimal_generalization(
    rows: Sequence[tuple],
    quasi_indexes: Sequence[int],
    hierarchies: Sequence[GeneralizationHierarchy],
    k: int,
    max_suppressed: int = 0,
) -> GeneralizationResult | None:
    """Samarati-style search: the lowest-total-level node of the
    generalization lattice that achieves ``k`` with at most
    ``max_suppressed`` rows suppressed.

    Lattice nodes are visited in increasing total level (breadth of the
    lattice), so the first hit is height-minimal.
    """
    if k <= 1:
        return GeneralizationResult(
            levels=tuple(0 for _ in hierarchies), rows=list(rows), suppressed=0, k=k
        )
    heights = [h.height for h in hierarchies]
    max_total = sum(heights)
    for total in range(max_total + 1):
        for levels in _levels_with_total(heights, total):
            generalized = generalize_rows(rows, quasi_indexes, hierarchies, levels)
            kept, suppressed = suppress_to_k(generalized, quasi_indexes, k)
            if suppressed <= max_suppressed and kept:
                achieved = k_anonymity(kept, quasi_indexes)
                if achieved >= k:
                    return GeneralizationResult(
                        levels=tuple(levels),
                        rows=kept,
                        suppressed=suppressed,
                        k=achieved,
                    )
    return None


def _levels_with_total(heights: Sequence[int], total: int):
    """All level vectors bounded by ``heights`` summing to ``total``."""
    ranges = [range(h + 1) for h in heights]
    for combo in itertools.product(*ranges):
        if sum(combo) == total:
            yield combo
