"""Brute-force PQI/NQI semantics over bounded instance spaces.

The definitions (§4.3, after Benedikt et al. Def. 3.5):

* a row ``t`` is a *possible* answer to ``S`` if ``t ∈ S(D)`` for some
  database ``D``;
* ``PQI_S(V)`` holds if revealing the contents of ``V`` could render a
  possible answer *certain* — there is a view image under which every
  consistent database answers ``t``;
* ``NQI_S(V)`` holds if revealing the contents of ``V`` could render a
  possible answer *impossible* — there is a view image under which no
  consistent database answers ``t``.

This module checks the definitions *directly*, by enumerating every
instance over a finite domain and row budget, grouping them by view
image, and inspecting the answer sets per group. Exponential — usable
only as a semantic oracle on tiny vocabularies (tests compare the
production checkers in :mod:`repro.evaluate.pqi` / ``nqi`` against it).

Bounding caveat, for interpreting results: restricting to a finite
instance space *over-approximates* both criteria (an excluded larger
database could break a certainty or resurrect a possibility). Hence the
sound comparison direction is: if the production checker says the
criterion holds, the oracle must agree on a domain large enough to
contain the checker's witness values.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import itertools

from repro.evaluate.answers import Instance, evaluate_cq
from repro.relalg.cq import CQ
from repro.relalg.rewrite import ViewDef


def _enumerate_per_relation(
    arities: dict[str, int], domain: Iterable[object], max_rows: int
):
    """All instances with at most ``max_rows`` rows *per relation*.

    A per-relation budget avoids the coupling artifact of a global row
    budget, where filling one relation would forbid rows in another and
    manufacture spurious impossibilities.
    """
    domain = list(domain)
    relations = sorted(arities)
    per_relation_subsets = []
    for rel in relations:
        tuples = list(itertools.product(domain, repeat=arities[rel]))
        subsets = []
        for size in range(0, max_rows + 1):
            subsets.extend(set(c) for c in itertools.combinations(tuples, size))
        per_relation_subsets.append(subsets)
    for combo in itertools.product(*per_relation_subsets):
        yield {rel: set(rows) for rel, rows in zip(relations, combo)}


@dataclass
class BoundedResult:
    """Outcome of a bounded semantic check."""

    holds: bool
    witness_image: tuple | None = None
    witness_row: tuple | None = None
    instances_examined: int = 0


def _groups_by_image(
    views: list[ViewDef],
    arities: dict[str, int],
    domain: Iterable[object],
    max_rows: int,
):
    """Group all bounded instances by their tuple of view images."""
    groups: dict[tuple, list[Instance]] = {}
    count = 0
    for instance in _enumerate_per_relation(arities, domain, max_rows):
        count += 1
        image = tuple(
            frozenset(evaluate_cq(view.cq, instance)) for view in views
        )
        groups.setdefault(image, []).append(instance)
    return groups, count


def bounded_pqi(
    sensitive: CQ,
    views: list[ViewDef],
    arities: dict[str, int],
    domain: Iterable[object],
    max_rows: int = 3,
) -> BoundedResult:
    """Does some view image make a possible answer certain (within bounds)?"""
    groups, count = _groups_by_image(views, arities, domain, max_rows)
    for image, instances in groups.items():
        answer_sets = [evaluate_cq(sensitive, instance) for instance in instances]
        certain = set.intersection(*answer_sets) if answer_sets else set()
        if certain:
            return BoundedResult(
                holds=True,
                witness_image=image,
                witness_row=sorted(certain)[0],
                instances_examined=count,
            )
    return BoundedResult(holds=False, instances_examined=count)


def bounded_nqi(
    sensitive: CQ,
    views: list[ViewDef],
    arities: dict[str, int],
    domain: Iterable[object],
    max_rows: int = 3,
) -> BoundedResult:
    """Does some view image rule out a possible answer (within bounds)?"""
    groups, count = _groups_by_image(views, arities, domain, max_rows)
    possible: set[tuple] = set()
    for instances in groups.values():
        for instance in instances:
            possible |= evaluate_cq(sensitive, instance)
    if not possible:
        return BoundedResult(holds=False, instances_examined=count)
    for image, instances in groups.items():
        produced: set[tuple] = set()
        for instance in instances:
            produced |= evaluate_cq(sensitive, instance)
        ruled_out = possible - produced
        if ruled_out:
            return BoundedResult(
                holds=True,
                witness_image=image,
                witness_row=sorted(ruled_out)[0],
                instances_examined=count,
            )
    return BoundedResult(holds=False, instances_examined=count)
