"""Deterministic synthetic data generation for the workload apps.

Every generator takes an explicit :class:`random.Random` (or seed), so
experiments are reproducible run-to-run. Scale is controlled by a single
``size`` knob per app (roughly: the number of primary entities).
"""

from __future__ import annotations

import random

FIRST_NAMES = [
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "niaj", "olivia", "peggy", "rupert", "sybil",
    "trent", "victor", "walter", "yolanda",
]

EVENT_TITLES = [
    "standup", "retro", "planning", "design review", "1:1", "all hands",
    "interview", "reading group", "demo", "onboarding",
]

LOCATIONS = ["room1", "room2", "room3", "cafe", "online"]

DISEASES = [
    "pneumonia", "tuberculosis", "influenza", "asthma", "diabetes",
    "hypertension", "migraine", "anemia", "arthritis", "bronchitis",
]

DEPARTMENTS = ["eng", "ops", "sales", "hr", "finance"]

ZIPS = ["02139", "02140", "02141", "94703", "94704", "94705", "10001", "10002"]


def rng_of(seed: int | random.Random) -> random.Random:
    """Coerce a seed or Random into a Random."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def pick_name(rng: random.Random, index: int) -> str:
    base = FIRST_NAMES[index % len(FIRST_NAMES)]
    if index < len(FIRST_NAMES):
        return base
    return f"{base}{index // len(FIRST_NAMES)}"
