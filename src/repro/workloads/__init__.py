"""Workload applications: the paper's examples as running systems.

Each workload module exposes the same shape (see :class:`WorkloadApp` in
:mod:`repro.workloads.runner`):

* ``calendar_app`` — the §2.2 / Listing 1 calendar (Example 2.1/3.1);
* ``hospital`` — the hospital-management system of Example 4.1;
* ``employees`` — the employee database of Example 4.2;
* ``social`` — a larger social-network app used for scale experiments.
"""

from repro.workloads.runner import AppRunner, RequestOutcome, WorkloadApp
from repro.workloads import calendar_app, employees, hospital, social

__all__ = [
    "AppRunner",
    "RequestOutcome",
    "WorkloadApp",
    "calendar_app",
    "employees",
    "hospital",
    "social",
]
