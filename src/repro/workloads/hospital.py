"""The hospital-management system of Example 4.1.

The staff policy reveals (1) the doctor assigned to each patient and
(2) the diseases treated by each doctor; the disease each patient is
treated for is sensitive. The data generator maintains the invariant that
drives the example's inference: a patient's condition is always one of
their doctor's diseases — so revealing the two allowed views narrows a
patient's disease down to the doctor's specialty list (for John's doctor,
exactly two diseases).
"""

from __future__ import annotations

import random

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Schema,
    TableSchema,
    open_database,
)
from repro.extract.handlers import (
    Abort,
    Assign,
    FieldRef,
    Handler,
    If,
    IsEmpty,
    ParamRef,
    Query,
    Return,
)
from repro.policy import Policy, View
from repro.workloads.datagen import DISEASES, pick_name, rng_of
from repro.workloads.runner import Request, WorkloadApp

#: The patient the paper's example centers on (John, treated by a doctor
#: who treats exactly two diseases).
JOHN_PID = 1
JOHN_DOCTOR = 1
JOHN_DOCTOR_DISEASES = ("pneumonia", "tuberculosis")


def make_schema() -> Schema:
    return Schema.of(
        TableSchema(
            "Doctors",
            (
                Column("DId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("DId",),
        ),
        TableSchema(
            "Patients",
            (
                Column("PId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
                Column("DId", ColumnType.INT, nullable=False),
            ),
            primary_key=("PId",),
            foreign_keys=(ForeignKey("DId", "Doctors", "DId"),),
        ),
        TableSchema(
            "DoctorDiseases",
            (
                Column("DId", ColumnType.INT, nullable=False),
                Column("Disease", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("DId", "Disease"),
            foreign_keys=(ForeignKey("DId", "Doctors", "DId"),),
        ),
        TableSchema(
            "PatientConditions",
            (
                Column("PId", ColumnType.INT, nullable=False),
                Column("Disease", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("PId", "Disease"),
            foreign_keys=(ForeignKey("PId", "Patients", "PId"),),
        ),
    )


def make_database(
    size: int = 20,
    seed: int = 11,
    *,
    backend: str | None = None,
    db_path: str | None = None,
) -> Database:
    """``size`` patients, ``max(2, size // 4)`` doctors.

    Doctor #1 treats exactly the two diseases of the paper's example, and
    patient #1 ("john") is assigned to them.
    """
    rng = rng_of(seed)
    db = open_database(make_schema(), backend=backend, path=db_path)
    if db.total_rows():  # a reopened durable file keeps its existing data
        return db
    n_doctors = max(2, size // 4)
    doctors = [(did, f"dr_{pick_name(rng, did - 1)}") for did in range(1, n_doctors + 1)]
    db.insert_rows("Doctors", doctors)

    specialties: dict[int, list[str]] = {JOHN_DOCTOR: list(JOHN_DOCTOR_DISEASES)}
    for did in range(2, n_doctors + 1):
        count = rng.randrange(2, 5)
        specialties[did] = sorted(rng.sample(DISEASES, count))
    rows = [
        (did, disease)
        for did, diseases in sorted(specialties.items())
        for disease in diseases
    ]
    db.insert_rows("DoctorDiseases", rows)

    patients = []
    conditions = []
    for pid in range(1, size + 1):
        if pid == JOHN_PID:
            name, did = "john", JOHN_DOCTOR
        else:
            name = pick_name(rng, pid + 3)
            did = rng.randrange(1, n_doctors + 1)
        patients.append((pid, name, did))
        conditions.append((pid, rng.choice(specialties[did])))
    db.insert_rows("Patients", patients)
    db.insert_rows("PatientConditions", conditions)
    return db


def ground_truth_policy() -> Policy:
    schema = make_schema()
    return Policy(
        [
            View(
                "VP",
                "SELECT PId, Name, DId FROM Patients",
                schema,
                "staff can see the doctor assigned to each patient",
            ),
            View(
                "VD",
                "SELECT DId, Name FROM Doctors",
                schema,
                "staff can see the roster of doctors",
            ),
            View(
                "VT",
                "SELECT DId, Disease FROM DoctorDiseases",
                schema,
                "staff can see the diseases treated by each doctor",
            ),
        ],
        name="hospital-staff",
    )


def sensitive_query_sql() -> str:
    """The sensitive query S of Example 4.1: a patient's disease."""
    return "SELECT Disease FROM PatientConditions WHERE PId = ?PatientId"


def make_handlers() -> dict[str, Handler]:
    view_patient = Handler(
        name="view_patient",
        params=("patient_id",),
        body=(
            Assign(
                "patient",
                Query(
                    "SELECT PId, Name, DId FROM Patients WHERE PId = ?",
                    (ParamRef("patient_id"),),
                ),
            ),
            If(IsEmpty("patient"), then=(Abort("no such patient"),)),
            Return(
                Query(
                    "SELECT DId, Name FROM Doctors WHERE DId = ?",
                    (FieldRef("patient", "DId"),),
                )
            ),
        ),
    )
    doctor_specialties = Handler(
        name="doctor_specialties",
        params=("doctor_id",),
        body=(
            Return(
                Query(
                    "SELECT Disease FROM DoctorDiseases WHERE DId = ?",
                    (ParamRef("doctor_id"),),
                )
            ),
        ),
    )
    list_patients = Handler(
        name="list_patients",
        params=(),
        body=(Return(Query("SELECT PId, Name, DId FROM Patients")),),
    )
    list_doctors = Handler(
        name="list_doctors",
        params=(),
        body=(Return(Query("SELECT DId, Name FROM Doctors")),),
    )
    return {
        handler.name: handler
        for handler in (view_patient, doctor_specialties, list_patients, list_doctors)
    }


def request_stream(db: Database, rng: random.Random, n: int) -> list[Request]:
    patients = [row[0] for row in db.query("SELECT PId FROM Patients").rows]
    doctors = [row[0] for row in db.query("SELECT DId FROM Doctors").rows]
    requests = []
    for index in range(n):
        session = {"user_id": 1000 + (index % 5)}  # staff accounts
        kind = rng.random()
        if kind < 0.5:
            requests.append(
                Request("view_patient", {"patient_id": rng.choice(patients)}, session)
            )
        elif kind < 0.75:
            requests.append(
                Request(
                    "doctor_specialties", {"doctor_id": rng.choice(doctors)}, session
                )
            )
        elif kind < 0.9:
            requests.append(Request("list_patients", {}, session))
        else:
            requests.append(Request("list_doctors", {}, session))
    return requests


def attack_queries(db: Database, user_id: object) -> list[tuple[str, list]]:
    return [
        ("SELECT Disease FROM PatientConditions WHERE PId = ?", [JOHN_PID]),
        ("SELECT PId, Disease FROM PatientConditions", []),
        (
            "SELECT p.Name, c.Disease FROM Patients p"
            " JOIN PatientConditions c ON c.PId = p.PId",
            [],
        ),
    ]


def make_app() -> WorkloadApp:
    return WorkloadApp(
        name="hospital",
        make_database=make_database,
        handlers=make_handlers(),
        ground_truth_policy=ground_truth_policy,
        request_stream=request_stream,
        attack_queries=attack_queries,
        rls_predicates={},  # the staff policy is not row-restricted
        default_size=20,
    )
