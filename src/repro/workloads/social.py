"""A social-network application, used for the scale experiments.

Richer than the paper's running examples: visibility-dependent post
access ("public" / "friends"), a friendship graph, and comments. Its
policy has more views than the other apps, which is what the E10
rewriting-scalability sweep varies.
"""

from __future__ import annotations

import random

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Schema,
    TableSchema,
    open_database,
)
from repro.extract.handlers import (
    Abort,
    Assign,
    Compare,
    ConstArg,
    FieldRef,
    ForEach,
    Handler,
    If,
    IsEmpty,
    Not,
    ParamRef,
    Query,
    Return,
    SessionRef,
)
from repro.policy import Policy, View
from repro.workloads.datagen import pick_name, rng_of
from repro.workloads.runner import Request, WorkloadApp


def make_schema() -> Schema:
    return Schema.of(
        TableSchema(
            "Users",
            (
                Column("UId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("UId",),
        ),
        TableSchema(
            "Friendships",
            (
                Column("UId1", ColumnType.INT, nullable=False),
                Column("UId2", ColumnType.INT, nullable=False),
            ),
            primary_key=("UId1", "UId2"),
            foreign_keys=(
                ForeignKey("UId1", "Users", "UId"),
                ForeignKey("UId2", "Users", "UId"),
            ),
        ),
        TableSchema(
            "Posts",
            (
                Column("PId", ColumnType.INT, nullable=False),
                Column("Author", ColumnType.INT, nullable=False),
                Column("Content", ColumnType.TEXT, nullable=False),
                Column("Visibility", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("PId",),
            foreign_keys=(ForeignKey("Author", "Users", "UId"),),
        ),
        TableSchema(
            "Comments",
            (
                Column("CId", ColumnType.INT, nullable=False),
                Column("PId", ColumnType.INT, nullable=False),
                Column("Author", ColumnType.INT, nullable=False),
                Column("Body", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("CId",),
            foreign_keys=(
                ForeignKey("PId", "Posts", "PId"),
                ForeignKey("Author", "Users", "UId"),
            ),
        ),
    )


def make_database(
    size: int = 30,
    seed: int = 17,
    *,
    backend: str | None = None,
    db_path: str | None = None,
) -> Database:
    """``size`` users, ~3 friends and ~2 posts each, ~1 comment per post."""
    rng = rng_of(seed)
    db = open_database(make_schema(), backend=backend, path=db_path)
    if db.total_rows():  # a reopened durable file keeps its existing data
        return db
    users = [(uid, pick_name(rng, uid - 1)) for uid in range(1, size + 1)]
    db.insert_rows("Users", users)
    friendships = set()
    for uid in range(1, size + 1):
        for _ in range(3):
            other = rng.randrange(1, size + 1)
            if other != uid:
                friendships.add((uid, other))
                friendships.add((other, uid))
    db.insert_rows("Friendships", sorted(friendships))
    posts = []
    pid = 0
    for uid in range(1, size + 1):
        for _ in range(2):
            pid += 1
            visibility = "public" if rng.random() < 0.5 else "friends"
            posts.append((pid, uid, f"post {pid} by user {uid}", visibility))
    db.insert_rows("Posts", posts)
    comments = []
    cid = 0
    for post_id, author, _, _ in posts:
        if rng.random() < 0.6:
            cid += 1
            commenter = rng.randrange(1, size + 1)
            comments.append((cid, post_id, commenter, f"comment {cid}"))
    db.insert_rows("Comments", comments)
    return db


def ground_truth_policy() -> Policy:
    schema = make_schema()
    return Policy(
        [
            View(
                "Vnames",
                "SELECT UId, Name FROM Users",
                schema,
                "the public user directory",
            ),
            View(
                "Vmeta",
                "SELECT PId, Author, Visibility FROM Posts",
                schema,
                "post metadata (id, author, visibility) is public;"
                " content is not",
            ),
            View(
                "Vown",
                "SELECT * FROM Posts WHERE Author = ?MyUId",
                schema,
                "users see their own posts",
            ),
            View(
                "Vpublic",
                "SELECT * FROM Posts WHERE Visibility = 'public'",
                schema,
                "everyone sees public posts",
            ),
            View(
                "Vfriendposts",
                "SELECT p.PId, p.Author, p.Content, p.Visibility FROM Posts p"
                " JOIN Friendships f ON p.Author = f.UId2"
                " WHERE f.UId1 = ?MyUId AND p.Visibility = 'friends'",
                schema,
                "users see friends-only posts of their friends",
            ),
            View(
                "Vfriends",
                "SELECT UId2 FROM Friendships WHERE UId1 = ?MyUId",
                schema,
                "users see their own friend list",
            ),
            View(
                "Vpubliccomments",
                "SELECT c.CId, c.PId, c.Author, c.Body FROM Comments c"
                " JOIN Posts p ON c.PId = p.PId WHERE p.Visibility = 'public'",
                schema,
                "comments on public posts",
            ),
            View(
                "Vowncomments",
                "SELECT c.CId, c.PId, c.Author, c.Body FROM Comments c"
                " JOIN Posts p ON c.PId = p.PId WHERE p.Author = ?MyUId",
                schema,
                "comments on one's own posts",
            ),
            View(
                "Vfriendcomments",
                "SELECT c.CId, c.PId, c.Author, c.Body FROM Comments c"
                " JOIN Posts p ON c.PId = p.PId"
                " JOIN Friendships f ON p.Author = f.UId2"
                " WHERE f.UId1 = ?MyUId AND p.Visibility = 'friends'",
                schema,
                "comments on friends-only posts of friends",
            ),
        ],
        name="social",
    )


def make_handlers() -> dict[str, Handler]:
    my_posts = Handler(
        name="my_posts",
        params=(),
        body=(
            Return(
                Query(
                    "SELECT * FROM Posts WHERE Author = ?",
                    (SessionRef("user_id"),),
                )
            ),
        ),
    )
    view_post = Handler(
        name="view_post",
        params=("post_id",),
        body=(
            # Post metadata is public (view Vmeta); the content column is
            # fetched only by the visibility-scoped queries below — the
            # defensive-query style Blockaid-ready applications use.
            Assign(
                "post",
                Query(
                    "SELECT PId, Author, Visibility FROM Posts WHERE PId = ?",
                    (ParamRef("post_id"),),
                ),
            ),
            If(IsEmpty("post"), then=(Abort("no such post"),)),
            If(
                Compare("=", FieldRef("post", "Visibility"), ConstArg("public")),
                then=(
                    Assign(
                        "content",
                        Query(
                            "SELECT Content FROM Posts"
                            " WHERE PId = ? AND Visibility = 'public'",
                            (ParamRef("post_id"),),
                        ),
                    ),
                    Return(
                        Query(
                            "SELECT c.CId, c.Author, c.Body FROM Comments c"
                            " JOIN Posts p ON c.PId = p.PId"
                            " WHERE p.PId = ? AND p.Visibility = 'public'",
                            (ParamRef("post_id"),),
                        )
                    ),
                ),
                orelse=(
                    Assign(
                        "friends",
                        Query(
                            "SELECT 1 FROM Friendships"
                            " WHERE UId1 = ? AND UId2 = ?",
                            (SessionRef("user_id"), FieldRef("post", "Author")),
                        ),
                    ),
                    If(
                        IsEmpty("friends"),
                        then=(Abort("not visible"),),
                    ),
                    Assign(
                        "content",
                        Query(
                            "SELECT p.Content FROM Posts p"
                            " JOIN Friendships f ON f.UId2 = p.Author"
                            " WHERE f.UId1 = ? AND p.PId = ?"
                            " AND p.Visibility = 'friends'",
                            (SessionRef("user_id"), ParamRef("post_id")),
                        ),
                    ),
                    Return(
                        Query(
                            "SELECT c.CId, c.Author, c.Body FROM Comments c"
                            " JOIN Posts p ON c.PId = p.PId"
                            " JOIN Friendships f ON f.UId2 = p.Author"
                            " WHERE f.UId1 = ? AND p.PId = ?"
                            " AND p.Visibility = 'friends'",
                            (SessionRef("user_id"), ParamRef("post_id")),
                        )
                    ),
                ),
            ),
        ),
    )
    friend_feed = Handler(
        name="friend_feed",
        params=(),
        body=(
            Assign(
                "friends",
                Query(
                    "SELECT UId2 FROM Friendships WHERE UId1 = ?",
                    (SessionRef("user_id"),),
                ),
            ),
            ForEach(
                "friend",
                "friends",
                body=(
                    Assign(
                        "posts",
                        Query(
                            "SELECT PId, Author, Content, Visibility FROM Posts"
                            " WHERE Author = ? AND Visibility = 'friends'",
                            (FieldRef("friend", "UId2"),),
                        ),
                    ),
                ),
            ),
            Return(None),
        ),
    )
    my_post_comments = Handler(
        name="my_post_comments",
        params=("post_id",),
        body=(
            Return(
                Query(
                    "SELECT c.CId, c.PId, c.Author, c.Body FROM Comments c"
                    " JOIN Posts p ON c.PId = p.PId"
                    " WHERE p.PId = ? AND p.Author = ?",
                    (ParamRef("post_id"), SessionRef("user_id")),
                )
            ),
        ),
    )
    user_directory = Handler(
        name="user_directory",
        params=(),
        body=(Return(Query("SELECT UId, Name FROM Users")),),
    )
    public_wall = Handler(
        name="public_wall",
        params=(),
        body=(
            Return(
                Query("SELECT * FROM Posts WHERE Visibility = 'public'")
            ),
        ),
    )
    return {
        handler.name: handler
        for handler in (
            my_posts,
            view_post,
            friend_feed,
            public_wall,
            my_post_comments,
            user_directory,
        )
    }


def request_stream(db: Database, rng: random.Random, n: int) -> list[Request]:
    users = [row[0] for row in db.query("SELECT UId FROM Users").rows]
    visible: dict[int, list[int]] = {}
    for uid in users:
        rows = db.query(
            "SELECT PId FROM Posts WHERE Visibility = 'public'"
        ).rows
        own = db.query("SELECT PId FROM Posts WHERE Author = ?", [uid]).rows
        friend_posts = db.query(
            "SELECT p.PId FROM Posts p JOIN Friendships f ON p.Author = f.UId2"
            " WHERE f.UId1 = ? AND p.Visibility = 'friends'",
            [uid],
        ).rows
        visible[uid] = sorted({r[0] for r in rows + own + friend_posts})
    requests = []
    for _ in range(n):
        uid = rng.choice(users)
        session = {"user_id": uid}
        kind = rng.random()
        if kind < 0.35 and visible[uid]:
            requests.append(
                Request("view_post", {"post_id": rng.choice(visible[uid])}, session)
            )
        elif kind < 0.55:
            requests.append(Request("friend_feed", {}, session))
        elif kind < 0.7:
            requests.append(Request("public_wall", {}, session))
        elif kind < 0.85:
            requests.append(Request("my_posts", {}, session))
        elif kind < 0.95:
            own = db.query(
                "SELECT PId FROM Posts WHERE Author = ?", [uid]
            ).rows
            if own:
                requests.append(
                    Request(
                        "my_post_comments",
                        {"post_id": rng.choice(own)[0]},
                        session,
                    )
                )
            else:
                requests.append(Request("user_directory", {}, session))
        else:
            requests.append(Request("user_directory", {}, session))
    return requests


def attack_queries(db: Database, user_id: object) -> list[tuple[str, list]]:
    return [
        ("SELECT * FROM Posts", []),
        ("SELECT * FROM Posts WHERE Visibility = 'friends'", []),
        ("SELECT UId1, UId2 FROM Friendships", []),
        ("SELECT c.Body FROM Comments c", []),
    ]


def make_app() -> WorkloadApp:
    return WorkloadApp(
        name="social",
        make_database=make_database,
        handlers=make_handlers(),
        ground_truth_policy=ground_truth_policy,
        request_stream=request_stream,
        attack_queries=attack_queries,
        rls_predicates={
            "Posts": (
                "{T}.Author = ?MyUId OR {T}.Visibility = 'public'"
                " OR EXISTS (SELECT 1 FROM Friendships rls"
                " WHERE rls.UId1 = ?MyUId AND rls.UId2 = {T}.Author)"
            ),
            "Friendships": "{T}.UId1 = ?MyUId",
        },
        default_size=30,
    )
