"""The employee database of Example 4.2 (plus a k-anonymity release).

Example 4.2's two queries live here::

    Q1: SELECT name FROM Employees WHERE age >= 60
    Q2: SELECT name FROM Employees WHERE age >= 18

Taking V = {Q1} and S = Q2 yields PQI (revealing seniors makes them
certain adults); taking V = {Q2} and S = Q1 yields NQI (not being listed
as an adult rules out being a senior).

The table also carries quasi-identifier columns (Age, ZIP, Dept) used by
the k-anonymity experiment, with Salary as the sensitive attribute.
"""

from __future__ import annotations

import random

from repro.engine import (
    Column,
    ColumnType,
    Database,
    Schema,
    TableSchema,
    open_database,
)
from repro.extract.handlers import (
    Abort,
    Assign,
    Handler,
    If,
    IsEmpty,
    ParamRef,
    Query,
    Return,
    SessionRef,
)
from repro.policy import Policy, View
from repro.workloads.datagen import DEPARTMENTS, ZIPS, pick_name, rng_of
from repro.workloads.runner import Request, WorkloadApp

Q1_SQL = "SELECT Name FROM Employees WHERE Age >= 60"
Q2_SQL = "SELECT Name FROM Employees WHERE Age >= 18"


def make_schema() -> Schema:
    return Schema.of(
        TableSchema(
            "Employees",
            (
                Column("EId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
                Column("Age", ColumnType.INT, nullable=False),
                Column("Dept", ColumnType.TEXT, nullable=False),
                Column("ZIP", ColumnType.TEXT, nullable=False),
                Column("Salary", ColumnType.INT, nullable=False),
            ),
            primary_key=("EId",),
        ),
    )


def make_database(
    size: int = 40,
    seed: int = 13,
    *,
    backend: str | None = None,
    db_path: str | None = None,
) -> Database:
    rng = rng_of(seed)
    db = open_database(make_schema(), backend=backend, path=db_path)
    if db.total_rows():  # a reopened durable file keeps its existing data
        return db
    rows = []
    for eid in range(1, size + 1):
        age = rng.randrange(18, 70)
        rows.append(
            (
                eid,
                pick_name(rng, eid - 1),
                age,
                rng.choice(DEPARTMENTS),
                rng.choice(ZIPS),
                40_000 + 1_000 * rng.randrange(0, 120),
            )
        )
    # Guarantee at least two seniors so Q1 is non-trivial.
    rows[0] = (rows[0][0], rows[0][1], 63, rows[0][3], rows[0][4], rows[0][5])
    rows[1] = (rows[1][0], rows[1][1], 66, rows[1][3], rows[1][4], rows[1][5])
    db.insert_rows("Employees", rows)
    return db


def ground_truth_policy() -> Policy:
    schema = make_schema()
    return Policy(
        [
            View(
                "Vdir",
                "SELECT EId, Name, Dept FROM Employees",
                schema,
                "the company directory: name and department of everyone",
            ),
            View(
                "Vself",
                "SELECT * FROM Employees WHERE EId = ?MyUId",
                schema,
                "each employee can see their own full record",
            ),
            View(
                "Vseniors",
                Q1_SQL,
                schema,
                "names of employees aged 60+ (retirement planning report)",
            ),
        ],
        name="employees",
    )


def make_handlers() -> dict[str, Handler]:
    directory = Handler(
        name="directory",
        params=(),
        body=(Return(Query("SELECT EId, Name, Dept FROM Employees")),),
    )
    my_record = Handler(
        name="my_record",
        params=(),
        body=(
            Assign(
                "me",
                Query(
                    "SELECT * FROM Employees WHERE EId = ?",
                    (SessionRef("user_id"),),
                ),
            ),
            If(IsEmpty("me"), then=(Abort("no record"),)),
            Return(
                Query(
                    "SELECT * FROM Employees WHERE EId = ?",
                    (SessionRef("user_id"),),
                )
            ),
        ),
    )
    seniors = Handler(
        name="seniors",
        params=(),
        body=(Return(Query(Q1_SQL)),),
    )
    dept_directory = Handler(
        name="dept_directory",
        params=("dept",),
        body=(
            Return(
                Query(
                    "SELECT EId, Name, Dept FROM Employees WHERE Dept = ?",
                    (ParamRef("dept"),),
                )
            ),
        ),
    )
    return {
        handler.name: handler
        for handler in (directory, my_record, seniors, dept_directory)
    }


def request_stream(db: Database, rng: random.Random, n: int) -> list[Request]:
    employee_ids = [row[0] for row in db.query("SELECT EId FROM Employees").rows]
    requests = []
    for _ in range(n):
        uid = rng.choice(employee_ids)
        session = {"user_id": uid}
        kind = rng.random()
        if kind < 0.35:
            requests.append(Request("directory", {}, session))
        elif kind < 0.6:
            requests.append(Request("my_record", {}, session))
        elif kind < 0.8:
            requests.append(Request("seniors", {}, session))
        else:
            requests.append(
                Request("dept_directory", {"dept": rng.choice(DEPARTMENTS)}, session)
            )
    return requests


def attack_queries(db: Database, user_id: object) -> list[tuple[str, list]]:
    other = 1 if user_id != 1 else 2
    return [
        ("SELECT Name, Salary FROM Employees", []),
        ("SELECT Salary FROM Employees WHERE EId = ?", [other]),
        ("SELECT Name, Age FROM Employees", []),
        ("SELECT Name FROM Employees WHERE Age >= 40", []),
    ]


def quasi_identifiers() -> tuple[str, ...]:
    """The quasi-identifier columns used by the k-anonymity experiment."""
    return ("Age", "Dept", "ZIP")


def make_app() -> WorkloadApp:
    return WorkloadApp(
        name="employees",
        make_database=make_database,
        handlers=make_handlers(),
        ground_truth_policy=ground_truth_policy,
        request_stream=request_stream,
        attack_queries=attack_queries,
        rls_predicates={"Employees": "{T}.EId = ?MyUId"},
        default_size=40,
    )
