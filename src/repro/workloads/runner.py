"""The workload harness: apps, requests, and ways to run them.

A :class:`WorkloadApp` bundles everything experiments need about one
application: schema, data generator, DSL handlers, the hand-written
ground-truth policy, RLS predicates for the query-modification baseline,
and generators for compliant request streams and non-compliant "attack"
queries.

:class:`AppRunner` executes request streams against a connection mode
(direct / enforcement proxy / RLS / serving gateway), reusing one
connection per session user so trace history accumulates the way it
would in a real deployment. Handlers only ever see the
:class:`~repro.engine.connection.Connection` protocol, so the runner is
backend-agnostic.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.enforce.cache import DecisionCache
from repro.enforce.decision import PolicyViolation
from repro.enforce.proxy import EnforcementProxy, ProxyConfig, Session
from repro.enforce.baselines import DirectConnection, RowLevelSecurityProxy
from repro.engine.connection import Connection
from repro.engine.database import Database
from repro.extract.handlers import Handler, HandlerOutcome, run_handler
from repro.policy.policy import Policy

if TYPE_CHECKING:  # avoid a hard import cycle with repro.serve
    from repro.serve.gateway import EnforcementGateway


@dataclass(frozen=True)
class Request:
    """One application request: a handler invocation for a session."""

    handler: str
    params: dict[str, object]
    session: dict[str, object]

    def __hash__(self) -> int:  # params/session are small plain dicts
        return hash(
            (
                self.handler,
                tuple(sorted(self.params.items())),
                tuple(sorted(self.session.items())),
            )
        )


@dataclass(frozen=True)
class WorkloadApp:
    """Everything the experiments need to know about one application."""

    name: str
    #: ``(size, seed, *, backend=None, db_path=None) -> Database``; backend
    #: selection flows through keyword-only args so positional callers are
    #: unaffected.
    make_database: Callable[..., Database]
    handlers: dict[str, Handler]
    ground_truth_policy: Callable[[], Policy]
    request_stream: Callable[[Database, random.Random, int], list[Request]]
    attack_queries: Callable[[Database, object], list[tuple[str, list]]]
    rls_predicates: dict[str, str] = field(default_factory=dict)
    session_params: dict[str, str] = field(default_factory=lambda: {"user_id": "MyUId"})
    default_size: int = 20

    def session_bindings(self, session: dict[str, object]) -> dict[str, object]:
        """Map a handler session dict to policy parameter bindings."""
        return {
            param: session[attr]
            for attr, param in self.session_params.items()
            if attr in session
        }


@dataclass
class RequestOutcome:
    """The result of running one request through the harness."""

    request: Request
    outcome: HandlerOutcome | None
    blocked: bool = False
    block_reason: str = ""


class AppRunner:
    """Runs request streams against an app in a chosen connection mode."""

    def __init__(
        self,
        app: WorkloadApp,
        db: Database,
        mode: str = "direct",
        policy: Policy | None = None,
        history_enabled: bool = True,
        cache: DecisionCache | None = None,
        fresh_session_per_request: bool = False,
        gateway: "EnforcementGateway | None" = None,
    ):
        if mode not in ("direct", "proxy", "rls", "gateway"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode in ("proxy",) and policy is None:
            raise ValueError("proxy mode needs a policy")
        if mode == "gateway" and gateway is None:
            raise ValueError("gateway mode needs a gateway")
        self.app = app
        self.db = db
        self.mode = mode
        self.policy = policy
        self.history_enabled = history_enabled
        self.cache = cache
        self.fresh_session_per_request = fresh_session_per_request
        self.gateway = gateway
        self._proxies: dict[tuple, EnforcementProxy] = {}
        self._direct = DirectConnection(db)

    def connection_for(self, session: dict[str, object]) -> Connection:
        if self.mode == "direct":
            return self._direct
        bindings = self.app.session_bindings(session)
        if self.mode == "rls":
            return RowLevelSecurityProxy(self.db, self.app.rls_predicates, bindings)
        if self.mode == "gateway":
            assert self.gateway is not None
            return self.gateway.connect(
                bindings, fresh=self.fresh_session_per_request
            )
        key = tuple(sorted(bindings.items()))
        if self.fresh_session_per_request or key not in self._proxies:
            proxy = EnforcementProxy(
                self.db,
                self.policy,
                Session(bindings),
                ProxyConfig(history_enabled=self.history_enabled, cache=self.cache),
            )
            if self.fresh_session_per_request:
                return proxy
            self._proxies[key] = proxy
        return self._proxies[key]

    def proxies(self) -> list[EnforcementProxy]:
        return list(self._proxies.values())

    def run(self, request: Request) -> RequestOutcome:
        handler = self.app.handlers[request.handler]
        connection = self.connection_for(request.session)
        try:
            outcome = run_handler(handler, connection, request.params, request.session)
        except PolicyViolation as violation:
            return RequestOutcome(
                request=request,
                outcome=None,
                blocked=True,
                block_reason=str(violation),
            )
        return RequestOutcome(request=request, outcome=outcome)

    def run_all(self, requests: Sequence[Request]) -> list[RequestOutcome]:
        return [self.run(request) for request in requests]
