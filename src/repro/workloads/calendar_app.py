"""The calendar application — the paper's running example (§2.2, Ex. 2.1/3.1).

Schema: ``Users``, ``Events``, ``Attendance``. The ``show_event`` handler
is Listing 1 of the paper verbatim; the ground-truth policy contains the
paper's views V1 and V2, plus the two views the other handlers need.
"""

from __future__ import annotations

import random

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Schema,
    TableSchema,
    open_database,
)
from repro.extract.handlers import (
    Abort,
    Assign,
    FieldRef,
    ForEach,
    Handler,
    If,
    IsEmpty,
    ParamRef,
    Query,
    Return,
    SessionRef,
)
from repro.policy import Policy, View
from repro.workloads.datagen import EVENT_TITLES, LOCATIONS, pick_name, rng_of
from repro.workloads.runner import Request, WorkloadApp


def make_schema() -> Schema:
    return Schema.of(
        TableSchema(
            "Users",
            (
                Column("UId", ColumnType.INT, nullable=False),
                Column("Name", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("UId",),
        ),
        TableSchema(
            "Events",
            (
                Column("EId", ColumnType.INT, nullable=False),
                Column("Title", ColumnType.TEXT, nullable=False),
                Column("Time", ColumnType.INT, nullable=False),
                Column("Loc", ColumnType.TEXT, nullable=False),
            ),
            primary_key=("EId",),
        ),
        TableSchema(
            "Attendance",
            (
                Column("UId", ColumnType.INT, nullable=False),
                Column("EId", ColumnType.INT, nullable=False),
            ),
            primary_key=("UId", "EId"),
            foreign_keys=(
                ForeignKey("UId", "Users", "UId"),
                ForeignKey("EId", "Events", "EId"),
            ),
        ),
    )


def make_database(
    size: int = 20,
    seed: int = 7,
    *,
    backend: str | None = None,
    db_path: str | None = None,
) -> Database:
    """``size`` users, ``2*size`` events, ~3 attendances per user."""
    rng = rng_of(seed)
    db = open_database(make_schema(), backend=backend, path=db_path)
    if db.total_rows():  # a reopened durable file keeps its existing data
        return db
    users = [(uid, pick_name(rng, uid - 1)) for uid in range(1, size + 1)]
    db.insert_rows("Users", users)
    events = [
        (
            eid,
            rng.choice(EVENT_TITLES),
            900 + 50 * (eid % 10),
            rng.choice(LOCATIONS),
        )
        for eid in range(1, 2 * size + 1)
    ]
    db.insert_rows("Events", events)
    attendance = set()
    for uid, _ in users:
        for _ in range(3):
            attendance.add((uid, rng.randrange(1, 2 * size + 1)))
    db.insert_rows("Attendance", sorted(attendance))
    return db


def ground_truth_policy() -> Policy:
    schema = make_schema()
    return Policy(
        [
            View(
                "V1",
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                schema,
                "each user can see the IDs of events they attend",
            ),
            View(
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId"
                " WHERE a.UId = ?MyUId",
                schema,
                "each user can see the details of events they attend",
            ),
            View(
                "V3",
                "SELECT * FROM Users WHERE UId = ?MyUId",
                schema,
                "each user can see their own profile",
            ),
            View(
                "V4",
                "SELECT a.UId, u.Name, a.EId FROM Attendance a"
                " JOIN Users u ON u.UId = a.UId"
                " JOIN Attendance mine ON mine.EId = a.EId"
                " WHERE mine.UId = ?MyUId",
                schema,
                "each user can see who attends the events they attend",
            ),
        ],
        name="calendar-ground-truth",
    )


def make_handlers() -> dict[str, Handler]:
    show_event = Handler(
        name="show_event",
        params=("event_id",),
        body=(
            Assign(
                "check",
                Query(
                    "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
                    (SessionRef("user_id"), ParamRef("event_id")),
                ),
            ),
            If(IsEmpty("check"), then=(Abort("event not found"),)),
            Return(
                Query(
                    "SELECT * FROM Events WHERE EId = ?",
                    (ParamRef("event_id"),),
                )
            ),
        ),
    )
    my_events = Handler(
        name="my_events",
        params=(),
        body=(
            Assign(
                "mine",
                Query(
                    "SELECT EId FROM Attendance WHERE UId = ?",
                    (SessionRef("user_id"),),
                ),
            ),
            ForEach(
                "row",
                "mine",
                body=(
                    Assign(
                        "detail",
                        Query(
                            "SELECT * FROM Events WHERE EId = ?",
                            (FieldRef("row", "EId"),),
                        ),
                    ),
                ),
            ),
            Return(None),
        ),
    )
    event_attendees = Handler(
        name="event_attendees",
        params=("event_id",),
        body=(
            Assign(
                "check",
                Query(
                    "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
                    (SessionRef("user_id"), ParamRef("event_id")),
                ),
            ),
            If(IsEmpty("check"), then=(Abort("event not found"),)),
            Return(
                Query(
                    "SELECT u.UId, u.Name FROM Attendance a"
                    " JOIN Users u ON u.UId = a.UId WHERE a.EId = ?",
                    (ParamRef("event_id"),),
                )
            ),
        ),
    )
    my_profile = Handler(
        name="my_profile",
        params=(),
        body=(
            Return(
                Query(
                    "SELECT * FROM Users WHERE UId = ?",
                    (SessionRef("user_id"),),
                )
            ),
        ),
    )
    return {
        handler.name: handler
        for handler in (show_event, my_events, event_attendees, my_profile)
    }


def request_stream(db: Database, rng: random.Random, n: int) -> list[Request]:
    """A compliant request mix over the current database contents."""
    users = [row[0] for row in db.query("SELECT UId FROM Users").rows]
    attendance = db.query("SELECT UId, EId FROM Attendance").rows
    attended: dict[object, list] = {}
    for uid, eid in attendance:
        attended.setdefault(uid, []).append(eid)
    requests: list[Request] = []
    for _ in range(n):
        uid = rng.choice(users)
        session = {"user_id": uid}
        kind = rng.random()
        my_eids = attended.get(uid, [])
        if kind < 0.45 and my_eids:
            requests.append(
                Request("show_event", {"event_id": rng.choice(my_eids)}, session)
            )
        elif kind < 0.60:
            # A 404 path: an event the user (probably) does not attend.
            eid = rng.randrange(1, 2 * len(users) + 1)
            requests.append(Request("show_event", {"event_id": eid}, session))
        elif kind < 0.80:
            requests.append(Request("my_events", {}, session))
        elif kind < 0.90 and my_eids:
            requests.append(
                Request("event_attendees", {"event_id": rng.choice(my_eids)}, session)
            )
        else:
            requests.append(Request("my_profile", {}, session))
    return requests


def attack_queries(db: Database, user_id: object) -> list[tuple[str, list]]:
    """Non-compliant probes the proxy must block for ``user_id``."""
    other = (user_id % db.row_count("Users")) + 1 if isinstance(user_id, int) else 1
    unattended = _unattended_event(db, user_id)
    probes = [
        ("SELECT * FROM Events", []),
        ("SELECT Name FROM Users", []),
        ("SELECT EId FROM Attendance WHERE UId = ?", [other]),
        ("SELECT UId, EId FROM Attendance", []),
    ]
    if unattended is not None:
        probes.append(("SELECT * FROM Events WHERE EId = ?", [unattended]))
    return probes


def _unattended_event(db: Database, user_id: object) -> object | None:
    attended = {
        row[0]
        for row in db.query(
            "SELECT EId FROM Attendance WHERE UId = ?", [user_id]
        ).rows
    }
    for (eid,) in db.query("SELECT EId FROM Events").rows:
        if eid not in attended:
            return eid
    return None


def make_app() -> WorkloadApp:
    return WorkloadApp(
        name="calendar",
        make_database=make_database,
        handlers=make_handlers(),
        ground_truth_policy=ground_truth_policy,
        request_stream=request_stream,
        attack_queries=attack_queries,
        rls_predicates={
            "Attendance": "{T}.UId = ?MyUId",
            "Users": "{T}.UId = ?MyUId",
            "Events": (
                "EXISTS (SELECT 1 FROM Attendance rls"
                " WHERE rls.EId = {T}.EId AND rls.UId = ?MyUId)"
            ),
        },
        default_size=20,
    )
