"""dbac — Access Control for Database Applications, Beyond Policy Enforcement.

A full reproduction of the HotOS '23 paper by Zhang, Panda, and Shenker:
a Blockaid-style view-based enforcement proxy (§2.2) plus working
implementations of the paper's three "beyond enforcement" proposals —
policy extraction (§3), prior-agnostic policy evaluation (§4), and
violation diagnosis (§5) — over an in-memory relational engine and a
from-scratch conjunctive-query reasoning stack.

Quickstart::

    from repro import Database, EnforcementProxy, Policy, Session, View
    from repro.workloads import calendar_app

    db = calendar_app.make_database(size=20, seed=7)
    policy = calendar_app.ground_truth_policy()
    proxy = EnforcementProxy(db, policy, Session.for_user(1))
    proxy.query("SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?", [1, 2])
    proxy.query("SELECT * FROM Events WHERE EId = ?", [2])  # allowed via history

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment results.
"""

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Result,
    Schema,
    TableSchema,
    available_backends,
    open_database,
)
from repro.enforce import (
    ComplianceChecker,
    Decision,
    DecisionCache,
    DirectConnection,
    EnforcementProxy,
    PolicyViolation,
    ProxyConfig,
    RowLevelSecurityProxy,
    Session,
    Trace,
)
from repro.policy import Policy, View, compare_policies, policy_from_text, policy_to_text
from repro.util.errors import DbacError

__version__ = "0.1.0"

__all__ = [
    "Column",
    "ColumnType",
    "ComplianceChecker",
    "Database",
    "DbacError",
    "Decision",
    "DecisionCache",
    "DirectConnection",
    "EnforcementProxy",
    "ForeignKey",
    "Policy",
    "PolicyViolation",
    "ProxyConfig",
    "Result",
    "RowLevelSecurityProxy",
    "Schema",
    "Session",
    "TableSchema",
    "Trace",
    "View",
    "available_backends",
    "compare_policies",
    "open_database",
    "policy_from_text",
    "policy_to_text",
    "__version__",
]
