"""Query skeletons: a statement with its constants hollowed out.

A *skeleton* is the statement with every literal replaced by a numbered
slot (represented as a positional :class:`~repro.sqlir.ast.Param`), plus
the list of extracted values. Two queries with the same skeleton differ
only in constants — the equivalence the decision cache (Blockaid-style
decision templates) and the trace miner both key on.

``generalizable`` marks the slots whose literal occurs only in equality
position (``=``, ``<>``, ``IN``): those may be abstracted over; a literal
under an order comparison pins the decision to its exact value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlir import ast


@dataclass(frozen=True)
class Skeleton:
    """A hollowed-out statement plus the constants that filled it."""

    statement: ast.Statement
    values: tuple[object, ...]
    generalizable: tuple[bool, ...]

    @property
    def slot_count(self) -> int:
        return len(self.values)


def skeletonize(stmt: ast.Statement) -> Skeleton:
    """Extract the skeleton of a bound statement.

    Literal booleans and NULL are left in place (they are structural, not
    data); ints, floats, and strings become slots.
    """
    values: list[object] = []
    generalizable: list[bool] = []

    def hollow(expr: ast.Expr, equality_position: bool) -> ast.Expr:
        if isinstance(expr, ast.Literal):
            if expr.value is None or isinstance(expr.value, bool):
                return expr
            values.append(expr.value)
            generalizable.append(equality_position)
            return ast.Param(index=len(values) - 1)
        if isinstance(expr, ast.Comparison):
            equality = expr.op in ("=", "<>")
            return ast.Comparison(
                expr.op, hollow(expr.left, equality), hollow(expr.right, equality)
            )
        if isinstance(expr, ast.BoolOp):
            return ast.BoolOp(expr.op, tuple(hollow(o, False) for o in expr.operands))
        if isinstance(expr, ast.Not):
            return ast.Not(hollow(expr.operand, False))
        if isinstance(expr, ast.InList):
            return ast.InList(
                hollow(expr.expr, False),
                tuple(hollow(item, True) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(hollow(expr.expr, False), expr.negated)
        if isinstance(expr, ast.Arith):
            return ast.Arith(expr.op, hollow(expr.left, False), hollow(expr.right, False))
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name, tuple(hollow(a, False) for a in expr.args), expr.distinct
            )
        return expr

    def hollow_statement(statement: ast.Statement) -> ast.Statement:
        if isinstance(statement, ast.Select):
            return ast.Select(
                items=tuple(
                    ast.SelectItem(hollow(i.expr, False), i.alias)
                    for i in statement.items
                ),
                sources=statement.sources,
                joins=tuple(
                    ast.JoinClause(j.table, hollow(j.on, False), j.kind)
                    for j in statement.joins
                ),
                where=(
                    hollow(statement.where, False)
                    if statement.where is not None
                    else None
                ),
                order_by=tuple(
                    ast.OrderItem(hollow(o.expr, False), o.descending)
                    for o in statement.order_by
                ),
                limit=statement.limit,
                distinct=statement.distinct,
            )
        if isinstance(statement, ast.Insert):
            return ast.Insert(
                table=statement.table,
                columns=statement.columns,
                rows=tuple(
                    tuple(hollow(e, True) for e in row) for row in statement.rows
                ),
            )
        if isinstance(statement, ast.Update):
            return ast.Update(
                table=statement.table,
                assignments=tuple(
                    (c, hollow(e, True)) for c, e in statement.assignments
                ),
                where=(
                    hollow(statement.where, False)
                    if statement.where is not None
                    else None
                ),
            )
        if isinstance(statement, ast.Delete):
            return ast.Delete(
                table=statement.table,
                where=(
                    hollow(statement.where, False)
                    if statement.where is not None
                    else None
                ),
            )
        return statement

    hollowed = hollow_statement(stmt)
    return Skeleton(
        statement=hollowed,
        values=tuple(values),
        generalizable=tuple(generalizable),
    )


def fill(skeleton: Skeleton, values: tuple[object, ...]) -> ast.Statement:
    """Re-instantiate a skeleton with new slot values."""
    from repro.sqlir.params import bind_parameters

    return bind_parameters(skeleton.statement, list(values))
