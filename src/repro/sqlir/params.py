"""Parameter handling: discovery and binding.

Queries carry positional (``?``) and named (``?MyUId``) parameters.
Binding replaces each :class:`~repro.sqlir.ast.Param` with a
:class:`~repro.sqlir.ast.Literal`, producing a fully ground statement that
both the engine and the reasoning layer can consume.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.sqlir import ast
from repro.util.errors import DbacError


def collect_parameters(stmt: ast.Statement) -> tuple[list[int], list[str]]:
    """Return (sorted positional indexes, named parameter names in order).

    Named parameters are de-duplicated but keep first-appearance order.
    """
    positional: set[int] = set()
    named: list[str] = []
    seen_names: set[str] = set()
    for expr in ast.statement_expressions(stmt):
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Param):
                if node.name is not None:
                    if node.name not in seen_names:
                        seen_names.add(node.name)
                        named.append(node.name)
                elif node.index is not None:
                    positional.add(node.index)
    return sorted(positional), named


def bind_parameters(
    stmt: ast.Statement,
    args: Sequence[object] = (),
    named: Mapping[str, object] | None = None,
) -> ast.Statement:
    """Substitute literals for every parameter in ``stmt``.

    ``args`` supplies positional parameters by index; ``named`` supplies
    named parameters. Raises :class:`DbacError` on a missing binding — a
    partially bound query must never reach the engine or the checker.
    """
    named = named or {}

    def replace(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Exists):
            bound_sub = bind_parameters(node.query, args, named)
            assert isinstance(bound_sub, ast.Select)
            return ast.Exists(bound_sub)
        if not isinstance(node, ast.Param):
            return node
        if node.name is not None:
            if node.name not in named:
                raise DbacError(f"missing binding for named parameter ?{node.name}")
            return ast.Literal(_check_value(named[node.name]))
        assert node.index is not None
        if node.index >= len(args):
            raise DbacError(
                f"missing binding for positional parameter #{node.index}"
                f" (got {len(args)} arguments)"
            )
        return ast.Literal(_check_value(args[node.index]))

    return ast.map_statement(stmt, replace)


def _check_value(value: object) -> int | float | str | bool | None:
    if value is None or isinstance(value, int | float | str | bool):
        return value
    raise DbacError(f"unsupported parameter value type: {type(value).__name__}")
