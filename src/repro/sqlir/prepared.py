"""Prepared statements: pay the per-shape analysis once, not per request.

The enforcement hot path repeats three pieces of pure shape work on
every request: parsing the SQL text, :func:`~repro.sqlir.skeleton.skeletonize`
over the bound statement, and laying out the equality partition the
decision cache keys on. For an application that issues the same
statement shapes forever (the Blockaid setting), all three are a
per-*shape* cost being paid per *request*.

:func:`prepare_plan` hoists them: it probes the parsed statement once
with sentinel parameter values, skeletonizes the probe, and records for
every skeleton slot where its value comes from at execution time —
a statement constant, a positional argument, or a named argument. From
then on :meth:`PreparedPlan.skeleton_for` rebuilds the exact
:class:`~repro.sqlir.skeleton.Skeleton` the classic path would compute,
with a handful of list appends instead of an AST traversal.

Why sentinel probing is sound: the probe values are strings containing a
NUL byte under a reserved prefix, which no SQL literal can contain (the
lexer rejects raw NUL) and no application binding plausibly equals — so
a sentinel found in a slot identifies the parameter that produced it,
and a sentinel surviving *inline* in the probe skeleton proves a
parameter landed somewhere ``skeletonize`` does not hollow (e.g. inside
an ``EXISTS`` subquery, which skeletonization deliberately leaves
intact). Such plans are marked non-static and always fall back to the
classic skeletonize-per-request path; the decisions stay identical, only
the shortcut is disabled.

Two per-execution escape hatches keep the fast path exact:

* a ``bool``/``None`` argument value would *change the skeleton shape*
  (skeletonize leaves those inline as structural literals), so
  :meth:`PreparedPlan.skeleton_for` returns ``None`` and the caller
  falls back to classic skeletonization for that execution;
* missing bindings return ``None`` too — :func:`bind_parameters` then
  raises the usual descriptive error on the classic path.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.sqlir import ast
from repro.sqlir.params import bind_parameters, collect_parameters
from repro.sqlir.skeleton import Skeleton, skeletonize

#: Reserved probe-value prefix; the NUL byte never survives the SQL
#: lexer, so no statement constant can collide with a sentinel.
_SENTINEL = "\x00repro-prepared\x00"

# A slot source: ("const", value) | ("arg", index) | ("named", name).
_SlotSource = tuple[str, object]


def _arg_sentinel(index: int) -> str:
    return f"{_SENTINEL}a{index}"


def _named_sentinel(name: str) -> str:
    return f"{_SENTINEL}n{name}"


@dataclass(frozen=True)
class PreparedPlan:
    """One statement's hoisted shape work (parse + skeleton + layout).

    Immutable and session-free: a plan may be shared by any number of
    sessions (the wire server keeps one per connection handle, but the
    underlying plan for the same SQL text is interchangeable). The plan
    never caches *decisions* — those stay in the epoch-scoped decision
    caches, so policy reloads invalidate decisions without touching
    plans.
    """

    statement: ast.Statement  #: the parsed, unbound statement
    sql: str  #: the original SQL text (for re-prepare and diagnostics)
    is_select: bool
    #: True when the skeleton *shape* is independent of the argument
    #: values — every parameter lands in a hollowed slot. Non-static
    #: plans (a parameter inside EXISTS) always use the classic path.
    static: bool
    skeleton_statement: ast.Statement | None
    generalizable: tuple[bool, ...]
    slot_sources: tuple[_SlotSource, ...]
    positional: tuple[int, ...]  #: positional parameter indexes present
    named_params: tuple[str, ...]  #: named parameter names present

    def bind(
        self,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> ast.Statement:
        """Ground the statement for execution (the engine needs the AST)."""
        return bind_parameters(self.statement, args, named)

    def skeleton_for(
        self,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Skeleton | None:
        """The skeleton this execution's bound statement would produce.

        Returns ``None`` when the fast path cannot serve this execution
        (non-static plan, a bool/None argument, or a missing binding);
        the caller must then skeletonize the bound statement classically.
        Otherwise the result is byte-identical to
        ``skeletonize(self.bind(args, named))``.
        """
        if not self.static or self.skeleton_statement is None:
            return None
        values: list[object] = []
        for kind, ref in self.slot_sources:
            if kind == "const":
                values.append(ref)
                continue
            if kind == "arg":
                index = ref
                if not isinstance(index, int) or index >= len(args):
                    return None
                value = args[index]
            else:  # "named"
                if named is None or ref not in named:
                    return None
                value = named[ref]  # type: ignore[index]
            if value is None or isinstance(value, bool):
                # Structural literal: skeletonize would leave it inline,
                # changing the skeleton shape — classic path required.
                return None
            values.append(value)
        return Skeleton(
            statement=self.skeleton_statement,
            values=tuple(values),
            generalizable=self.generalizable,
        )


def prepare_plan(stmt: ast.Statement, sql: str) -> PreparedPlan:
    """Build a :class:`PreparedPlan` for an already-parsed statement.

    Non-SELECT statements get a parse-skip-only plan (writes are not
    decided, so they need no skeleton).
    """
    positional, named_params = collect_parameters(stmt)
    if not isinstance(stmt, ast.Select):
        return PreparedPlan(
            statement=stmt,
            sql=sql,
            is_select=False,
            static=False,
            skeleton_statement=None,
            generalizable=(),
            slot_sources=(),
            positional=tuple(positional),
            named_params=tuple(named_params),
        )
    probe_args = [_arg_sentinel(i) for i in range(max(positional, default=-1) + 1)]
    probe_named = {name: _named_sentinel(name) for name in named_params}
    probe = bind_parameters(stmt, probe_args, probe_named)
    skeleton = skeletonize(probe)
    by_sentinel: dict[str, _SlotSource] = {
        sentinel: ("arg", index) for index, sentinel in enumerate(probe_args)
    }
    for name in named_params:
        by_sentinel[_named_sentinel(name)] = ("named", name)
    sources: list[_SlotSource] = []
    for value in skeleton.values:
        if isinstance(value, str) and value.startswith(_SENTINEL):
            sources.append(by_sentinel[value])
        else:
            sources.append(("const", value))
    return PreparedPlan(
        statement=stmt,
        sql=sql,
        is_select=True,
        static=not _contains_sentinel(skeleton.statement),
        skeleton_statement=skeleton.statement,
        generalizable=skeleton.generalizable,
        slot_sources=tuple(sources),
        positional=tuple(positional),
        named_params=tuple(named_params),
    )


def _contains_sentinel(stmt: ast.Statement) -> bool:
    """A probe sentinel left *inline* in the skeleton means a parameter
    landed where skeletonize does not hollow; the shape then depends on
    the argument values and the plan must not claim a static skeleton."""
    for expr in ast.statement_expressions(stmt):
        for node in ast.walk_expr(expr):
            if (
                isinstance(node, ast.Literal)
                and isinstance(node.value, str)
                and node.value.startswith(_SENTINEL)
            ):
                return True
    return False
