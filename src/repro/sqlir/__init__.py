"""SQL front end: lexer, typed AST, recursive-descent parser, printer.

The dialect is the SELECT/INSERT/UPDATE/DELETE subset that the paper's
examples (and the Blockaid setting it builds on) live in:

* ``SELECT [DISTINCT] items FROM t [alias] [JOIN u ON ...] [WHERE ...]
  [ORDER BY ...] [LIMIT n]``
* ``WHERE`` supports ``AND``/``OR``/``NOT``, the six comparison operators,
  ``IN (literal, ...)``, ``IS [NOT] NULL``, and parameters.
* Parameters are positional ``?`` or named ``?MyUId`` (the view-parameter
  syntax used throughout the paper).

Entry points: :func:`parse_sql` for a single statement and
:func:`to_sql` to print any AST node back to canonical text.
"""

from repro.sqlir.ast import (
    Arith,
    BoolOp,
    Column,
    Comparison,
    CreateTable,
    Delete,
    FuncCall,
    Insert,
    InList,
    IsNull,
    JoinClause,
    Literal,
    Not,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    Update,
)
from repro.sqlir.parser import parse_expression, parse_sql
from repro.sqlir.printer import to_sql
from repro.sqlir.params import bind_parameters, collect_parameters

__all__ = [
    "Arith",
    "BoolOp",
    "Column",
    "Comparison",
    "CreateTable",
    "Delete",
    "FuncCall",
    "InList",
    "Insert",
    "IsNull",
    "JoinClause",
    "Literal",
    "Not",
    "OrderItem",
    "Param",
    "Select",
    "SelectItem",
    "Star",
    "Statement",
    "TableRef",
    "Update",
    "bind_parameters",
    "collect_parameters",
    "parse_expression",
    "parse_sql",
    "to_sql",
]
