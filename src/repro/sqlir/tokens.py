"""Lexer for the dbac SQL dialect.

Produces a flat list of :class:`Token` objects. Keywords are
case-insensitive and normalized to upper case; identifiers keep their
original spelling. Parameters come in two forms: positional ``?`` and named
``?MyUId`` (the paper's view-parameter syntax).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ParseError

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "ON",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "ORDER",
        "BY",
        "GROUP",
        "HAVING",
        "ASC",
        "DESC",
        "LIMIT",
        "AS",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "CREATE",
        "TABLE",
        "PRIMARY",
        "KEY",
        "REFERENCES",
        "UNIQUE",
        "INTEGER",
        "INT",
        "TEXT",
        "VARCHAR",
        "REAL",
        "FLOAT",
        "BOOLEAN",
        "COUNT",
        "EXISTS",
        "BETWEEN",
    }
)

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
PARAM = "PARAM"  # value: None for positional, or the name for ?Name
OP = "OP"
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPS = "=<>+-*/(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind``, normalized ``value``, source ``pos``."""

    kind: str
    value: object
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind == OP and self.value == op


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens, ending with an EOF token.

    Raises :class:`ParseError` on characters outside the dialect or on an
    unterminated string literal.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            text, i = _lex_string(sql, i)
            tokens.append(Token(STRING, text, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _lex_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch == "?":
            start = i
            i += 1
            name_start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            name = sql[name_start:i] or None
            tokens.append(Token(PARAM, name, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, "<>" if two == "!=" else two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i, sql=sql)
    tokens.append(Token(EOF, None, n))
    return tokens


def _lex_string(sql: str, start: int) -> tuple[str, int]:
    """Lex a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start, sql=sql)


def _lex_number(sql: str, start: int) -> tuple[int | float, int]:
    """Lex an integer or decimal number starting at ``start``."""
    i = start
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            # A trailing dot followed by a non-digit belongs to the next token.
            if i + 1 >= n or not sql[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    text = sql[start:i]
    return (float(text) if seen_dot else int(text)), i
