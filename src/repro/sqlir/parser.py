"""Recursive-descent parser for the dbac SQL dialect.

The grammar is small enough that a hand-written parser stays readable and
produces precise error positions. Positional ``?`` parameters are numbered
left-to-right as they are encountered.
"""

from __future__ import annotations

from repro.sqlir import ast
from repro.sqlir.tokens import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    STRING,
    Token,
    tokenize,
)
from repro.util.errors import ParseError, UnsupportedSqlError

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_counter = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.fail(f"expected {word}")

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            self.fail(f"expected {op!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == IDENT:
            self.advance()
            return str(token.value)
        # Allow non-reserved keywords (type names etc.) as identifiers where
        # unambiguous — keeps column names like "Key" usable.
        if token.kind == KEYWORD and token.value in (
            "KEY",
            "COUNT",
            "TEXT",
            "INT",
            "INTEGER",
            "REAL",
            "FLOAT",
            "BOOLEAN",
            "TIME",
        ):
            self.advance()
            return str(token.value)
        self.fail("expected identifier")
        raise AssertionError  # unreachable; fail() raises

    def fail(self, message: str) -> None:
        token = self.peek()
        raise ParseError(
            f"{message}, got {token.value!r}", position=token.pos, sql=self.sql
        )

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("SELECT"):
            stmt: ast.Statement = self.parse_select()
        elif token.is_keyword("INSERT"):
            stmt = self.parse_insert()
        elif token.is_keyword("UPDATE"):
            stmt = self.parse_update()
        elif token.is_keyword("DELETE"):
            stmt = self.parse_delete()
        elif token.is_keyword("CREATE"):
            stmt = self.parse_create_table()
        else:
            self.fail("expected a statement")
            raise AssertionError
        self.accept_op(";")
        if self.peek().kind != EOF:
            self.fail("unexpected trailing input")
        return stmt

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        sources = [self.parse_table_ref()]
        while self.accept_op(","):
            sources.append(self.parse_table_ref())
        joins: list[ast.JoinClause] = []
        while True:
            kind = None
            if self.peek().is_keyword("JOIN"):
                kind = "INNER"
                self.advance()
            elif self.peek().is_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.peek().is_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            if kind is None:
                break
            table = self.parse_table_ref()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            joins.append(ast.JoinClause(table=table, on=condition, kind=kind))
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list[ast.Expr] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.kind != NUMBER or not isinstance(token.value, int):
                self.fail("expected integer LIMIT")
            self.advance()
            limit = int(token.value)  # type: ignore[arg-type]
        return ast.Select(
            items=tuple(items),
            sources=tuple(sources),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.peek().is_op("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # alias.* — identifier followed by ".*"
        if (
            self.peek().kind == IDENT
            and self.peek(1).is_op(".")
            and self.peek(2).is_op("*")
        ):
            table = self.expect_ident()
            self.advance()  # "."
            self.advance()  # "*"
            return ast.SelectItem(ast.Star(table=table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.TableRef.of(name, alias)

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns = None
        if self.accept_op("("):
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_op(","):
            rows.append(self.parse_value_row())
        return ast.Insert(
            table=table,
            columns=tuple(columns) if columns is not None else None,
            rows=tuple(rows),
        )

    def parse_value_row(self) -> tuple[ast.Expr, ...]:
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.accept_op(","):
            values.append(self.parse_expr())
        self.expect_op(")")
        return tuple(values)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_op(","):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_ident()
        self.expect_op("=")
        return column, self.parse_expr()

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table=table, where=where)

    def parse_create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_op("(")
        columns = [self.parse_column_def()]
        while self.accept_op(","):
            columns.append(self.parse_column_def())
        self.expect_op(")")
        return ast.CreateTable(name=name, columns=tuple(columns))

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        token = self.peek()
        if token.kind != KEYWORD or token.value not in (
            "INTEGER",
            "INT",
            "TEXT",
            "VARCHAR",
            "REAL",
            "FLOAT",
            "BOOLEAN",
        ):
            self.fail("expected a column type")
        self.advance()
        type_name = str(token.value)
        nullable = True
        primary_key = False
        references = None
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect_ident()
                self.expect_op("(")
                ref_column = self.expect_ident()
                self.expect_op(")")
                references = (ref_table, ref_column)
            else:
                break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            nullable=nullable,
            primary_key=primary_key,
            references=references,
        )

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp("OR", tuple(self._flatten("OR", operands)))

    def parse_and(self) -> ast.Expr:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp("AND", tuple(self._flatten("AND", operands)))

    @staticmethod
    def _flatten(op: str, operands: list[ast.Expr]) -> list[ast.Expr]:
        flat: list[ast.Expr] = []
        for operand in operands:
            if isinstance(operand, ast.BoolOp) and operand.op == op:
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        return flat

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        if self.peek().is_keyword("EXISTS"):
            self.advance()
            self.expect_op("(")
            subquery = self.parse_select()
            self.expect_op(")")
            return ast.Exists(subquery)
        left = self.parse_additive()
        token = self.peek()
        if token.kind == OP and token.value in _COMPARISON_OPS:
            self.advance()
            right = self.parse_additive()
            return ast.Comparison(str(token.value), left, right)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.BoolOp(
                "AND",
                (ast.Comparison(">=", left, low), ast.Comparison("<=", left, high)),
            )
        negated = False
        if token.is_keyword("NOT"):
            nxt = self.peek(1)
            if nxt.is_keyword("IN"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("IN"):
            self.advance()
            self.expect_op("(")
            items = [self.parse_additive()]
            while self.accept_op(","):
                items.append(self.parse_additive())
            self.expect_op(")")
            return ast.InList(left, tuple(items), negated)
        if token.is_keyword("IS"):
            self.advance()
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_not)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("+", "-"):
                self.advance()
                left = ast.Arith(str(token.value), left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("*", "/"):
                self.advance()
                left = ast.Arith(str(token.value), left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(token.value)  # type: ignore[arg-type]
        if token.kind == STRING:
            self.advance()
            return ast.Literal(str(token.value))
        if token.kind == PARAM:
            self.advance()
            if token.value is None:
                param = ast.Param(index=self.param_counter)
                self.param_counter += 1
                return param
            return ast.Param(name=str(token.value))
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_op("-"):
            self.advance()
            inner = self.parse_primary()
            if isinstance(inner, ast.Literal) and isinstance(inner.value, int | float):
                return ast.Literal(-inner.value)
            return ast.Arith("-", ast.Literal(0), inner)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.is_keyword("COUNT"):
            self.advance()
            self.expect_op("(")
            distinct = self.accept_keyword("DISTINCT")
            if self.accept_op("*"):
                args: tuple[ast.Expr, ...] = (ast.Star(),)
            else:
                args = (self.parse_expr(),)
            self.expect_op(")")
            return ast.FuncCall("COUNT", args, distinct)
        if token.kind == IDENT:
            name = self.expect_ident()
            if self.peek().is_op("(") and name.upper() in (
                "SUM",
                "MIN",
                "MAX",
                "AVG",
            ):
                self.advance()
                distinct = self.accept_keyword("DISTINCT")
                argument = self.parse_expr()
                self.expect_op(")")
                return ast.FuncCall(name.upper(), (argument,), distinct)
            if self.accept_op("."):
                column = self.expect_ident()
                return ast.Column(table=name, name=column)
            return ast.Column(table=None, name=name)
        self.fail("expected an expression")
        raise AssertionError


def parse_sql(sql: str) -> ast.Statement:
    """Parse one SQL statement into the typed AST.

    Raises :class:`ParseError` on malformed input.
    """
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and patch rendering)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if parser.peek().kind != EOF:
        parser.fail("unexpected trailing input")
    return expr


def parse_select(sql: str) -> ast.Select:
    """Parse SQL that must be a SELECT; raises otherwise."""
    stmt = parse_sql(sql)
    if not isinstance(stmt, ast.Select):
        raise UnsupportedSqlError(f"expected a SELECT statement: {sql!r}")
    return stmt
