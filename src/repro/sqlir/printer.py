"""Render AST nodes back to canonical SQL text.

The printer is the inverse of the parser up to normalization: keywords are
upper-cased, redundant parentheses dropped, and table aliases printed only
when they differ from the table name. ``parse_sql(to_sql(x))`` equals ``x``
for every statement the parser accepts (a property test asserts this).
"""

from __future__ import annotations

from repro.sqlir import ast
from repro.util.errors import DbacError
from repro.util.text import comma_join, sql_quote

_PRECEDENCE_PARENS = (ast.BoolOp, ast.Not)


def to_sql(node: object) -> str:
    """Render a statement or expression AST node to SQL text."""
    if isinstance(node, ast.Statement):
        return _statement_to_sql(node)
    if isinstance(node, ast.Expr):
        return expr_to_sql(node)
    raise DbacError(f"cannot print object of type {type(node).__name__}")


def _statement_to_sql(stmt: ast.Statement) -> str:
    if isinstance(stmt, ast.Select):
        return _select_to_sql(stmt)
    if isinstance(stmt, ast.Insert):
        return _insert_to_sql(stmt)
    if isinstance(stmt, ast.Update):
        return _update_to_sql(stmt)
    if isinstance(stmt, ast.Delete):
        return _delete_to_sql(stmt)
    if isinstance(stmt, ast.CreateTable):
        return _create_to_sql(stmt)
    raise DbacError(f"cannot print statement of type {type(stmt).__name__}")


def _select_to_sql(stmt: ast.Select) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(comma_join(_select_item_to_sql(item) for item in stmt.items))
    parts.append("FROM")
    parts.append(comma_join(_table_ref_to_sql(src) for src in stmt.sources))
    for join in stmt.joins:
        keyword = "JOIN" if join.kind == "INNER" else "LEFT JOIN"
        parts.append(f"{keyword} {_table_ref_to_sql(join.table)} ON {expr_to_sql(join.on)}")
    if stmt.where is not None:
        parts.append(f"WHERE {expr_to_sql(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + comma_join(expr_to_sql(k) for k in stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {expr_to_sql(stmt.having)}")
    if stmt.order_by:
        keys = comma_join(
            expr_to_sql(o.expr) + (" DESC" if o.descending else "") for o in stmt.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)


def _select_item_to_sql(item: ast.SelectItem) -> str:
    text = expr_to_sql(item.expr)
    if item.alias is not None:
        return f"{text} AS {item.alias}"
    return text


def _table_ref_to_sql(ref: ast.TableRef) -> str:
    if ref.alias != ref.name:
        return f"{ref.name} {ref.alias}"
    return ref.name


def _insert_to_sql(stmt: ast.Insert) -> str:
    columns = f" ({comma_join(stmt.columns)})" if stmt.columns is not None else ""
    rows = comma_join(
        "(" + comma_join(expr_to_sql(v) for v in row) + ")" for row in stmt.rows
    )
    return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"


def _update_to_sql(stmt: ast.Update) -> str:
    sets = comma_join(f"{col} = {expr_to_sql(e)}" for col, e in stmt.assignments)
    where = f" WHERE {expr_to_sql(stmt.where)}" if stmt.where is not None else ""
    return f"UPDATE {stmt.table} SET {sets}{where}"


def _delete_to_sql(stmt: ast.Delete) -> str:
    where = f" WHERE {expr_to_sql(stmt.where)}" if stmt.where is not None else ""
    return f"DELETE FROM {stmt.table}{where}"


def _create_to_sql(stmt: ast.CreateTable) -> str:
    defs = []
    for col in stmt.columns:
        pieces = [col.name, col.type_name]
        if col.primary_key:
            pieces.append("PRIMARY KEY")
        elif not col.nullable:
            pieces.append("NOT NULL")
        if col.references is not None:
            table, column = col.references
            pieces.append(f"REFERENCES {table} ({column})")
        defs.append(" ".join(pieces))
    return f"CREATE TABLE {stmt.name} ({comma_join(defs)})"


def expr_to_sql(expr: ast.Expr) -> str:
    """Render an expression node to SQL text."""
    if isinstance(expr, ast.Literal):
        return sql_quote(expr.value)
    if isinstance(expr, ast.Column):
        if expr.table is not None:
            return f"{expr.table}.{expr.name}"
        return expr.name
    if isinstance(expr, ast.Param):
        return f"?{expr.name}" if expr.name is not None else "?"
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table is not None else "*"
    if isinstance(expr, ast.Comparison):
        return f"{_operand(expr.left)} {expr.op} {_operand(expr.right)}"
    if isinstance(expr, ast.Arith):
        return f"{_operand(expr.left)} {expr.op} {_operand(expr.right)}"
    if isinstance(expr, ast.BoolOp):
        joiner = f" {expr.op} "
        return joiner.join(_bool_operand(op, expr.op) for op in expr.operands)
    if isinstance(expr, ast.Not):
        return f"NOT {_bool_operand(expr.operand, 'NOT')}"
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        items = comma_join(expr_to_sql(item) for item in expr.items)
        return f"{_operand(expr.expr)} {keyword} ({items})"
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_operand(expr.expr)} {keyword}"
    if isinstance(expr, ast.FuncCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = comma_join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.Exists):
        return f"EXISTS ({_select_to_sql(expr.query)})"
    raise DbacError(f"cannot print expression of type {type(expr).__name__}")


def _operand(expr: ast.Expr) -> str:
    """Print a comparison/arithmetic operand, parenthesizing compound ones."""
    text = expr_to_sql(expr)
    if isinstance(expr, ast.Arith | ast.BoolOp | ast.Not):
        return f"({text})"
    return text


def _bool_operand(expr: ast.Expr, context_op: str) -> str:
    """Print an AND/OR operand; ORs nested under AND/NOT get parentheses."""
    text = expr_to_sql(expr)
    if isinstance(expr, ast.BoolOp) and expr.op != context_op:
        return f"({text})"
    if context_op == "NOT" and isinstance(expr, _PRECEDENCE_PARENS):
        return f"({text})"
    return text
