"""Typed AST for the dbac SQL dialect.

All nodes are frozen dataclasses so they can be hashed, compared, and used
as dictionary keys (the decision cache relies on this). Expression trees
use tuples, never lists, for the same reason.

The AST is deliberately small: it covers the SELECT-project-join fragment
with AND/OR/NOT predicates that the paper's reasoning machinery operates
on, plus the DML statements the workload applications need. Features the
engine can run but the reasoning layer cannot represent (aggregates, LEFT
JOIN) are still parsed; the translation layer rejects them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Column(Expr):
    """A column reference, optionally qualified: ``e.EId`` or ``EId``."""

    table: str | None
    name: str


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, or None (SQL NULL)."""

    value: int | float | str | bool | None


@dataclass(frozen=True)
class Param(Expr):
    """A query parameter.

    ``name`` is set for named parameters (``?MyUId``); ``index`` is set for
    positional ones (``?``), assigned left-to-right by the parser.
    """

    index: int | None = None
    name: str | None = None

    def label(self) -> str:
        return self.name if self.name is not None else f"${self.index}"


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison; ``op`` is one of ``= <> < <= > >=``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """An AND/OR over two or more operands (flattened by the parser)."""

    op: str  # "AND" | "OR"
    operands: tuple[Expr, ...]


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)`` with literal/parameter items."""

    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Arith(Expr):
    """Arithmetic ``+ - * /`` — executable, but outside the CQ fragment."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; only ``COUNT`` is recognized by the executor."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list (or inside COUNT)."""

    table: str | None = None


@dataclass(frozen=True)
class Exists(Expr):
    """``EXISTS (SELECT ...)`` — a correlated subquery predicate.

    Executable by the engine (the RLS baseline's predicates need it) but
    outside the CQ reasoning fragment: the translator rejects it, so the
    enforcement proxy conservatively blocks application queries using it.
    """

    query: "Select"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Statement:
    """Marker base class for statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause with its effective alias.

    ``alias`` is always populated — it defaults to the table name — so the
    rest of the pipeline never needs the "no alias" case.
    """

    name: str
    alias: str

    @staticmethod
    def of(name: str, alias: str | None = None) -> "TableRef":
        return TableRef(name=name, alias=alias or name)


@dataclass(frozen=True)
class JoinClause:
    """An explicit JOIN: the joined table, the ON condition, and the kind."""

    table: TableRef
    on: Expr
    kind: str = "INNER"  # "INNER" | "LEFT"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement.

    ``sources`` holds the comma-separated FROM tables; ``joins`` holds the
    explicit JOIN clauses applied left-to-right after the sources.
    """

    items: tuple[SelectItem, ...]
    sources: tuple[TableRef, ...]
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def tables(self) -> tuple[TableRef, ...]:
        """All table references, FROM sources first then JOINed tables."""
        return self.sources + tuple(join.table for join in self.joins)


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES (row), (row), ...``."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False
    references: tuple[str, str] | None = None  # (table, column)


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name (coldefs...)``."""

    name: str
    columns: tuple[ColumnDef, ...] = field(default_factory=tuple)


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Comparison | Arith):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, BoolOp):
        for operand in expr.operands:
            yield from walk_expr(operand)
    elif isinstance(expr, Not):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.expr)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, IsNull):
        yield from walk_expr(expr.expr)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Exists):
        for sub in statement_expressions(expr.query):
            yield from walk_expr(sub)


def statement_expressions(stmt: Statement):
    """Yield every top-level expression appearing in ``stmt``."""
    if isinstance(stmt, Select):
        for item in stmt.items:
            yield item.expr
        for join in stmt.joins:
            yield join.on
        if stmt.where is not None:
            yield stmt.where
        for key in stmt.group_by:
            yield key
        if stmt.having is not None:
            yield stmt.having
        for order in stmt.order_by:
            yield order.expr
    elif isinstance(stmt, Insert):
        for row in stmt.rows:
            yield from row
    elif isinstance(stmt, Update):
        for _, expr in stmt.assignments:
            yield expr
        if stmt.where is not None:
            yield stmt.where
    elif isinstance(stmt, Delete):
        if stmt.where is not None:
            yield stmt.where


def map_expr(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been mapped and
    returns its replacement (often the node itself).
    """
    if isinstance(expr, Comparison):
        rebuilt: Expr = Comparison(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, Arith):
        rebuilt = Arith(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, BoolOp):
        rebuilt = BoolOp(expr.op, tuple(map_expr(op, fn) for op in expr.operands))
    elif isinstance(expr, Not):
        rebuilt = Not(map_expr(expr.operand, fn))
    elif isinstance(expr, InList):
        rebuilt = InList(
            map_expr(expr.expr, fn),
            tuple(map_expr(item, fn) for item in expr.items),
            expr.negated,
        )
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(map_expr(expr.expr, fn), expr.negated)
    elif isinstance(expr, FuncCall):
        rebuilt = FuncCall(expr.name, tuple(map_expr(a, fn) for a in expr.args), expr.distinct)
    else:
        # Exists is deliberately a leaf: its subquery has its own alias
        # scope, so generic rewrites must not descend. Parameter binding,
        # which must reach inside, recurses explicitly in params.py.
        rebuilt = expr
    return fn(rebuilt)


def map_statement(stmt: Statement, fn) -> Statement:
    """Rebuild ``stmt`` with ``fn`` applied to every expression node."""
    if isinstance(stmt, Select):
        return Select(
            items=tuple(SelectItem(map_expr(i.expr, fn), i.alias) for i in stmt.items),
            sources=stmt.sources,
            joins=tuple(
                JoinClause(j.table, map_expr(j.on, fn), j.kind) for j in stmt.joins
            ),
            where=map_expr(stmt.where, fn) if stmt.where is not None else None,
            group_by=tuple(map_expr(k, fn) for k in stmt.group_by),
            having=map_expr(stmt.having, fn) if stmt.having is not None else None,
            order_by=tuple(
                OrderItem(map_expr(o.expr, fn), o.descending) for o in stmt.order_by
            ),
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
    if isinstance(stmt, Insert):
        return Insert(
            table=stmt.table,
            columns=stmt.columns,
            rows=tuple(tuple(map_expr(e, fn) for e in row) for row in stmt.rows),
        )
    if isinstance(stmt, Update):
        return Update(
            table=stmt.table,
            assignments=tuple((col, map_expr(e, fn)) for col, e in stmt.assignments),
            where=map_expr(stmt.where, fn) if stmt.where is not None else None,
        )
    if isinstance(stmt, Delete):
        return Delete(
            table=stmt.table,
            where=map_expr(stmt.where, fn) if stmt.where is not None else None,
        )
    return stmt
