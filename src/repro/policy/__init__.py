"""Policies: parameterized SQL views and operations over sets of them.

A policy, in the paper's concrete setting (§2.2), is a set of SQL views
parameterized by the current user (``?MyUId``). The enforcement proxy
allows a query when its answer is guaranteed to reveal no more than the
instantiated views do.
"""

from repro.policy.view import View
from repro.policy.policy import Policy
from repro.policy.serialize import policy_from_text, policy_to_text
from repro.policy.lint import LintFinding, lint_policy
from repro.policy.compare import (
    PolicyComparison,
    compare_policies,
    policy_allows,
    views_equivalent,
)

__all__ = [
    "LintFinding",
    "Policy",
    "PolicyComparison",
    "View",
    "compare_policies",
    "policy_allows",
    "lint_policy",
    "policy_from_text",
    "policy_to_text",
    "views_equivalent",
]
