"""Policy (de)serialization: a small line-oriented text format.

Format::

    # Calendar application policy
    view V1 -- each user sees the IDs of events they attend
      SELECT EId FROM Attendance WHERE UId = ?MyUId
    view V2 -- each user sees details of events they attend
      SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId
      WHERE a.UId = ?MyUId

A ``view <name> [-- description]`` header starts a view; subsequent
indented (or plain) lines up to the next header form its SQL. Blank lines
and ``#`` comments are ignored between views — with one exception:
``# @key value`` lines are *annotation directives* that round-trip
through :attr:`repro.policy.policy.Policy.meta`. The mining service
stamps candidates with ``# @provenance mined``, the source audit window,
example decision ids, and the miner-config fingerprint this way, so a
candidate shipped over the wire or parked on disk keeps its provenance.
"""

from __future__ import annotations

from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.translate import SchemaInfo
from repro.util.errors import PolicyError


def policy_to_text(policy: Policy) -> str:
    """Serialize a policy to the text format above."""
    lines = [f"# policy {policy.name}"]
    for key in sorted(policy.meta):
        value = str(policy.meta[key]).replace("\n", " ").strip()
        lines.append(f"# @{key} {value}")
    for view in policy:
        header = f"view {view.name}"
        if view.description:
            header += f" -- {view.description}"
        lines.append(header)
        lines.append(f"  {view.sql}")
    return "\n".join(lines) + "\n"


def policy_from_text(text: str, schema: SchemaInfo, name: str = "policy") -> Policy:
    """Parse the text format back into a :class:`Policy`.

    Parse errors cite the 1-based line number and the offending line:
    with hot policy reloads (:mod:`repro.lifecycle`), a bad policy file
    is an operations incident and "SQL outside of a view block" alone
    sends the operator hunting through the whole file.
    """
    views: list[View] = []
    meta: dict[str, str] = {}
    seen_names: dict[str, int] = {}
    current_name: str | None = None
    current_description = ""
    current_sql: list[str] = []
    header_lineno = 0
    header_text = ""

    def flush() -> None:
        nonlocal current_name, current_description, current_sql
        if current_name is None:
            return
        sql = " ".join(part.strip() for part in current_sql).strip()
        if not sql:
            raise PolicyError(
                f"line {header_lineno}: view {current_name!r} has no SQL"
                f" ({header_text!r})"
            )
        try:
            views.append(View(current_name, sql, schema, current_description))
        except PolicyError as error:
            raise PolicyError(
                f"line {header_lineno}: view {current_name!r}: {error}"
            ) from error
        current_name = None
        current_description = ""
        current_sql = []

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if line.startswith("# @") or line.startswith("#@"):
            directive = line.lstrip("#").strip()[1:]  # strip '#', then '@'
            key, _, value = directive.partition(" ")
            if not key:
                raise PolicyError(
                    f"line {lineno}: annotation directive without a key ({line!r})"
                )
            meta[key] = value.strip()
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("view "):
            flush()
            header_lineno, header_text = lineno, line
            header = line[len("view ") :]
            if "--" in header:
                view_name, _, description = header.partition("--")
                current_name = view_name.strip()
                current_description = description.strip()
            else:
                current_name = header.strip()
            if not current_name:
                raise PolicyError(f"line {lineno}: view header without a name ({line!r})")
            if current_name in seen_names:
                raise PolicyError(
                    f"line {lineno}: duplicate view name {current_name!r}"
                    f" (first defined on line {seen_names[current_name]})"
                )
            seen_names[current_name] = lineno
            continue
        if current_name is None:
            raise PolicyError(f"line {lineno}: SQL outside of a view block: {line!r}")
        current_sql.append(line)
    flush()
    return Policy(views, name=name, meta=meta)
