"""Policy (de)serialization: a small line-oriented text format.

Format::

    # Calendar application policy
    view V1 -- each user sees the IDs of events they attend
      SELECT EId FROM Attendance WHERE UId = ?MyUId
    view V2 -- each user sees details of events they attend
      SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId
      WHERE a.UId = ?MyUId

A ``view <name> [-- description]`` header starts a view; subsequent
indented (or plain) lines up to the next header form its SQL. Blank lines
and ``#`` comments are ignored between views.
"""

from __future__ import annotations

from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.translate import SchemaInfo
from repro.util.errors import PolicyError


def policy_to_text(policy: Policy) -> str:
    """Serialize a policy to the text format above."""
    lines = [f"# policy {policy.name}"]
    for view in policy:
        header = f"view {view.name}"
        if view.description:
            header += f" -- {view.description}"
        lines.append(header)
        lines.append(f"  {view.sql}")
    return "\n".join(lines) + "\n"


def policy_from_text(text: str, schema: SchemaInfo, name: str = "policy") -> Policy:
    """Parse the text format back into a :class:`Policy`."""
    views: list[View] = []
    current_name: str | None = None
    current_description = ""
    current_sql: list[str] = []

    def flush() -> None:
        nonlocal current_name, current_description, current_sql
        if current_name is None:
            return
        sql = " ".join(part.strip() for part in current_sql).strip()
        if not sql:
            raise PolicyError(f"view {current_name!r} has no SQL")
        views.append(View(current_name, sql, schema, current_description))
        current_name = None
        current_description = ""
        current_sql = []

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("view "):
            flush()
            header = line[len("view ") :]
            if "--" in header:
                view_name, _, description = header.partition("--")
                current_name = view_name.strip()
                current_description = description.strip()
            else:
                current_name = header.strip()
            if not current_name:
                raise PolicyError("view header without a name")
            continue
        if current_name is None:
            raise PolicyError(f"SQL outside of a view block: {line!r}")
        current_sql.append(line)
    flush()
    return Policy(views, name=name)
