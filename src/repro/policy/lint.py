"""Policy linting: sanity checks before a policy goes to production.

The paper's §4 opens with "a policy, be it hand-written or extracted,
should be sanity-checked before being put into production". The deep
check is disclosure analysis (:mod:`repro.evaluate`); this module covers
the shallow-but-frequent mistakes an operator tool should catch first:

* **redundant views** — a view whose contents the rest of the policy
  already reveals (dead weight that obscures review);
* **broad views** — unparameterized views exposing whole base tables,
  the "overly permissive" smell §3.2 says extracted drafts must be
  reviewed for;
* **shadowed parameters** — a view whose parameter set differs from the
  policy norm (often a typo like ``?MyUid`` vs ``?MyUId``);
* **non-conjunctive views** — representable but unusable for justifying
  queries under the rewriting-based checker, so effectively dead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policy.policy import Policy
from repro.relalg.rewrite import ViewDef, find_equivalent_rewriting


@dataclass(frozen=True)
class LintFinding:
    """One linter finding."""

    severity: str  # "warning" | "info"
    view: str
    code: str
    message: str

    def describe(self) -> str:
        return f"[{self.severity}] {self.view} ({self.code}): {self.message}"


def lint_policy(policy: Policy) -> list[LintFinding]:
    """Run all lint checks; findings are ordered by view then check."""
    findings: list[LintFinding] = []
    usage: dict[str, int] = {}
    for view in policy:
        for name in view.param_names:
            usage[name] = usage.get(name, 0) + 1
    popular = {name for name, count in usage.items() if count >= 2}

    for view in policy:
        if not view.is_conjunctive:
            findings.append(
                LintFinding(
                    severity="warning",
                    view=view.name,
                    code="non-conjunctive",
                    message=(
                        "view is a union of conjunctive queries; it cannot"
                        " justify query allowance under the rewriting-based"
                        " checker (consider splitting it into one view per"
                        " disjunct)"
                    ),
                )
            )
            continue
        if not view.param_names:
            findings.append(
                LintFinding(
                    severity="info",
                    view=view.name,
                    code="broad",
                    message=(
                        "view is unparameterized: every user sees its whole"
                        " contents — confirm this is deliberate"
                    ),
                )
            )
        # A parameter used by this view alone, while other views agree on
        # a different one, is usually a typo (?MyUid vs ?MyUId).
        for name in sorted(set(view.param_names)):
            if usage.get(name, 0) == 1 and popular and name not in popular:
                findings.append(
                    LintFinding(
                        severity="warning",
                        view=view.name,
                        code="lone-param",
                        message=(
                            f"parameter ?{name} is used only by this view,"
                            f" while the policy standardizes on"
                            f" {', '.join('?' + p for p in sorted(popular))}"
                            " — possible typo"
                        ),
                    )
                )

    findings.extend(_redundancy_findings(policy))
    return findings


def _redundancy_findings(policy: Policy) -> list[LintFinding]:
    findings = []
    conjunctive = [view for view in policy if view.is_conjunctive]
    bindings = {name: f"\x00param:{name}" for name in policy.param_names()}
    pinned: dict[str, ViewDef] = {}
    for view in conjunctive:
        pinned[view.name] = ViewDef(
            view.name, view.ucq.instantiate(bindings).disjuncts[0]
        )
    # Greedy basis: a view is redundant only w.r.t. the views not already
    # flagged — otherwise a mutually-derivable pair would both be flagged,
    # and removing both would actually change the policy. Narrower views
    # (fewer exposed columns) are tested first so the informative one of a
    # derivable pair stays in the basis.
    flagged: set[str] = set()
    conjunctive = sorted(conjunctive, key=lambda v: len(v.cq.head))
    for view in conjunctive:
        others = [
            d
            for name, d in pinned.items()
            if name != view.name and name not in flagged
        ]
        if not others:
            continue
        if find_equivalent_rewriting(pinned[view.name].cq, others) is not None:
            flagged.add(view.name)
            findings.append(
                LintFinding(
                    severity="info",
                    view=view.name,
                    code="redundant",
                    message=(
                        "the rest of the policy already reveals this view's"
                        " contents; removing it changes nothing"
                    ),
                )
            )
    return findings

