"""Comparing views and policies.

Used to score extracted policies against hand-written ground truth
(experiments E4–E6) and to diff policies for patch generation (§5.2.1).

Equivalence of parameterized views aligns parameters *by name* — the
extraction pipeline emits the same canonical parameter names
(``?MyUId``) the ground-truth policies use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.containment import ucq_contained_in
from repro.relalg.cq import CQ, UCQ
from repro.relalg.rewrite import ViewDef, find_equivalent_rewriting


def views_equivalent(left: View, right: View) -> bool:
    """Are two views equivalent queries (params aligned by name)?"""
    left_q = _pin_params(left.ucq)
    right_q = _pin_params(right.ucq)
    return ucq_contained_in(left_q, right_q) and ucq_contained_in(right_q, left_q)


def view_subsumed(left: View, right: View) -> bool:
    """Is ``left`` contained in ``right`` (right reveals at least as much)?"""
    return ucq_contained_in(_pin_params(left.ucq), _pin_params(right.ucq))


def view_covered_by(view: View, policy: Policy) -> bool:
    """Does ``policy`` as a whole already reveal the contents of ``view``?

    True when the view's query has an equivalent rewriting over the
    policy's views (information subsumption), with parameters aligned by
    name on both sides. This is arity-insensitive: a projection or a
    re-join of policy views counts as covered.
    """
    if not view.is_conjunctive:
        # Fall back to per-disjunct plain containment for UCQ views.
        return all(
            any(
                ucq_contained_in(UCQ.of(d), _pin_params(other.ucq))
                for other in policy
            )
            for d in _pin_params(view.ucq).disjuncts
        )
    bindings = _sentinel_bindings(policy, view)
    pinned = view.ucq.instantiate(bindings).disjuncts[0]
    defs = []
    for other in policy:
        if other.is_conjunctive:
            defs.append(
                ViewDef(other.name, other.ucq.instantiate(bindings).disjuncts[0])
            )
    return find_equivalent_rewriting(pinned, defs) is not None


def _sentinel_bindings(policy: Policy, view: View) -> dict[str, object]:
    names = set(view.param_names)
    for other in policy:
        names.update(other.param_names)
    return {name: f"\x00param:{name}" for name in names}


def _pin_params(query: UCQ) -> UCQ:
    """Replace each named param with a distinct sentinel constant.

    Containment treats params conservatively (never provably equal); for
    view *comparison* we want ``?MyUId`` on both sides to unify, so we pin
    each name to a unique sentinel value instead.
    """
    bindings = {p.name: f"\x00param:{p.name}" for p in query.params()}
    return query.instantiate(bindings)


@dataclass
class PolicyComparison:
    """Precision/recall of a candidate policy against ground truth."""

    matched_candidate: list[str] = field(default_factory=list)
    unmatched_candidate: list[str] = field(default_factory=list)
    matched_truth: list[str] = field(default_factory=list)
    unmatched_truth: list[str] = field(default_factory=list)

    @property
    def precision(self) -> float:
        total = len(self.matched_candidate) + len(self.unmatched_candidate)
        return len(self.matched_candidate) / total if total else 1.0

    @property
    def recall(self) -> float:
        total = len(self.matched_truth) + len(self.unmatched_truth)
        return len(self.matched_truth) / total if total else 1.0

    @property
    def exact(self) -> bool:
        return not self.unmatched_candidate and not self.unmatched_truth

    def describe(self) -> str:
        return (
            f"precision={self.precision:.2f} recall={self.recall:.2f}"
            f" (missing: {', '.join(self.unmatched_truth) or 'none'};"
            f" extra: {', '.join(self.unmatched_candidate) or 'none'})"
        )


def compare_policies(candidate: Policy, truth: Policy) -> PolicyComparison:
    """Match candidate views against ground-truth views by *coverage*.

    A candidate view counts as correct (precision) when the ground-truth
    policy as a whole already reveals its contents; a truth view counts
    as recovered (recall) when the candidate policy as a whole reveals
    it. Coverage is information subsumption via view rewriting, so
    extraction may split, merge, or re-project views without being
    penalized — what matters is the information the policy reveals.
    """
    comparison = PolicyComparison()
    for view in candidate:
        if view_covered_by(view, truth):
            comparison.matched_candidate.append(view.name)
        else:
            comparison.unmatched_candidate.append(view.name)
    for truth_view in truth:
        if view_covered_by(truth_view, candidate):
            comparison.matched_truth.append(truth_view.name)
        else:
            comparison.unmatched_truth.append(truth_view.name)
    return comparison


def policy_allows(policy: Policy, query: CQ, bindings: dict[str, object]) -> bool:
    """Does the instantiated policy allow ``query`` with no trace history?"""
    views = policy.view_defs(bindings)
    return find_equivalent_rewriting(query, views) is not None
