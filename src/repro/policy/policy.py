"""The Policy object: an allow-list of views."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.policy.view import View
from repro.relalg.rewrite import ViewDef
from repro.util.errors import PolicyError


class Policy:
    """A set of named views; everything not derivable from them is denied.

    The paper (§5.1, footnote 2) argues for allow-lists: they implement
    least privilege naturally, because the policy states exactly the
    minimum information the application needs.
    """

    def __init__(
        self,
        views: Iterable[View] = (),
        name: str = "policy",
        meta: Mapping[str, str] | None = None,
    ):
        self.name = name
        #: Provenance annotations (string key/value pairs) carried through
        #: the text format as ``# @key value`` directives: the lifecycle
        #: tooling stamps mined candidates with their source window,
        #: example decision ids, and miner-config fingerprint here.
        #: Annotations are presentation metadata: they do not participate
        #: in :meth:`fingerprint`, equivalence, or enforcement.
        self.meta: dict[str, str] = dict(meta) if meta else {}
        self._views: dict[str, View] = {}
        for view in views:
            self.add(view)

    def add(self, view: View) -> None:
        if view.name in self._views:
            raise PolicyError(f"duplicate view name {view.name!r}")
        self._views[view.name] = view

    def remove(self, name: str) -> None:
        if name not in self._views:
            raise PolicyError(f"no view named {name!r}")
        del self._views[name]

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> View:
        if name not in self._views:
            raise PolicyError(f"no view named {name!r}")
        return self._views[name]

    @property
    def views(self) -> list[View]:
        return list(self._views.values())

    def param_names(self) -> list[str]:
        names: set[str] = set()
        for view in self:
            names.update(view.param_names)
        return sorted(names)

    def view_defs(self, bindings: Mapping[str, object]) -> list[ViewDef]:
        """Instantiated definitions for the rewriting engine.

        Non-conjunctive views are skipped (they cannot justify allowance;
        skipping is the conservative direction).
        """
        defs = []
        for view in self:
            if view.is_conjunctive:
                defs.append(view.view_def(bindings))
        return defs

    def constants(self) -> set[object]:
        """Every constant appearing in a view definition.

        These are *structural* values ("public", a status code, an age
        bound) rather than data identifiers: the decision cache pins
        template slots that collide with them, and the checker's
        fact-selection heuristic ignores them when tracing which facts
        are connected to a query (a shared structural constant links
        everything to everything and carries no information).
        """
        from repro.relalg.cq import Const

        found: set[object] = set()
        for view in self:
            for disjunct in view.ucq.disjuncts:
                for comp in disjunct.comps:
                    for term in (comp.left, comp.right):
                        if isinstance(term, Const):
                            found.add(term.value)
                for atom in disjunct.body:
                    for arg in atom.args:
                        if isinstance(arg, Const):
                            found.add(arg.value)
        return found

    def fingerprint(self) -> str:
        """A stable content hash over the normalized view set.

        Two policies that define the same queries fingerprint
        identically, regardless of view names, descriptions, definition
        order, SQL spelling, or whitespace: each view's UCQ disjuncts are
        alpha-canonicalized (:func:`repro.relalg.memo.canonical_form`
        renames variables by first occurrence and strips presentation
        metadata), rendered deterministically, sorted within the view,
        and the per-view renderings sorted across the policy before
        hashing. Used by the lifecycle registry to deduplicate versions
        and by benchmark TSVs for provenance; 16 hex chars of SHA-256.
        """
        import hashlib

        from repro.relalg.memo import canonical_form

        rendered_views: list[str] = []
        for view in self:
            disjuncts = []
            for disjunct in view.ucq.disjuncts:
                canonical, _ = canonical_form(disjunct)
                body = ",".join(repr(atom) for atom in canonical.body)
                comps = ",".join(repr(comp) for comp in canonical.comps)
                head = ",".join(repr(term) for term in canonical.head)
                disjuncts.append(f"({head})<-{body}|{comps}")
            rendered_views.append(";".join(sorted(disjuncts)))
        digest = hashlib.sha256("\n".join(sorted(rendered_views)).encode()).hexdigest()
        return digest[:16]

    def with_view(self, view: View) -> "Policy":
        """A copy of this policy with one more view (for patch candidates)."""
        copy = Policy(self.views, name=self.name, meta=self.meta)
        copy.add(view)
        return copy

    def describe(self) -> str:
        lines = [f"policy {self.name} ({len(self)} views)"]
        for view in self:
            suffix = f"  -- {view.description}" if view.description else ""
            lines.append(f"  {view.name}: {view.sql}{suffix}")
        return "\n".join(lines)
