"""Parameterized view definitions."""

from __future__ import annotations

from collections.abc import Mapping

from repro.relalg.cq import CQ, UCQ
from repro.relalg.rewrite import ViewDef
from repro.relalg.translate import SchemaInfo, translate_select
from repro.sqlir import ast
from repro.sqlir.parser import parse_select
from repro.util.errors import PolicyError


class View:
    """One policy view: a named, parameterized SELECT.

    The view is stored in three forms: original SQL text (for humans and
    serialization), the parsed AST, and the translated UCQ (for the
    reasoning layer). Views used by the rewriting-based compliance check
    must translate to a single conjunctive query; views with OR / IN are
    representable but cannot currently justify query allowance (they are
    reported via :attr:`is_conjunctive`).
    """

    def __init__(
        self,
        name: str,
        sql: str | ast.Select,
        schema: SchemaInfo,
        description: str = "",
    ):
        self.name = name
        if isinstance(sql, str):
            self.sql = sql
            self.ast = parse_select(sql)
        else:
            from repro.sqlir.printer import to_sql

            self.ast = sql
            self.sql = to_sql(sql)
        self.description = description
        try:
            self.ucq: UCQ = translate_select(self.ast, schema, name)
        except Exception as exc:
            raise PolicyError(f"view {name!r} cannot be translated: {exc}") from exc
        self.param_names = sorted({p.name for p in self.ucq.params()})

    @property
    def is_conjunctive(self) -> bool:
        return len(self.ucq.disjuncts) == 1

    @property
    def cq(self) -> CQ:
        if not self.is_conjunctive:
            raise PolicyError(f"view {self.name!r} is a union of CQs")
        return self.ucq.disjuncts[0]

    def instantiate(self, bindings: Mapping[str, object]) -> UCQ:
        """Bind the view's parameters (e.g. ``{"MyUId": 1}``)."""
        return self.ucq.instantiate(dict(bindings))

    def view_def(self, bindings: Mapping[str, object]) -> ViewDef:
        """An instantiated :class:`ViewDef` for the rewriting engine."""
        instantiated = self.instantiate(bindings)
        if len(instantiated.disjuncts) != 1:
            raise PolicyError(
                f"view {self.name!r} is not conjunctive; cannot feed rewriting"
            )
        return ViewDef(self.name, instantiated.disjuncts[0])

    def __repr__(self) -> str:
        return f"View({self.name}: {self.sql})"
