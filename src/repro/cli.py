"""Command-line interface: the paper's life-cycle as four subcommands.

::

    python -m repro demo                                   # Example 2.1, live
    python -m repro extract --app calendar --method symbolic
    python -m repro extract --app calendar --method mine --traces 100
    python -m repro enforce --app social --user 3 --sql "SELECT * FROM Posts"
    python -m repro audit --app hospital --sensitive \\
        "SELECT Disease FROM PatientConditions WHERE PId = 1" --constraints
    python -m repro diagnose --app calendar --user 1 --sql \\
        "SELECT * FROM Events WHERE EId = 2"
    python -m repro serve-bench --app social --requests 500 --workers 8 \\
        --write-every 20 --verify
    python -m repro serve --app calendar --port 7433 --max-in-flight 16
    python -m repro cluster --app calendar --shards 4 --port 7432

Every subcommand operates on one of the bundled workload applications
(``--app calendar|hospital|employees|social``) and prints human-readable
output; ``extract --out FILE`` writes the policy in the text format
``repro.policy.serialize`` reads back.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.enforce import EnforcementProxy, PolicyViolation, ProxyConfig, Session
from repro.policy import compare_policies, policy_to_text
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.util.errors import DbacError


def _apps():
    from repro.workloads import calendar_app, employees, hospital, social

    return {
        "calendar": calendar_app,
        "hospital": hospital,
        "employees": employees,
        "social": social,
    }


def _load_app(args: argparse.Namespace, name: str | None = None):
    """Build (app, db) from parsed common flags (--app/--size/--seed,
    --backend/--db-path)."""
    module = _apps()[name or args.app]
    app = module.make_app()
    db = app.make_database(
        args.size or app.default_size,
        args.seed,
        backend=args.backend,
        db_path=args.db_path,
    )
    return app, db


def _hospital_constraints() -> list[TGD]:
    return [
        TGD(
            body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
            head=(
                Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
                Atom("DoctorDiseases", (Var("doc"), Var("d"))),
            ),
            name="condition-treated-by-assigned-doctor",
        )
    ]


# --------------------------------------------------------------------------
# Subcommands
# --------------------------------------------------------------------------


def cmd_demo(args: argparse.Namespace) -> int:
    app, db = _load_app(args, "calendar")
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = app.ground_truth_policy()
    proxy = EnforcementProxy(db, policy, Session.for_user(1))
    print("Example 2.1 against live data (user 1):")
    q1 = proxy.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    print(f"  Q1 -> ALLOW ({len(q1)} row)")
    q2 = proxy.query("SELECT * FROM Events WHERE EId = 2")
    print(f"  Q2 -> ALLOW given Q1's answer; event: {q2.first()}")
    fresh = EnforcementProxy(db, policy, Session.for_user(1))
    try:
        fresh.query("SELECT * FROM Events WHERE EId = 2")
        print("  Q2 (fresh session) -> ALLOW (unexpected!)")
        return 1
    except PolicyViolation:
        print("  Q2 (fresh session) -> BLOCK, as the paper prescribes")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    app, db = _load_app(args)
    if args.method == "symbolic":
        from repro.extract.symbolic import SymbolicExtractor

        extractor = SymbolicExtractor(db.schema)
        policy, report = extractor.extract(list(app.handlers.values()))
        print(f"explored paths: {report.paths_explored}")
    else:
        from repro.extract.miner import MinerConfig, TraceMiner

        requests = app.request_stream(db, random.Random(args.seed), args.traces)
        miner = TraceMiner(app, db, MinerConfig())
        policy = miner.mine(requests)
        print(
            f"observed {miner.report.traces} traces,"
            f" {miner.report.events} queries,"
            f" {miner.report.guarded_templates} guarded template(s)"
        )
    text = policy_to_text(policy)
    print(text)
    comparison = compare_policies(policy, app.ground_truth_policy())
    print(f"vs bundled ground truth: {comparison.describe()}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written to {args.out}")
    return 0


def cmd_enforce(args: argparse.Namespace) -> int:
    app, db = _load_app(args)
    policy = app.ground_truth_policy()
    proxy = EnforcementProxy(
        db, policy, Session.for_user(args.user), ProxyConfig(record_decisions=True)
    )
    for sql in args.sql:
        try:
            result = proxy.query(sql)
            decision = proxy.stats.decisions[-1]
            print(f"ALLOW ({len(result)} rows): {sql}")
            if args.explain:
                print(decision.explain())
        except PolicyViolation as violation:
            if args.explain:
                print(violation.decision.explain())
            else:
                print(violation.decision.describe())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.evaluate.nqi import check_nqi
    from repro.evaluate.pqi import check_pqi

    app, db = _load_app(args)
    policy = app.ground_truth_policy()
    bindings = {"MyUId": args.user} if "MyUId" in policy.param_names() else {}
    views = policy.view_defs(bindings)
    try:
        stmt = parse_select(args.sensitive)
        sensitive = translate_select(stmt, db.schema).disjuncts[0]
    except DbacError as exc:
        print(f"cannot analyze sensitive query: {exc}", file=sys.stderr)
        return 2
    constraints = (
        _hospital_constraints() if args.constraints and args.app == "hospital" else None
    )
    pqi = check_pqi(sensitive, views, constraints=constraints)
    nqi = check_nqi(sensitive, views, constraints=constraints)
    print(f"policy: {policy.name} ({len(policy)} views), bindings: {bindings}")
    print(pqi.explain())
    print(nqi.explain())
    return 0 if not (pqi.holds or nqi.holds) else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.policy import lint_policy, policy_from_text

    app, db = _load_app(args)
    if args.policy_file:
        with open(args.policy_file, encoding="utf-8") as handle:
            policy = policy_from_text(handle.read(), db.schema)
    else:
        policy = app.ground_truth_policy()
    findings = lint_policy(policy)
    if not findings:
        print(f"{policy.name}: no findings")
        return 0
    for finding in findings:
        print(finding.describe())
    warnings = sum(1 for f in findings if f.severity == "warning")
    return 1 if warnings else 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver

    app, db = _load_app(args)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(
            cache_mode=args.cache,
            verify_cached_decisions=args.verify,
            check_workers=args.check_workers,
            compile_checks=not args.no_compile,
            batch_checks=not args.no_batch,
            backend=args.backend,
            db_path=args.db_path,
        ),
    )
    driver = WorkloadDriver(
        app, gateway, workers=args.workers, write_every=args.write_every
    )
    requests = app.request_stream(db, random.Random(args.seed), args.requests)
    try:
        report = driver.run(requests)
    finally:
        gateway.close()
    print(
        f"app={app.name} backend={db.backend_name} cache={args.cache}"
        f" requests={report.requests}"
        f" sessions={report.sessions} workers={report.workers}"
    )
    print(
        f"throughput: {report.throughput_rps:.1f} req/s"
        f" over {report.wall_seconds:.2f}s"
    )
    print(
        f"outcomes: {report.completed} completed, {report.blocked} blocked,"
        f" {report.aborted} aborted, {report.errors} errors,"
        f" {report.writes} writes"
    )
    print(f"decision-cache hit rate: {report.hit_rate:.3f}")
    assert report.metrics is not None
    print(report.metrics.describe())
    if args.verify:
        disagreements = report.metrics.counters.get("cache_disagreements", 0)
        verified = report.metrics.counters.get("cache_verified", 0)
        print(f"cache verification: {disagreements} disagreements / {verified} hits")
        return 1 if disagreements else 0
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.lifecycle import LifecycleManager
    from repro.net import NetServer, ServerConfig
    from repro.policy import policy_from_text
    from repro.serve import EnforcementGateway, GatewayConfig

    app, db = _load_app(args)
    if args.policy_file:
        with open(args.policy_file, encoding="utf-8") as handle:
            policy = policy_from_text(handle.read(), db.schema)
    else:
        policy = app.ground_truth_policy()
    mining_config = None
    if args.mine:
        from repro.mining import MiningConfig

        mining_config = MiningConfig(
            interval_s=args.mine_interval,
            mode="auto_promote" if args.mine_auto else "propose_only",
            audit_sink=args.mine_sink,
        )
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(
            cache_mode=args.cache,
            check_workers=args.check_workers,
            compile_checks=not args.no_compile,
            batch_checks=not args.no_batch,
            backend=args.backend,
            db_path=args.db_path,
            mining=mining_config,
        ),
    )
    lifecycle = LifecycleManager(gateway, shadow_workers=args.shadow_workers)
    if lifecycle.mining is not None:
        lifecycle.mining.start()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_in_flight=args.max_in_flight,
        worker_threads=args.workers,
        request_timeout_s=args.request_timeout,
        idle_timeout_s=args.idle_timeout,
    )
    server = NetServer(gateway, config, lifecycle=lifecycle)

    async def run() -> None:
        await server.start()
        print(
            f"repro serve: app={app.name} backend={db.backend.describe()}"
            f" policy={policy.name}"
            f" v{gateway.policy_version}"
            f" (fingerprint {policy.fingerprint()})"
            f" cache={args.cache} listening on {config.host}:{server.port}"
        )
        print(
            "  policy lifecycle enabled: POLICY/RELOAD/SHADOW/PROMOTE/ROLLBACK"
            " admin verbs (repro policy-reload, policy-shadow, ...)"
        )
        if lifecycle.mining is not None:
            mode = lifecycle.mining.config.mode
            print(
                f"  mining service running: mode={mode},"
                f" cycle every {args.mine_interval}s (repro mine status, ...)"
            )
        print(
            f"  admission: {config.max_connections} connections,"
            f" {config.max_in_flight} statements in flight;"
            f" deadline {config.request_timeout_s}s, idle {config.idle_timeout_s}s"
        )
        print("  Ctrl-C drains gracefully (finish in-flight, then close)")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()
            if lifecycle.mining is not None:
                lifecycle.mining.close()
            gateway.close()
            snapshot = server.metrics.snapshot()
            print("drained; net counters:")
            for name in sorted(snapshot.counters):
                print(f"  {name}: {snapshot.counters[name]}")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    from repro.cluster.shard import run_shard, spec_from_args

    return run_shard(spec_from_args(args))


def cmd_cluster(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster import BackgroundCluster, ClusterConfig, RouterConfig

    config = ClusterConfig(
        app=args.app,
        shards=args.shards,
        size=args.size,
        seed=args.seed,
        backend=args.backend,
        db_path=args.db_path,
        cache_mode=args.cache,
        check_workers=args.check_workers,
        compile_checks=not args.no_compile,
        batch_checks=not args.no_batch,
        shared_db_path=args.shared_db_path,
        exchange=not args.no_exchange,
        audit_dir=args.audit_dir,
        router=RouterConfig(host=args.host, port=args.port),
    )
    cluster = BackgroundCluster(config)
    try:
        cluster.start()
    except (RuntimeError, TimeoutError, OSError) as exc:
        print(f"error: cluster failed to start: {exc}", file=sys.stderr)
        return 2
    try:
        ports = ", ".join(str(shard.port) for shard in cluster.shards)
        print(
            f"repro cluster: app={args.app} shards={args.shards}"
            f" (ports {ports}) cache={args.cache}"
            f" exchange={'on' if config.exchange else 'off'}"
        )
        print(f"  router listening on {args.host}:{cluster.port}")
        print(
            "  STATS aggregates across shards; RELOAD and the other admin"
            " verbs roll shard-by-shard"
        )
        print("  Ctrl-C drains the fleet gracefully")
        while all(shard.alive for shard in cluster.shards):
            _time.sleep(1.0)
        print("a shard exited; shutting the cluster down", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        cluster.stop()


def _read_policy_arg(spec: str, app, db):
    """Resolve a policy-diff operand: a file path or ``ground-truth``."""
    if spec == "ground-truth":
        return app.ground_truth_policy()
    from repro.policy import policy_from_text

    with open(spec, encoding="utf-8") as handle:
        return policy_from_text(handle.read(), db.schema, name=spec)


def cmd_policy_diff(args: argparse.Namespace) -> int:
    """Operator-facing view of the promotion compare gate."""
    from repro.lifecycle.promote import subsumption_matrix

    app, db = _load_app(args)
    candidate = _read_policy_arg(args.candidate, app, db)
    truth = _read_policy_arg(args.truth, app, db)
    comparison = compare_policies(candidate, truth)
    print(
        f"candidate={args.candidate} ({len(candidate)} views,"
        f" fingerprint {candidate.fingerprint()})"
    )
    print(f"truth={args.truth} ({len(truth)} views, fingerprint {truth.fingerprint()})")
    print(
        f"precision={comparison.precision:.3f} recall={comparison.recall:.3f}"
        f" exact={comparison.exact}"
    )
    print("per-view subsumption (is the view's information covered by the other side?):")
    for direction, view_name, covered in subsumption_matrix(candidate, truth):
        verdict = "covered" if covered else "NOT covered"
        print(f"  {direction}  {view_name}: {verdict}")
    return 0 if comparison.exact else 1


def _admin_client(args: argparse.Namespace):
    from repro.net import AdminClient

    return AdminClient(args.host, args.port)


def _print_reload_report(report: dict) -> None:
    print(
        f"reloaded v{report['old_version']} -> v{report['new_version']}"
        f" ({report['provenance']}, fingerprint {report['fingerprint']})"
    )
    print(
        f"  build {report['build_s'] * 1e3:.1f} ms,"
        f" swap pause {report['swap_pause_s'] * 1e6:.0f} us,"
        f" {report['sessions_preserved']} sessions"
        f" / {report['trace_facts_preserved']} trace facts preserved,"
        f" old epoch {'drained' if report['drained'] else 'NOT drained'}"
    )


def cmd_policy_reload(args: argparse.Namespace) -> int:
    with open(args.policy_file, encoding="utf-8") as handle:
        text = handle.read()
    with _admin_client(args) as admin:
        report = admin.reload(text, provenance=args.provenance, label=args.label)
    _print_reload_report(report)
    return 0


def cmd_policy_shadow(args: argparse.Namespace) -> int:
    with _admin_client(args) as admin:
        if args.action == "start":
            if not args.policy_file:
                print("error: shadow start needs --policy-file", file=sys.stderr)
                return 2
            with open(args.policy_file, encoding="utf-8") as handle:
                text = handle.read()
            reply = admin.shadow_start(
                text, provenance=args.provenance, label=args.label
            )
            print(
                f"shadowing candidate v{reply['candidate_version']}"
                f" (fingerprint {reply['fingerprint']})"
            )
            return 0
        if args.action == "stop":
            stats = admin.shadow_stop()
            print("shadow stopped; final counters:")
            for name in sorted(stats):
                print(f"  {name}: {stats[name]}")
            return 0
        status = admin.shadow_status()
        if status is None:
            print("no shadow candidate is running")
            return 1
        print("shadow status:")
        for name in sorted(status):
            print(f"  {name}: {status[name]}")
        return 0


def cmd_policy_promote(args: argparse.Namespace) -> int:
    overrides = {}
    if args.max_divergences is not None:
        overrides["max_divergences"] = args.max_divergences
    if args.min_shadow_checks is not None:
        overrides["min_shadow_checks"] = args.min_shadow_checks
    if args.min_precision is not None:
        overrides["min_precision"] = args.min_precision
    if args.min_recall is not None:
        overrides["min_recall"] = args.min_recall
    with _admin_client(args) as admin:
        reply = admin.promote(**overrides)
    print(
        f"candidate v{reply['candidate_version']}:"
        f" {'PROMOTED' if reply['promoted'] else 'REJECTED'}"
    )
    for gate in reply["gates"]:
        verdict = "PASS" if gate["passed"] else "FAIL"
        print(f"  [{verdict}] {gate['name']}: {gate['detail']}")
    for diagnosis in reply.get("diagnoses", []):
        print("  diagnosis:")
        for line in diagnosis.splitlines():
            print(f"    {line}")
    return 0 if reply["promoted"] else 1


def cmd_policy_rollback(args: argparse.Namespace) -> int:
    with _admin_client(args) as admin:
        report = admin.rollback()
    _print_reload_report(report)
    return 0


def cmd_policy_status(args: argparse.Namespace) -> int:
    with _admin_client(args) as admin:
        status = admin.policy_status()
    print(
        f"active: v{status['active_version']}"
        f" (fingerprint {status['fingerprint']},"
        f" {status['provenance']}"
        + (f", label {status['label']!r}" if status.get("label") else "")
        + f"), {status['views']} views"
    )
    print(f"registered versions: {status['registered_versions']}")
    print(f"activation history: {status['activation_history']}")
    print(f"rollback target: {status['rollback_target']}")
    if "shadow" in status:
        print("shadow:")
        for name in sorted(status["shadow"]):
            print(f"  {name}: {status['shadow'][name]}")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    """Operator front end for the MINE admin verb (docs/mining.md)."""
    with _admin_client(args) as admin:
        if args.action == "status":
            status = admin.mine_status()
            print(
                f"mining: mode={status['mode']}"
                f" running={status['running']}"
                f" cycles={status['cycles']} window={status['window']}"
            )
            print(
                f"  mined {status['mined_total']} candidates:"
                f" {status['promoted']} promoted, {status['rejected']} rejected,"
                f" by status {status['candidates']}"
            )
            print(
                f"  floor: support >= {status['floor']['min_support']},"
                f" confidence >= {status['floor']['min_confidence']}"
                f" (miner fingerprint {status['miner_fingerprint']})"
            )
            if status.get("shadowing"):
                print(f"  shadowing: {status['shadowing']}")
            stream = status.get("stream", {})
            if stream:
                print(
                    f"  audit stream: {stream.get('records', 0)} records,"
                    f" {stream.get('dropped', 0)} dropped,"
                    f" {stream.get('sink_records', 0)} sunk"
                )
            return 0
        if args.action == "candidates":
            reply = admin.mine_candidates()
            candidates = reply["candidates"]
            if not candidates:
                print("no mined candidates yet")
                return 1
            for candidate in candidates:
                print(
                    f"{candidate['fingerprint']}  {candidate['kind']:>8}"
                    f"  {candidate['view']:<6} support={candidate['support']:.4f}"
                    f" confidence={candidate['confidence']:.4f}"
                    f"  [{candidate['status']}]"
                )
                if candidate.get("disposition"):
                    print(f"    {candidate['disposition']}")
                if args.verbose:
                    print(f"    view sql: {candidate['view_sql']}")
                    for diagnosis in candidate.get("diagnoses", []):
                        print("    diagnosis:")
                        for line in diagnosis.splitlines():
                            print(f"      {line}")
            if args.verbose and reply.get("audit"):
                print("disposition audit:")
                for entry in reply["audit"]:
                    print(
                        f"  #{entry['seq']} {entry['fingerprint'][:8]}"
                        f" {entry['action']}: {entry['reason']}"
                    )
            return 0
        if args.action == "approve":
            if not args.fingerprint:
                print("error: mine approve needs --fingerprint", file=sys.stderr)
                return 2
            candidate = admin.mine_approve(args.fingerprint)
            print(
                f"approved {candidate['fingerprint']} ({candidate['kind']},"
                f" view {candidate['view']}): {candidate['disposition']}"
            )
            return 0
        cycle = admin.mine_run()
        print(
            f"cycle {cycle['cycle']}: drained {cycle['drained']} audit records"
            f" (window {cycle['window']}), mined {len(cycle['mined'])} candidates"
        )
        if cycle.get("progressed"):
            progressed = cycle["progressed"]
            print(
                f"  shadow candidate {progressed['fingerprint'][:8]}:"
                f" {progressed['action']}"
            )
        return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.diagnose import diagnose

    app, db = _load_app(args)
    policy = app.ground_truth_policy()
    bindings = {"MyUId": args.user}
    stmt = bind_parameters(parse_select(args.sql))
    checker_report = diagnose(stmt, bindings, policy, db.schema)
    print(checker_report.describe())
    return 0


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access control for database applications, beyond enforcement.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, app_required=True):
        if app_required:
            p.add_argument(
                "--app",
                choices=sorted(_apps()),
                required=True,
                help="bundled workload application",
            )
        p.add_argument("--size", type=int, default=None, help="database scale")
        p.add_argument("--seed", type=int, default=7, help="data/workload seed")
        from repro.engine import available_backends

        p.add_argument(
            "--backend",
            choices=available_backends(),
            default=None,
            help="storage backend (default: $REPRO_BACKEND or memory)",
        )
        p.add_argument(
            "--db-path",
            default=None,
            help="database file for path-capable backends (sqlite)",
        )

    demo = sub.add_parser("demo", help="run Example 2.1 end to end")
    common(demo, app_required=False)
    demo.set_defaults(func=cmd_demo)

    extract = sub.add_parser("extract", help="extract a draft policy (§3)")
    common(extract)
    extract.add_argument(
        "--method", choices=["symbolic", "mine"], default="symbolic"
    )
    extract.add_argument(
        "--traces", type=int, default=100, help="requests to observe (mine)"
    )
    extract.add_argument("--out", help="write the policy to this file")
    extract.set_defaults(func=cmd_extract)

    enforce = sub.add_parser("enforce", help="vet and run queries (§2.2)")
    common(enforce)
    enforce.add_argument("--user", type=int, default=1)
    enforce.add_argument("--sql", action="append", required=True)
    enforce.add_argument(
        "--explain", action="store_true", help="print the decision justification"
    )
    enforce.set_defaults(func=cmd_enforce)

    audit = sub.add_parser("audit", help="check PQI/NQI for a sensitive query (§4)")
    common(audit)
    audit.add_argument("--user", type=int, default=1)
    audit.add_argument("--sensitive", required=True)
    audit.add_argument(
        "--constraints",
        action="store_true",
        help="apply the app's integrity constraints as background knowledge",
    )
    audit.set_defaults(func=cmd_audit)

    lint = sub.add_parser("lint", help="sanity-check a policy (§4 intro)")
    common(lint)
    lint.add_argument(
        "--policy-file", help="lint this policy file instead of the bundled one"
    )
    lint.set_defaults(func=cmd_lint)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a workload through the multi-session gateway",
    )
    common(serve)
    serve.add_argument(
        "--users",
        type=int,
        default=None,
        dest="size",
        help="user population (alias for --size; apps scale data per user)",
    )
    serve.add_argument(
        "--requests", type=_positive_int, default=300, help="stream length"
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=4, help="worker threads"
    )
    serve.add_argument(
        "--write-every",
        type=int,
        default=0,
        help="interleave a cache-invalidating write every N requests per session",
    )
    serve.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
        help="decision-cache configuration",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="re-check every cache hit with the full checker; exit 1 on disagreement",
    )
    serve.add_argument(
        "--check-workers",
        type=int,
        default=0,
        help="checker worker processes for cache misses (0 = in-process)",
    )
    serve.add_argument(
        "--no-compile",
        action="store_true",
        help="disable the epoch-compiled decision fast path (docs/compilation.md)",
    )
    serve.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched containment checking for in-process misses",
    )
    serve.set_defaults(func=cmd_serve_bench)

    net = sub.add_parser(
        "serve",
        help="serve the enforcement gateway over TCP (wire protocol)",
    )
    common(net)
    net.add_argument("--host", default="127.0.0.1")
    net.add_argument("--port", type=int, default=7433, help="0 picks a free port")
    net.add_argument(
        "--max-connections", type=_positive_int, default=64,
        help="admission control: concurrent connections",
    )
    net.add_argument(
        "--max-in-flight", type=_positive_int, default=16,
        help="admission control: concurrent statements (excess shed)",
    )
    net.add_argument(
        "--workers", type=_positive_int, default=8, help="checker worker threads"
    )
    net.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-statement deadline in seconds",
    )
    net.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="reap connections idle this many seconds",
    )
    net.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
        help="decision-cache configuration",
    )
    net.add_argument(
        "--check-workers",
        type=int,
        default=0,
        help="checker worker processes for cache misses (0 = in-process)",
    )
    net.add_argument(
        "--policy-file",
        help="serve this policy file instead of the app's bundled ground truth",
    )
    net.add_argument(
        "--shadow-workers",
        type=int,
        default=0,
        help="checker worker processes for shadow-mode checks (0 = in-process)",
    )
    net.add_argument(
        "--no-compile",
        action="store_true",
        help="disable the epoch-compiled decision fast path (docs/compilation.md)",
    )
    net.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched containment checking for in-process misses",
    )
    net.add_argument(
        "--mine",
        action="store_true",
        help="run the continuous policy-mining service (docs/mining.md)",
    )
    net.add_argument(
        "--mine-interval",
        type=float,
        default=30.0,
        help="seconds between background mining cycles (with --mine)",
    )
    net.add_argument(
        "--mine-auto",
        action="store_true",
        help="auto_promote mode: floor-clearing candidates are shadowed and"
        " promoted through the gates without an operator MINE/APPROVE",
    )
    net.add_argument(
        "--mine-sink",
        help="durable JSONL sink for the decision-audit stream (with --mine)",
    )
    net.set_defaults(func=cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="serve a sharded gateway cluster behind one wire-protocol router",
    )
    common(cluster)
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port", type=int, default=7432, help="router port (0 picks a free port)"
    )
    cluster.add_argument(
        "--shards", type=_positive_int, default=2, help="gateway shard subprocesses"
    )
    cluster.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
        help="decision-cache configuration (per shard)",
    )
    cluster.add_argument(
        "--check-workers",
        type=int,
        default=0,
        help="checker worker processes per shard (0 = in-process)",
    )
    cluster.add_argument(
        "--no-exchange",
        action="store_true",
        help="disable cross-shard decision-template exchange",
    )
    cluster.add_argument(
        "--audit-dir",
        default=None,
        help="write per-shard decision audit JSONL logs into this directory",
    )
    cluster.add_argument(
        "--shared-db-path",
        default=None,
        help="point every shard at one shared SQLite file (WAL mode; the"
        " supervisor seeds it once, shards open it read-mostly — see"
        " docs/cluster.md for the single-writer caveat)",
    )
    cluster.add_argument(
        "--no-compile",
        action="store_true",
        help="disable the epoch-compiled decision fast path (docs/compilation.md)",
    )
    cluster.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched containment checking for in-process misses",
    )
    cluster.set_defaults(func=cmd_cluster)

    shard = sub.add_parser(
        "shard",
        help="run one gateway shard subprocess (used by `repro cluster`)",
    )
    common(shard)
    shard.add_argument("--shard-id", type=int, required=True)
    shard.add_argument("--host", default="127.0.0.1")
    shard.add_argument("--port", type=int, default=0, help="0 picks a free port")
    shard.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
    )
    shard.add_argument("--check-workers", type=int, default=0)
    shard.add_argument("--exchange-host", default="127.0.0.1")
    shard.add_argument(
        "--exchange-port",
        type=int,
        default=None,
        help="template-exchange bus port (omit to disable the exchange)",
    )
    shard.add_argument(
        "--audit-log", default=None, help="append decision audit JSONL here"
    )
    shard.add_argument("--max-in-flight", type=_positive_int, default=16)
    shard.add_argument("--request-timeout", type=float, default=30.0)
    shard.add_argument(
        "--no-compile",
        action="store_true",
        help="disable the epoch-compiled decision fast path (docs/compilation.md)",
    )
    shard.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched containment checking for in-process misses",
    )
    shard.set_defaults(func=cmd_shard)

    def admin_common(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7433)

    diff = sub.add_parser(
        "policy-diff",
        help="compare two policies: precision/recall + per-view subsumption",
    )
    common(diff)
    diff.add_argument(
        "candidate", help="policy file (or 'ground-truth' for the app's bundled one)"
    )
    diff.add_argument(
        "truth", help="policy file (or 'ground-truth' for the app's bundled one)"
    )
    diff.set_defaults(func=cmd_policy_diff)

    preload = sub.add_parser(
        "policy-reload", help="hot-swap a policy into a running server"
    )
    admin_common(preload)
    preload.add_argument("--policy-file", required=True)
    preload.add_argument(
        "--provenance",
        choices=["hand-written", "extracted", "patched"],
        default="hand-written",
    )
    preload.add_argument("--label", default="")
    preload.set_defaults(func=cmd_policy_reload)

    pshadow = sub.add_parser(
        "policy-shadow", help="manage shadow-mode trial of a candidate policy"
    )
    admin_common(pshadow)
    pshadow.add_argument("action", choices=["start", "stop", "status"])
    pshadow.add_argument("--policy-file", help="candidate policy (start)")
    pshadow.add_argument(
        "--provenance",
        choices=["hand-written", "extracted", "patched", "mined"],
        default="extracted",
    )
    pshadow.add_argument("--label", default="")
    pshadow.set_defaults(func=cmd_policy_shadow)

    ppromote = sub.add_parser(
        "policy-promote", help="gate-check and promote the shadowed candidate"
    )
    admin_common(ppromote)
    ppromote.add_argument("--max-divergences", type=int, default=None)
    ppromote.add_argument("--min-shadow-checks", type=int, default=None)
    ppromote.add_argument("--min-precision", type=float, default=None)
    ppromote.add_argument("--min-recall", type=float, default=None)
    ppromote.set_defaults(func=cmd_policy_promote)

    prollback = sub.add_parser(
        "policy-rollback", help="restore the previously active policy version"
    )
    admin_common(prollback)
    prollback.set_defaults(func=cmd_policy_rollback)

    pstatus = sub.add_parser(
        "policy-status", help="show a running server's policy lifecycle state"
    )
    admin_common(pstatus)
    pstatus.set_defaults(func=cmd_policy_status)

    mine = sub.add_parser(
        "mine", help="drive a running server's policy-mining service"
    )
    admin_common(mine)
    mine.add_argument("action", choices=["status", "candidates", "approve", "run"])
    mine.add_argument(
        "--fingerprint", help="candidate content fingerprint (approve)"
    )
    mine.add_argument(
        "-v", "--verbose", action="store_true",
        help="candidates: include view SQL, diagnoses, and the disposition audit",
    )
    mine.set_defaults(func=cmd_mine)

    diag = sub.add_parser("diagnose", help="diagnose a blocked query (§5)")
    common(diag)
    diag.add_argument("--user", type=int, default=1)
    diag.add_argument("--sql", required=True)
    diag.set_defaults(func=cmd_diagnose)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DbacError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
