"""Command-line interface: the paper's life-cycle as four subcommands.

::

    python -m repro demo                                   # Example 2.1, live
    python -m repro extract --app calendar --method symbolic
    python -m repro extract --app calendar --method mine --traces 100
    python -m repro enforce --app social --user 3 --sql "SELECT * FROM Posts"
    python -m repro audit --app hospital --sensitive \\
        "SELECT Disease FROM PatientConditions WHERE PId = 1" --constraints
    python -m repro diagnose --app calendar --user 1 --sql \\
        "SELECT * FROM Events WHERE EId = 2"
    python -m repro serve-bench --app social --requests 500 --workers 8 \\
        --write-every 20 --verify
    python -m repro serve --app calendar --port 7433 --max-in-flight 16

Every subcommand operates on one of the bundled workload applications
(``--app calendar|hospital|employees|social``) and prints human-readable
output; ``extract --out FILE`` writes the policy in the text format
``repro.policy.serialize`` reads back.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.enforce import EnforcementProxy, PolicyViolation, ProxyConfig, Session
from repro.policy import compare_policies, policy_to_text
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.translate import translate_select
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_select
from repro.util.errors import DbacError


def _apps():
    from repro.workloads import calendar_app, employees, hospital, social

    return {
        "calendar": calendar_app,
        "hospital": hospital,
        "employees": employees,
        "social": social,
    }


def _load_app(name: str, size: int | None, seed: int):
    module = _apps()[name]
    app = module.make_app()
    db = app.make_database(size or app.default_size, seed)
    return app, db


def _hospital_constraints() -> list[TGD]:
    return [
        TGD(
            body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
            head=(
                Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
                Atom("DoctorDiseases", (Var("doc"), Var("d"))),
            ),
            name="condition-treated-by-assigned-doctor",
        )
    ]


# --------------------------------------------------------------------------
# Subcommands
# --------------------------------------------------------------------------


def cmd_demo(args: argparse.Namespace) -> int:
    app, db = _load_app("calendar", args.size, args.seed)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    policy = app.ground_truth_policy()
    proxy = EnforcementProxy(db, policy, Session.for_user(1))
    print("Example 2.1 against live data (user 1):")
    q1 = proxy.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    print(f"  Q1 -> ALLOW ({len(q1)} row)")
    q2 = proxy.query("SELECT * FROM Events WHERE EId = 2")
    print(f"  Q2 -> ALLOW given Q1's answer; event: {q2.first()}")
    fresh = EnforcementProxy(db, policy, Session.for_user(1))
    try:
        fresh.query("SELECT * FROM Events WHERE EId = 2")
        print("  Q2 (fresh session) -> ALLOW (unexpected!)")
        return 1
    except PolicyViolation:
        print("  Q2 (fresh session) -> BLOCK, as the paper prescribes")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    app, db = _load_app(args.app, args.size, args.seed)
    if args.method == "symbolic":
        from repro.extract.symbolic import SymbolicExtractor

        extractor = SymbolicExtractor(db.schema)
        policy, report = extractor.extract(list(app.handlers.values()))
        print(f"explored paths: {report.paths_explored}")
    else:
        from repro.extract.miner import MinerConfig, TraceMiner

        requests = app.request_stream(db, random.Random(args.seed), args.traces)
        miner = TraceMiner(app, db, MinerConfig())
        policy = miner.mine(requests)
        print(
            f"observed {miner.report.traces} traces,"
            f" {miner.report.events} queries,"
            f" {miner.report.guarded_templates} guarded template(s)"
        )
    text = policy_to_text(policy)
    print(text)
    comparison = compare_policies(policy, app.ground_truth_policy())
    print(f"vs bundled ground truth: {comparison.describe()}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written to {args.out}")
    return 0


def cmd_enforce(args: argparse.Namespace) -> int:
    app, db = _load_app(args.app, args.size, args.seed)
    policy = app.ground_truth_policy()
    proxy = EnforcementProxy(
        db, policy, Session.for_user(args.user), ProxyConfig(record_decisions=True)
    )
    for sql in args.sql:
        try:
            result = proxy.query(sql)
            decision = proxy.stats.decisions[-1]
            print(f"ALLOW ({len(result)} rows): {sql}")
            if args.explain:
                print(decision.explain())
        except PolicyViolation as violation:
            if args.explain:
                print(violation.decision.explain())
            else:
                print(violation.decision.describe())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.evaluate.nqi import check_nqi
    from repro.evaluate.pqi import check_pqi

    app, db = _load_app(args.app, args.size, args.seed)
    policy = app.ground_truth_policy()
    bindings = {"MyUId": args.user} if "MyUId" in policy.param_names() else {}
    views = policy.view_defs(bindings)
    try:
        stmt = parse_select(args.sensitive)
        sensitive = translate_select(stmt, db.schema).disjuncts[0]
    except DbacError as exc:
        print(f"cannot analyze sensitive query: {exc}", file=sys.stderr)
        return 2
    constraints = (
        _hospital_constraints() if args.constraints and args.app == "hospital" else None
    )
    pqi = check_pqi(sensitive, views, constraints=constraints)
    nqi = check_nqi(sensitive, views, constraints=constraints)
    print(f"policy: {policy.name} ({len(policy)} views), bindings: {bindings}")
    print(pqi.explain())
    print(nqi.explain())
    return 0 if not (pqi.holds or nqi.holds) else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.policy import lint_policy, policy_from_text

    app, db = _load_app(args.app, args.size, args.seed)
    if args.policy_file:
        with open(args.policy_file, encoding="utf-8") as handle:
            policy = policy_from_text(handle.read(), db.schema)
    else:
        policy = app.ground_truth_policy()
    findings = lint_policy(policy)
    if not findings:
        print(f"{policy.name}: no findings")
        return 0
    for finding in findings:
        print(finding.describe())
    warnings = sum(1 for f in findings if f.severity == "warning")
    return 1 if warnings else 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import EnforcementGateway, GatewayConfig, WorkloadDriver

    app, db = _load_app(args.app, args.size, args.seed)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(
            cache_mode=args.cache,
            verify_cached_decisions=args.verify,
            check_workers=args.check_workers,
        ),
    )
    driver = WorkloadDriver(
        app, gateway, workers=args.workers, write_every=args.write_every
    )
    requests = app.request_stream(db, random.Random(args.seed), args.requests)
    try:
        report = driver.run(requests)
    finally:
        gateway.close()
    print(
        f"app={app.name} cache={args.cache} requests={report.requests}"
        f" sessions={report.sessions} workers={report.workers}"
    )
    print(
        f"throughput: {report.throughput_rps:.1f} req/s"
        f" over {report.wall_seconds:.2f}s"
    )
    print(
        f"outcomes: {report.completed} completed, {report.blocked} blocked,"
        f" {report.aborted} aborted, {report.errors} errors,"
        f" {report.writes} writes"
    )
    print(f"decision-cache hit rate: {report.hit_rate:.3f}")
    assert report.metrics is not None
    print(report.metrics.describe())
    if args.verify:
        disagreements = report.metrics.counters.get("cache_disagreements", 0)
        verified = report.metrics.counters.get("cache_verified", 0)
        print(f"cache verification: {disagreements} disagreements / {verified} hits")
        return 1 if disagreements else 0
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net import NetServer, ServerConfig
    from repro.serve import EnforcementGateway, GatewayConfig

    app, db = _load_app(args.app, args.size, args.seed)
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db, policy, GatewayConfig(cache_mode=args.cache, check_workers=args.check_workers)
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_in_flight=args.max_in_flight,
        worker_threads=args.workers,
        request_timeout_s=args.request_timeout,
        idle_timeout_s=args.idle_timeout,
    )
    server = NetServer(gateway, config)

    async def run() -> None:
        await server.start()
        print(
            f"repro serve: app={app.name} policy={policy.name}"
            f" cache={args.cache} listening on {config.host}:{server.port}"
        )
        print(
            f"  admission: {config.max_connections} connections,"
            f" {config.max_in_flight} statements in flight;"
            f" deadline {config.request_timeout_s}s, idle {config.idle_timeout_s}s"
        )
        print("  Ctrl-C drains gracefully (finish in-flight, then close)")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()
            gateway.close()
            snapshot = server.metrics.snapshot()
            print("drained; net counters:")
            for name in sorted(snapshot.counters):
                print(f"  {name}: {snapshot.counters[name]}")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.diagnose import diagnose

    app, db = _load_app(args.app, args.size, args.seed)
    policy = app.ground_truth_policy()
    bindings = {"MyUId": args.user}
    stmt = bind_parameters(parse_select(args.sql))
    checker_report = diagnose(stmt, bindings, policy, db.schema)
    print(checker_report.describe())
    return 0


# --------------------------------------------------------------------------
# Argument parsing
# --------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access control for database applications, beyond enforcement.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, app_required=True):
        if app_required:
            p.add_argument(
                "--app",
                choices=sorted(_apps()),
                required=True,
                help="bundled workload application",
            )
        p.add_argument("--size", type=int, default=None, help="database scale")
        p.add_argument("--seed", type=int, default=7, help="data/workload seed")

    demo = sub.add_parser("demo", help="run Example 2.1 end to end")
    common(demo, app_required=False)
    demo.set_defaults(func=cmd_demo)

    extract = sub.add_parser("extract", help="extract a draft policy (§3)")
    common(extract)
    extract.add_argument(
        "--method", choices=["symbolic", "mine"], default="symbolic"
    )
    extract.add_argument(
        "--traces", type=int, default=100, help="requests to observe (mine)"
    )
    extract.add_argument("--out", help="write the policy to this file")
    extract.set_defaults(func=cmd_extract)

    enforce = sub.add_parser("enforce", help="vet and run queries (§2.2)")
    common(enforce)
    enforce.add_argument("--user", type=int, default=1)
    enforce.add_argument("--sql", action="append", required=True)
    enforce.add_argument(
        "--explain", action="store_true", help="print the decision justification"
    )
    enforce.set_defaults(func=cmd_enforce)

    audit = sub.add_parser("audit", help="check PQI/NQI for a sensitive query (§4)")
    common(audit)
    audit.add_argument("--user", type=int, default=1)
    audit.add_argument("--sensitive", required=True)
    audit.add_argument(
        "--constraints",
        action="store_true",
        help="apply the app's integrity constraints as background knowledge",
    )
    audit.set_defaults(func=cmd_audit)

    lint = sub.add_parser("lint", help="sanity-check a policy (§4 intro)")
    common(lint)
    lint.add_argument(
        "--policy-file", help="lint this policy file instead of the bundled one"
    )
    lint.set_defaults(func=cmd_lint)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a workload through the multi-session gateway",
    )
    common(serve)
    serve.add_argument(
        "--users",
        type=int,
        default=None,
        dest="size",
        help="user population (alias for --size; apps scale data per user)",
    )
    serve.add_argument(
        "--requests", type=_positive_int, default=300, help="stream length"
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=4, help="worker threads"
    )
    serve.add_argument(
        "--write-every",
        type=int,
        default=0,
        help="interleave a cache-invalidating write every N requests per session",
    )
    serve.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
        help="decision-cache configuration",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="re-check every cache hit with the full checker; exit 1 on disagreement",
    )
    serve.add_argument(
        "--check-workers",
        type=int,
        default=0,
        help="checker worker processes for cache misses (0 = in-process)",
    )
    serve.set_defaults(func=cmd_serve_bench)

    net = sub.add_parser(
        "serve",
        help="serve the enforcement gateway over TCP (wire protocol)",
    )
    common(net)
    net.add_argument("--host", default="127.0.0.1")
    net.add_argument("--port", type=int, default=7433, help="0 picks a free port")
    net.add_argument(
        "--max-connections", type=_positive_int, default=64,
        help="admission control: concurrent connections",
    )
    net.add_argument(
        "--max-in-flight", type=_positive_int, default=16,
        help="admission control: concurrent statements (excess shed)",
    )
    net.add_argument(
        "--workers", type=_positive_int, default=8, help="checker worker threads"
    )
    net.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-statement deadline in seconds",
    )
    net.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="reap connections idle this many seconds",
    )
    net.add_argument(
        "--cache",
        choices=["shared", "per-session", "none"],
        default="shared",
        help="decision-cache configuration",
    )
    net.add_argument(
        "--check-workers",
        type=int,
        default=0,
        help="checker worker processes for cache misses (0 = in-process)",
    )
    net.set_defaults(func=cmd_serve)

    diag = sub.add_parser("diagnose", help="diagnose a blocked query (§5)")
    common(diag)
    diag.add_argument("--user", type=int, default=1)
    diag.add_argument("--sql", required=True)
    diag.set_defaults(func=cmd_diagnose)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DbacError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
