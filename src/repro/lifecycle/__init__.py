"""The policy lifecycle (§3–§5, operationalized): versioned policies
online.

The paper's central claim is that access control is a *lifecycle*
problem — policies are extracted from traces (§3), evaluated for
disclosure (§4), and diagnosed/patched when they block legitimate
queries (§5). This package closes the loop between those proposals and
the serving tier: a running :class:`~repro.serve.gateway.EnforcementGateway`
can take a new policy version without a restart, trial a candidate in
shadow mode against live traffic, and promote it only after it passes
explicit gates.

* :mod:`repro.lifecycle.registry` — versioned :class:`PolicyRegistry`
  with content fingerprints, provenance tags, and rollback targets.
* :mod:`repro.lifecycle.reload` — :func:`hot_reload` (atomic epoch swap
  with no torn decisions) and the :class:`LifecycleManager` that ties
  the registry, shadow mode, and promotion gates to one gateway.
* :mod:`repro.lifecycle.shadow` — :class:`ShadowRunner`: candidate
  policy checked alongside the active one off the hot path, divergences
  captured in a bounded :class:`DivergenceLog`.
* :mod:`repro.lifecycle.promote` — promotion gates (shadow divergences,
  ``compare_policies`` precision/recall, PQI/NQI regression on a
  sensitive-query suite) with per-divergence ``repro.diagnose`` reports
  on failure.

See ``docs/lifecycle.md`` for the reload semantics and the shadow-mode
soundness argument.
"""

from repro.lifecycle.promote import (
    Gate,
    GateConfig,
    PromotionReport,
    SensitiveCase,
    evaluate_gates,
)
from repro.lifecycle.registry import PolicyRegistry, PolicyVersion
from repro.lifecycle.reload import LifecycleManager, ReloadReport, hot_reload
from repro.lifecycle.shadow import Divergence, DivergenceLog, ShadowRunner

__all__ = [
    "Divergence",
    "DivergenceLog",
    "Gate",
    "GateConfig",
    "LifecycleManager",
    "PolicyRegistry",
    "PolicyVersion",
    "PromotionReport",
    "ReloadReport",
    "SensitiveCase",
    "ShadowRunner",
    "evaluate_gates",
    "hot_reload",
]
