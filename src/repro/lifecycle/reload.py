"""Hot reload: swap a live gateway's policy without a restart.

The mechanism is the gateway's *policy epoch*
(:class:`~repro.serve.gateway.PolicyEpoch`): everything derived from the
policy — checker, shared/per-session decision caches, checker-pool
workers — is one immutable bundle, and every decision pins the bundle it
started under for its whole duration. :func:`hot_reload` therefore:

1. **builds** the new epoch first (checker construction, worker
   spawning — the expensive part happens while the old epoch keeps
   serving);
2. **installs** it under the gateway's write lock — a pointer swap, so
   the measured pause is microseconds and the swap serializes against
   write-driven cache invalidation;
3. **retires** the old epoch — waits for its pinned in-flight decisions
   to drain, then shuts its worker pool down.

No torn decisions: a decision that began under version *n* finishes
entirely under version *n* (its cache, its checker, its pool); the next
decision on the same session runs entirely under *n+1*. Session state is
untouched — connections and their traces live on the gateway, not the
epoch, so certified history survives the swap (and immediately gates
history-dependent decisions under the new policy).

Decision caches are rebuilt, not migrated: a cached template is a
policy-specific proof, so carrying it across versions would be unsound.
The new epoch starts cold and re-warms from traffic.

:class:`LifecycleManager` ties this together with the registry, shadow
mode, and the promotion gates into the one object the net server's
admin verbs and the CLI talk to.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.lifecycle.promote import GateConfig, PromotionReport, evaluate_gates
from repro.lifecycle.registry import PolicyRegistry, PolicyVersion, RegistryError
from repro.lifecycle.shadow import ShadowRunner
from repro.policy.policy import Policy
from repro.util.errors import DbacError


class LifecycleError(DbacError):
    """Raised for invalid lifecycle operations (no shadow to promote, …)."""


@dataclass
class ReloadReport:
    """What one hot reload did, for logs / STATS / the CLI."""

    old_version: int
    new_version: int
    fingerprint: str
    provenance: str
    swap_pause_s: float
    build_s: float
    #: Seconds spent compiling the policy inside the epoch build (0.0
    #: when compile_checks is off) — paid pre-swap, never under the lock.
    compile_s: float
    drained: bool
    sessions_preserved: int
    trace_facts_preserved: int

    def describe(self) -> str:
        return (
            f"reloaded policy v{self.old_version} → v{self.new_version}"
            f" ({self.provenance}, fingerprint {self.fingerprint}):"
            f" build {self.build_s * 1e3:.1f} ms"
            f" (compile {self.compile_s * 1e3:.1f} ms),"
            f" swap pause {self.swap_pause_s * 1e6:.0f} µs,"
            f" {self.sessions_preserved} sessions"
            f" / {self.trace_facts_preserved} trace facts preserved,"
            f" old epoch {'drained' if self.drained else 'NOT fully drained'}"
        )


def hot_reload(
    gateway,
    policy: Policy,
    version: int,
    provenance: str = "hand-written",
    drain_timeout_s: float = 30.0,
) -> ReloadReport:
    """Atomically make ``policy`` the gateway's deciding policy.

    Prefer :meth:`LifecycleManager.reload`, which also versions the
    policy through the registry; this function is the bare mechanism.
    """
    sessions = gateway.connections()
    build_started = time.perf_counter()
    epoch = gateway.build_epoch(policy, version, provenance)
    build_s = time.perf_counter() - build_started
    swap_started = time.perf_counter()
    old = gateway.install_epoch(epoch)
    swap_pause_s = time.perf_counter() - swap_started
    drained = old.retire(timeout_s=drain_timeout_s)
    return ReloadReport(
        old_version=old.version,
        new_version=epoch.version,
        fingerprint=epoch.policy.fingerprint(),
        provenance=provenance,
        swap_pause_s=swap_pause_s,
        build_s=build_s,
        compile_s=epoch.compiled.build_seconds if epoch.compiled is not None else 0.0,
        drained=drained,
        sessions_preserved=len(sessions),
        trace_facts_preserved=sum(len(c.trace.facts) for c in sessions),
    )


class LifecycleManager:
    """Registry + reload + shadow + promotion, bound to one gateway.

    The initial policy the gateway booted with is registered as the
    first version and recorded as active, so rollback is meaningful from
    the very first reload.
    """

    def __init__(
        self,
        gateway,
        registry: PolicyRegistry | None = None,
        gates: GateConfig | None = None,
        shadow_workers: int = 0,
    ):
        self.gateway = gateway
        self.registry = registry or PolicyRegistry()
        self.gates = gates or GateConfig()
        self.shadow_workers = shadow_workers
        self._lock = threading.Lock()
        self._shadow_version: PolicyVersion | None = None
        self._last_promotion: PromotionReport | None = None
        boot = self.registry.register(
            gateway.policy, provenance="hand-written", label="boot"
        )
        # The gateway's boot epoch is version 1 by construction; keep the
        # registry's numbering aligned with the epochs'.
        assert boot.version == gateway.policy_version == 1
        self.registry.record_activation(boot.version)
        self.mining = None
        if getattr(gateway.config, "mining", None) is not None:
            self.enable_mining(gateway.config.mining)

    def enable_mining(self, config=None, stream=None):
        """Attach a :class:`repro.mining.MiningService` to this manager.

        Called automatically when the gateway was configured with
        ``GatewayConfig(mining=…)``; callable directly for programmatic
        setups. The service is created stopped — call
        ``manager.mining.start()`` (or ``repro serve --mine``) to run the
        background loop, or drive ``run_once()`` by hand / over the
        MINE admin verb.
        """
        from repro.mining.service import MiningService

        if self.mining is not None:
            raise LifecycleError("mining service already attached")
        self.mining = MiningService(self.gateway, self, config=config, stream=stream)
        return self.mining

    # -- reload & rollback --------------------------------------------------------

    def reload(
        self,
        policy: Policy,
        provenance: str = "hand-written",
        label: str = "",
    ) -> ReloadReport:
        """Register ``policy`` as a new version and hot-swap it in."""
        with self._lock:
            registered = self.registry.register(policy, provenance, label)
            report = hot_reload(
                self.gateway, policy, registered.version, provenance
            )
            self.registry.record_activation(registered.version)
            return report

    def activate(self, version: int) -> ReloadReport:
        """Hot-swap to an already-registered version (used by rollback)."""
        with self._lock:
            return self._activate_locked(version)

    def _activate_locked(self, version: int) -> ReloadReport:
        target = self.registry.get(version)
        report = hot_reload(
            self.gateway, target.policy, target.version, target.provenance
        )
        self.registry.record_activation(target.version)
        return report

    def rollback(self) -> ReloadReport:
        """Restore the previously active version (fresh caches, same traces)."""
        with self._lock:
            target = self.registry.rollback_target()
            report = self._activate_locked(target.version)
            self.gateway.metrics.increment("policy_rollbacks")
            return report

    # -- shadow mode --------------------------------------------------------------

    def start_shadow(
        self,
        candidate: Policy,
        provenance: str = "extracted",
        label: str = "",
        workers: int | None = None,
    ) -> PolicyVersion:
        """Register a candidate and start checking it against live traffic."""
        with self._lock:
            if self.gateway.shadow is not None:
                raise LifecycleError(
                    "a shadow candidate is already running; stop or promote it first"
                )
            registered = self.registry.register(candidate, provenance, label)
            runner = ShadowRunner(
                self.gateway,
                candidate,
                registered.version,
                workers=self.shadow_workers if workers is None else workers,
            )
            self._shadow_version = registered
            self.gateway.shadow = runner
            self.gateway.metrics.increment("shadow_starts")
            return registered

    def stop_shadow(self) -> dict[str, int]:
        """Tear shadow mode down; returns its final counters."""
        with self._lock:
            runner = self.gateway.shadow
            if runner is None:
                raise LifecycleError("no shadow candidate is running")
            runner.drain(timeout_s=10.0)
            stats = runner.stats()
            self.gateway.shadow = None
            self._shadow_version = None
            runner.close()
            return stats

    def shadow_status(self) -> dict[str, object] | None:
        runner = self.gateway.shadow
        if runner is None:
            return None
        status: dict[str, object] = dict(runner.stats())
        version = self._shadow_version
        if version is not None:
            status["fingerprint"] = version.fingerprint
            status["provenance"] = version.provenance
            status["label"] = version.label
        return status

    # -- promotion ----------------------------------------------------------------

    def promote(
        self, gates: GateConfig | None = None, drain_timeout_s: float = 30.0
    ) -> PromotionReport:
        """Promote the shadowed candidate if (and only if) every gate passes.

        On success the candidate becomes the active policy via
        :func:`hot_reload` and shadow mode ends; on failure shadow mode
        keeps running (the operator may gather more traffic or stop it)
        and the report carries per-divergence diagnoses.
        """
        with self._lock:
            runner = self.gateway.shadow
            version = self._shadow_version
            if runner is None or version is None:
                raise LifecycleError("no shadow candidate to promote")
            config = gates or self.gates
            runner.drain(timeout_s=drain_timeout_s)
            report = evaluate_gates(
                self.gateway.policy,
                runner.candidate,
                runner,
                config,
                self.gateway.db.schema,
                candidate_version=version.version,
            )
            self._last_promotion = report
            if not report.passed:
                self.gateway.metrics.increment("promotions_rejected")
                return report
            # Stop shadowing *before* the swap: once the candidate is
            # active, shadow-checking it against itself is noise.
            self.gateway.shadow = None
            self._shadow_version = None
            runner.close()
            hot_reload(
                self.gateway, runner.candidate, version.version, version.provenance
            )
            self.registry.record_activation(version.version)
            self.gateway.metrics.increment("promotions")
            report.promoted = True
            return report

    # -- status -------------------------------------------------------------------

    def status(self) -> dict[str, object]:
        """One JSON-able blob for STATS / the ``POLICY`` admin verb."""
        active = self.registry.get(self.gateway.policy_version)
        status: dict[str, object] = {
            "active_version": active.version,
            "fingerprint": active.fingerprint,
            "provenance": active.provenance,
            "label": active.label,
            "views": len(active.policy),
            "registered_versions": [pv.version for pv in self.registry.versions()],
            "activation_history": self.registry.activation_history(),
        }
        shadow = self.shadow_status()
        if shadow is not None:
            status["shadow"] = shadow
        if self.mining is not None:
            status["mining"] = self.mining.status()
        try:
            status["rollback_target"] = self.registry.rollback_target().version
        except RegistryError:
            status["rollback_target"] = None
        return status
