"""The versioned policy registry.

Every policy a deployment has ever run (or considered running) gets a
monotonic version id, a content fingerprint, and a provenance tag saying
where it came from — hand-written by an operator, extracted from traces
by the §3 miner, patched by the §5 diagnosis tooling, or mined from the
live decision audit by the background mining service. The registry
also remembers the *activation* order, which is what makes rollback
well-defined: the rollback target is the previously-activated version,
not merely the previously-registered one.

History is bounded (``history_cap``): a long-lived deployment reloading
policies for months should not grow memory without limit. Eviction
skips versions that are still activation targets.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.policy.policy import Policy
from repro.policy.serialize import policy_to_text
from repro.util.errors import DbacError

#: The provenance tags the lifecycle tooling understands. ``mined`` marks
#: candidates the background mining service derived from the live
#: decision audit (repro.mining); ``extracted`` stays reserved for the
#: offline §3 pipeline run by an operator.
PROVENANCES = ("hand-written", "extracted", "patched", "mined")


class RegistryError(DbacError):
    """Raised for unknown versions, bad provenance, or empty rollback."""


@dataclass(frozen=True)
class PolicyVersion:
    """One registered policy: the policy plus its lifecycle metadata.

    ``fingerprint`` is :meth:`repro.policy.policy.Policy.fingerprint` —
    a hash of the normalized view set, so re-registering a cosmetically
    different rendering of the same policy is detectable. ``text`` keeps
    the serialized form for audit trails and for shipping over the wire.
    """

    version: int
    policy: Policy
    fingerprint: str
    provenance: str
    label: str = ""
    text: str = field(default="", repr=False)

    def describe(self) -> str:
        label = f" ({self.label})" if self.label else ""
        return (
            f"v{self.version}{label}: {len(self.policy)} views,"
            f" fingerprint {self.fingerprint}, {self.provenance}"
        )


class PolicyRegistry:
    """Monotonic version ids over policies, with activation history.

    Thread-safe: the net server's admin verbs and an operator CLI can
    race a reload. Registration and activation are separate steps —
    a shadow candidate is registered the moment it starts shadowing, but
    only activated if it survives promotion.
    """

    def __init__(self, history_cap: int = 32):
        if history_cap < 2:
            raise ValueError("history_cap must be >= 2 (active + rollback target)")
        self._history_cap = history_cap
        self._lock = threading.Lock()
        self._versions: dict[int, PolicyVersion] = {}
        self._next_version = 1
        # Activation order, newest last; duplicates allowed (activating
        # v1, v2, then v1 again makes v2 the rollback target of v1).
        self._activations: list[int] = []

    # -- registration -------------------------------------------------------------

    def register(
        self, policy: Policy, provenance: str = "hand-written", label: str = ""
    ) -> PolicyVersion:
        """Assign the next version id to ``policy``.

        Same-content policies still get distinct versions (an operator
        may deliberately re-push), but the shared fingerprint makes the
        duplication visible in ``describe()`` and the STATS output.
        """
        if provenance not in PROVENANCES:
            raise RegistryError(
                f"unknown provenance {provenance!r}; expected one of {PROVENANCES}"
            )
        with self._lock:
            version = PolicyVersion(
                version=self._next_version,
                policy=policy,
                fingerprint=policy.fingerprint(),
                provenance=provenance,
                label=label,
                text=policy_to_text(policy),
            )
            self._next_version += 1
            self._versions[version.version] = version
            self._evict_locked()
            return version

    def get(self, version: int) -> PolicyVersion:
        with self._lock:
            found = self._versions.get(version)
        if found is None:
            raise RegistryError(f"no registered policy version {version}")
        return found

    def __contains__(self, version: int) -> bool:
        with self._lock:
            return version in self._versions

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def versions(self) -> list[PolicyVersion]:
        with self._lock:
            return [self._versions[v] for v in sorted(self._versions)]

    def find_fingerprint(self, fingerprint: str) -> list[PolicyVersion]:
        """Every registered version with this content fingerprint."""
        with self._lock:
            return [
                self._versions[v]
                for v in sorted(self._versions)
                if self._versions[v].fingerprint == fingerprint
            ]

    # -- activation & rollback ----------------------------------------------------

    def record_activation(self, version: int) -> None:
        """Note that ``version`` became the gateway's deciding policy."""
        with self._lock:
            if version not in self._versions:
                raise RegistryError(f"cannot activate unregistered version {version}")
            self._activations.append(version)

    @property
    def active_version(self) -> int | None:
        with self._lock:
            return self._activations[-1] if self._activations else None

    def rollback_target(self) -> PolicyVersion:
        """The most recently activated version before the current one.

        Skips over repeated activations of the current version (a
        re-push of the live policy does not change what rollback means).
        """
        with self._lock:
            if not self._activations:
                raise RegistryError("no activations recorded; nothing to roll back to")
            current = self._activations[-1]
            for version in reversed(self._activations[:-1]):
                if version != current:
                    found = self._versions.get(version)
                    if found is None:
                        raise RegistryError(
                            f"rollback target v{version} was evicted from history"
                        )
                    return found
        raise RegistryError("no earlier policy version to roll back to")

    def activation_history(self) -> list[int]:
        with self._lock:
            return list(self._activations)

    # -- internals ----------------------------------------------------------------

    def _evict_locked(self) -> None:
        """Drop oldest versions beyond the cap; keep activation targets.

        A version still appearing in the activation history is pinned:
        evicting it would silently break ``rollback_target``.
        """
        if len(self._versions) <= self._history_cap:
            return
        pinned = set(self._activations)
        for version in sorted(self._versions):
            if len(self._versions) <= self._history_cap:
                break
            if version in pinned:
                continue
            del self._versions[version]

    def describe(self) -> str:
        lines = ["policy registry:"]
        active = self.active_version
        for pv in self.versions():
            marker = " *active*" if pv.version == active else ""
            lines.append(f"  {pv.describe()}{marker}")
        return "\n".join(lines)
