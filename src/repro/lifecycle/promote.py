"""Promotion gates: what a candidate policy must prove before going live.

A candidate (mined, patched, or hand-edited) is promoted only when every
configured gate passes:

* **shadow** — at least ``min_shadow_checks`` live statements were
  shadow-checked and at most ``max_divergences`` diverged. This is the
  empirical gate: the candidate decides real traffic the same way the
  active policy does.
* **compare** — :func:`repro.policy.compare.compare_policies` precision
  and recall of the candidate against the active policy meet thresholds.
  This is the semantic gate: it catches divergences live traffic never
  exercised (precision < 1 means the candidate reveals something the
  active policy does not; recall < 1 means it lost a view's worth of
  information).
* **disclosure** — a declared suite of sensitive queries is re-checked
  with the §4 criteria: the candidate must not make PQI or NQI *newly*
  hold on any of them. Regression, not absolute, by design — the active
  policy's accepted disclosures stay accepted.

When a gate fails, each logged divergence is run through
:func:`repro.diagnose.diagnose` (under the policy that *blocks* the
statement), so the operator gets §5-style patch suggestions instead of a
bare rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnose import diagnose
from repro.evaluate import check_nqi, check_pqi
from repro.lifecycle.shadow import Divergence, ShadowRunner
from repro.policy.compare import compare_policies, view_covered_by
from repro.policy.policy import Policy
from repro.relalg.cq import CQ
from repro.serve.pool import _TraceReplica


@dataclass(frozen=True)
class SensitiveCase:
    """One sensitive query the disclosure gate re-checks.

    ``query`` must be instantiated against ``bindings`` the same way the
    evaluation suite (§4) does: PQI/NQI operate on parameter-free CQs
    and view definitions.
    """

    name: str
    query: CQ
    bindings: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class GateConfig:
    """Thresholds for the three promotion gates.

    Defaults are strict (zero divergences, exact precision/recall):
    loosen deliberately, per deployment. ``min_shadow_checks`` guards
    against promoting on an idle shadow period — zero divergences over
    three statements proves nothing.
    """

    max_divergences: int = 0
    min_shadow_checks: int = 100
    min_precision: float = 1.0
    min_recall: float = 1.0
    sensitive_suite: tuple[SensitiveCase, ...] = ()
    max_candidates: int = 2000
    max_diagnoses: int = 5
    #: Kind-aware divergence caps; ``None`` means no separate cap (only
    #: the total ``max_divergences`` applies). The mining service
    #: promotes a gap-filling candidate with ``max_allow_to_block=0`` and
    #: a loosened total: block→allow flips on the gap traffic are the
    #: candidate's whole point, while a single allow→block flip would
    #: regress the application and must stay fatal.
    max_allow_to_block: int | None = None
    max_block_to_allow: int | None = None


@dataclass(frozen=True)
class Gate:
    """One gate's verdict."""

    name: str
    passed: bool
    detail: str

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.name}: {self.detail}"


@dataclass
class PromotionReport:
    """The full verdict on a candidate, plus diagnoses when it fails."""

    candidate_version: int
    gates: list[Gate] = field(default_factory=list)
    diagnoses: list[str] = field(default_factory=list)
    promoted: bool = False

    @property
    def passed(self) -> bool:
        return all(gate.passed for gate in self.gates)

    def describe(self) -> str:
        lines = [
            f"promotion of candidate v{self.candidate_version}:"
            f" {'PROMOTED' if self.promoted else ('eligible' if self.passed else 'REJECTED')}"
        ]
        lines.extend(f"  {gate.describe()}" for gate in self.gates)
        for diagnosis in self.diagnoses:
            lines.append("  diagnosis:")
            lines.extend(f"    {line}" for line in diagnosis.splitlines())
        return "\n".join(lines)


def evaluate_gates(
    active: Policy,
    candidate: Policy,
    shadow: ShadowRunner | None,
    config: GateConfig,
    schema,
    candidate_version: int = 0,
) -> PromotionReport:
    """Run every gate; never swaps anything (pure evaluation)."""
    report = PromotionReport(candidate_version=candidate_version)
    report.gates.append(_shadow_gate(shadow, config))
    report.gates.append(_compare_gate(active, candidate, config))
    report.gates.append(_disclosure_gate(active, candidate, config))
    if not report.passed and shadow is not None:
        report.diagnoses = _diagnose_divergences(
            shadow.log.entries(), active, candidate, schema, config.max_diagnoses
        )
    return report


# -- the individual gates ----------------------------------------------------------


def _shadow_gate(shadow: ShadowRunner | None, config: GateConfig) -> Gate:
    if shadow is None:
        return Gate(
            "shadow",
            False,
            "no shadow run: candidate was never trialed against live traffic",
        )
    stats = shadow.stats()
    checks, divergences = stats["checks"], stats["divergences"]
    if checks < config.min_shadow_checks:
        return Gate(
            "shadow",
            False,
            f"only {checks} shadow checks (< {config.min_shadow_checks} required)",
        )
    if divergences > config.max_divergences:
        return Gate(
            "shadow",
            False,
            f"{divergences} divergences over {checks} checks"
            f" (> {config.max_divergences} allowed;"
            f" {stats['allow_to_block']} allow→block,"
            f" {stats['block_to_allow']} block→allow)",
        )
    for kind, cap in (
        ("allow_to_block", config.max_allow_to_block),
        ("block_to_allow", config.max_block_to_allow),
    ):
        if cap is not None and stats[kind] > cap:
            return Gate(
                "shadow",
                False,
                f"{stats[kind]} {kind.replace('_to_', '→')} flips"
                f" over {checks} checks (> {cap} allowed for this kind)",
            )
    return Gate(
        "shadow",
        True,
        f"{divergences} divergences over {checks} checks"
        f" (≤ {config.max_divergences} allowed)",
    )


def _compare_gate(active: Policy, candidate: Policy, config: GateConfig) -> Gate:
    comparison = compare_policies(candidate, active)
    precision, recall = comparison.precision, comparison.recall
    passed = precision >= config.min_precision and recall >= config.min_recall
    detail = (
        f"precision {precision:.2f} (≥ {config.min_precision:.2f}),"
        f" recall {recall:.2f} (≥ {config.min_recall:.2f}) vs active"
    )
    if comparison.unmatched_candidate:
        detail += f"; candidate-only views: {sorted(comparison.unmatched_candidate)}"
    if comparison.unmatched_truth:
        detail += f"; lost active views: {sorted(comparison.unmatched_truth)}"
    return Gate("compare", passed, detail)


def _disclosure_gate(active: Policy, candidate: Policy, config: GateConfig) -> Gate:
    """The §4 regression check over the declared sensitive suite."""
    if not config.sensitive_suite:
        return Gate("disclosure", True, "no sensitive suite declared (gate vacuous)")
    regressions: list[str] = []
    for case in config.sensitive_suite:
        bindings = dict(case.bindings)
        active_views = active.view_defs(bindings)
        candidate_views = candidate.view_defs(bindings)
        for criterion, check in (("PQI", check_pqi), ("NQI", check_nqi)):
            candidate_result = check(
                case.query, candidate_views, max_candidates=config.max_candidates
            )
            if not candidate_result.holds:
                continue
            active_result = check(
                case.query, active_views, max_candidates=config.max_candidates
            )
            if not active_result.holds:
                regressions.append(f"{case.name}: {criterion} newly holds")
    if regressions:
        return Gate("disclosure", False, "; ".join(regressions))
    return Gate(
        "disclosure",
        True,
        f"no new PQI/NQI disclosure over {len(config.sensitive_suite)} sensitive queries",
    )


def _diagnose_divergences(
    divergences: list[Divergence],
    active: Policy,
    candidate: Policy,
    schema,
    max_diagnoses: int,
) -> list[str]:
    """A §5 diagnosis per divergence, under whichever policy blocks.

    An allow→block flip is diagnosed under the candidate (it would break
    the application); a block→allow flip under the active policy (the
    candidate discloses what the deployment currently withholds — the
    diagnosis shows which views would have to exist to justify it).
    """
    reports: list[str] = []
    for divergence in divergences[:max_diagnoses]:
        blocking = candidate if divergence.kind == "allow_to_block" else active
        replica = _TraceReplica()
        replica.apply(list(divergence.events))
        try:
            diagnosis = diagnose(
                divergence.stmt,
                dict(divergence.bindings),
                blocking,
                schema,
                trace=replica,
            )
            rendered = diagnosis.describe()
        except Exception as error:  # diagnosis is best-effort advice
            rendered = f"(diagnosis failed: {error})"
        reports.append(f"{divergence.describe()}\n{rendered}")
    return reports


def subsumption_matrix(candidate: Policy, truth: Policy) -> list[tuple[str, str, bool]]:
    """Per-view coverage verdicts for the ``policy-diff`` CLI.

    Rows: ``(direction, view_name, covered)`` — candidate views checked
    against the truth policy and vice versa.
    """
    rows: list[tuple[str, str, bool]] = []
    for view in candidate:
        rows.append(("candidate→truth", view.name, view_covered_by(view, truth)))
    for view in truth:
        rows.append(("truth→candidate", view.name, view_covered_by(view, candidate)))
    return rows
