"""Shadow mode: trial a candidate policy against live traffic.

Every statement the gateway decides under the active policy is *also*
checked against the candidate, asynchronously and off the hot path, and
any divergence (an allow↔block flip) is captured with enough context to
diagnose it later. This is how a mined (§3) or patched (§5) policy earns
trust before promotion: the paper's lifecycle argument says a policy is
not just a set of views but a claim about what the application needs,
and live traffic is the cheapest oracle for that claim.

Soundness of the comparison rests on snapshotting: the active decision
was made against the session's trace *as of decision time*, so the
shadow check must see exactly that prefix. Trace event logs are
append-only, so capturing ``len(trace.events)`` at submit time and
replaying that prefix reproduces the active decision's history even
though the live trace has moved on by the time the shadow check runs.

Checks run on the candidate's own :class:`~repro.serve.pool.CheckerPool`
when workers are configured — active-pool workers build their
:class:`~repro.enforce.checker.ComplianceChecker` against the *active*
policy at spawn, so candidate checks need candidate-bound workers; what
is reused is the pool machinery (warm processes, trace-delta shipping,
restart-on-death), keeping the shadow check off the gateway's CPU
budget. With no workers, a single in-process checker thread is used.

Backpressure drops rather than blocks: when more than ``max_pending``
shadow checks are queued, new submissions are counted as ``dropped`` and
skipped. The hot path never waits on shadow mode.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.enforce.checker import ComplianceChecker
from repro.policy.policy import Policy
from repro.serve.pool import CheckerPool, CheckerPoolError, _TraceReplica
from repro.sqlir import ast


@dataclass(frozen=True)
class Divergence:
    """One allow↔block flip between the active and candidate policies.

    Carries the bound statement and the trace-event snapshot so a failed
    promotion gate can hand the exact situation to ``repro.diagnose``.
    """

    sql: str
    stmt: ast.Select
    bindings: tuple[tuple[str, object], ...]
    trace_len: int
    active_allowed: bool
    candidate_allowed: bool
    active_version: int
    candidate_version: int
    events: tuple = ()

    @property
    def kind(self) -> str:
        return "allow_to_block" if self.active_allowed else "block_to_allow"

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.sql} [bindings={dict(self.bindings)!r},"
            f" trace_len={self.trace_len}, active v{self.active_version}"
            f" {'ALLOW' if self.active_allowed else 'BLOCK'},"
            f" candidate v{self.candidate_version}"
            f" {'ALLOW' if self.candidate_allowed else 'BLOCK'}]"
        )


class DivergenceLog:
    """Bounded, thread-safe log of divergences plus running counters.

    The deque keeps the most recent ``cap`` divergences (oldest evicted);
    the counters keep exact totals regardless, so the promotion gate can
    enforce "≤ threshold divergences over ≥ N checks" even after
    eviction.
    """

    def __init__(self, cap: int = 256):
        self._lock = threading.Lock()
        self._entries: deque[Divergence] = deque(maxlen=max(1, cap))
        self.checks = 0
        self.divergences = 0
        self.allow_to_block = 0
        self.block_to_allow = 0
        self.errors = 0

    def record_check(self) -> None:
        with self._lock:
            self.checks += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record(self, divergence: Divergence) -> None:
        with self._lock:
            self._entries.append(divergence)
            self.divergences += 1
            if divergence.kind == "allow_to_block":
                self.allow_to_block += 1
            else:
                self.block_to_allow += 1

    def entries(self) -> list[Divergence]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "checks": self.checks,
                "divergences": self.divergences,
                "allow_to_block": self.allow_to_block,
                "block_to_allow": self.block_to_allow,
                "errors": self.errors,
            }


class _EventsPrefix:
    """A frozen prefix of a session's trace-event log, for pool shipping.

    :meth:`CheckerPool.check` reads only ``trace.events``; handing it
    this snapshot (instead of the live trace) pins the shadow check to
    the history the active decision saw.
    """

    __slots__ = ("events",)

    def __init__(self, events: list):
        self.events = events


class ShadowRunner:
    """Runs candidate-policy checks alongside the active gateway path.

    Installed as ``gateway.shadow``;
    :meth:`~repro.serve.gateway.GatewayConnection.decide` calls
    :meth:`submit` after every active decision. One worker thread drains
    the queue in submission order — per-session trace snapshots are then
    monotonically growing, which the pool's trace-delta cursors require.
    """

    def __init__(
        self,
        gateway,
        candidate: Policy,
        candidate_version: int,
        workers: int = 0,
        log_cap: int = 256,
        max_pending: int = 512,
    ):
        self.gateway = gateway
        self.candidate = candidate
        self.candidate_version = candidate_version
        self.log = DivergenceLog(cap=log_cap)
        history = gateway.config.history_enabled
        self._history_enabled = history
        self._checker = ComplianceChecker(
            gateway.db.schema, candidate, history_enabled=history
        )
        self._pool: CheckerPool | None = (
            CheckerPool(
                gateway.db.schema,
                candidate,
                workers=workers,
                history_enabled=history,
                timeout_s=gateway.config.check_timeout_s,
            )
            if workers > 0
            else None
        )
        self._max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="shadow-checker"
        )
        self._condition = threading.Condition()
        self._submitted = 0
        self._done = 0
        self._dropped = 0
        self._closed = False

    # -- the hot-path entry point -------------------------------------------------

    def submit(self, connection, bound: ast.Select, active_decision) -> bool:
        """Queue one shadow check; never blocks the calling session.

        Returns ``False`` when the check was shed (queue full or runner
        closed). Snapshots everything mutable *now*, on the caller's
        thread: the trace prefix, the bindings, and the active verdict.
        """
        with self._condition:
            if self._closed:
                return False
            if self._submitted - self._done >= self._max_pending:
                self._dropped += 1
                return False
            self._submitted += 1
        events = (
            list(connection.trace.events) if self._history_enabled else []
        )
        self._executor.submit(
            self._run_check,
            connection._pool_token,
            dict(connection.session.bindings),
            bound,
            active_decision.sql,
            active_decision.allowed,
            active_decision.policy_version or 0,
            events,
        )
        return True

    # -- the shadow thread --------------------------------------------------------

    def _run_check(
        self,
        token: int,
        bindings: dict,
        bound: ast.Select,
        sql: str,
        active_allowed: bool,
        active_version: int,
        events: list,
    ) -> None:
        try:
            candidate_allowed = self._decide(token, bindings, bound, events)
        except Exception:
            self.log.record_error()
        else:
            self.log.record_check()
            if candidate_allowed != active_allowed:
                self.log.record(
                    Divergence(
                        sql=sql,
                        stmt=bound,
                        bindings=tuple(sorted(bindings.items())),
                        trace_len=len(events),
                        active_allowed=active_allowed,
                        candidate_allowed=candidate_allowed,
                        active_version=active_version,
                        candidate_version=self.candidate_version,
                        events=tuple(events),
                    )
                )
        finally:
            with self._condition:
                self._done += 1
                self._condition.notify_all()

    def _decide(
        self, token: int, bindings: dict, bound: ast.Select, events: list
    ) -> bool:
        trace = None
        if self._history_enabled:
            if self._pool is not None:
                trace = _EventsPrefix(events)
            else:
                replica = _TraceReplica()
                replica.apply(events)
                trace = replica
        if self._pool is not None:
            try:
                return self._pool.check(token, bindings, bound, trace).allowed
            except CheckerPoolError:
                replica = None
                if self._history_enabled:
                    replica = _TraceReplica()
                    replica.apply(events)
                return self._checker.check(bound, bindings, replica).allowed
        return self._checker.check(bound, bindings, trace).allowed

    # -- lifecycle ----------------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait until every submitted shadow check has completed."""
        import time

        deadline = time.monotonic() + timeout_s
        with self._condition:
            while self._done < self._submitted:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._condition.wait(timeout=remaining)
        return True

    def close(self) -> None:
        with self._condition:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()

    def stats(self) -> dict[str, int]:
        flat = self.log.stats()
        with self._condition:
            flat["submitted"] = self._submitted
            flat["dropped"] = self._dropped
            flat["pending"] = self._submitted - self._done
        flat["candidate_version"] = self.candidate_version
        return flat
