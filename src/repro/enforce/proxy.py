"""The enforcement proxy: the SQL front door with access control.

Mirrors the Blockaid deployment model (§2.2): the application keeps its
own access checks and issues ordinary SQL; the proxy intercepts each
query and either executes it as-is or blocks it outright. It never
modifies a query — the paper's first highlighted trait.

Writes (INSERT/UPDATE/DELETE) pass through unchecked: the paper's setting
controls *data revelation*; write control is an orthogonal concern.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.enforce.cache import DecisionCache
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import Decision, PolicyViolation
from repro.enforce.trace import Trace
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.policy.policy import Policy
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.util.errors import EngineError


@dataclass(frozen=True)
class Session:
    """Who is asking: the bindings for the policy's parameters."""

    bindings: Mapping[str, object]

    @staticmethod
    def for_user(user_id: object, param: str = "MyUId") -> "Session":
        return Session(bindings={param: user_id})


@dataclass
class ProxyStats:
    """Counters a proxy accumulates over its lifetime."""

    allowed: int = 0
    blocked: int = 0
    cache_hits: int = 0
    check_seconds: float = 0.0
    execute_seconds: float = 0.0
    decisions: list[Decision] = field(default_factory=list)


class EnforcementProxy:
    """A per-session database connection with policy enforcement.

    Exposes the same ``sql()`` / ``query()`` interface as
    :class:`~repro.engine.database.Database`, so application handlers run
    unmodified against either.
    """

    def __init__(
        self,
        db: Database,
        policy: Policy,
        session: Session,
        history_enabled: bool = True,
        cache: DecisionCache | None = None,
        record_decisions: bool = False,
    ):
        self.db = db
        self.policy = policy
        self.session = session
        self.checker = ComplianceChecker(
            db.schema, policy, history_enabled=history_enabled
        )
        self.cache = cache
        self.trace = Trace()
        self.stats = ProxyStats()
        self.record_decisions = record_decisions

    # -- the application-facing API ----------------------------------------------

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        stmt = self.db._parse(sql)
        if not isinstance(stmt, ast.Select):
            return self.db.sql(stmt, args, named)
        bound = bind_parameters(stmt, args, named)
        assert isinstance(bound, ast.Select)
        decision = self.decide(bound)
        if not decision.allowed:
            self.stats.blocked += 1
            if self.record_decisions:
                self.stats.decisions.append(decision)
            raise PolicyViolation(decision)
        self.stats.allowed += 1
        if self.record_decisions:
            self.stats.decisions.append(decision)
        started = time.perf_counter()
        result = self.db.sql(bound)
        self.stats.execute_seconds += time.perf_counter() - started
        assert isinstance(result, Result)
        query = self.checker.translate(bound)
        single = (
            query.disjuncts[0]
            if query is not None and len(query.disjuncts) == 1
            else None
        )
        self.trace.record(decision.sql, single, result)
        return result

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        result = self.sql(sql, args, named)
        if not isinstance(result, Result):
            raise EngineError("query() requires a SELECT statement")
        return result

    # -- decisions ---------------------------------------------------------------

    def decide(self, bound: ast.Select) -> Decision:
        """Vet a bound SELECT (without executing it)."""
        started = time.perf_counter()
        if self.cache is not None:
            cached = self.cache.lookup(bound, self.session.bindings, self.trace)
            if cached is not None:
                self.stats.cache_hits += 1
                self.stats.check_seconds += time.perf_counter() - started
                return cached
        decision = self.checker.check(bound, self.session.bindings, self.trace)
        if self.cache is not None:
            self.cache.store(bound, self.session.bindings, decision)
        self.stats.check_seconds += time.perf_counter() - started
        return decision
