"""The enforcement proxy: the SQL front door with access control.

Mirrors the Blockaid deployment model (§2.2): the application keeps its
own access checks and issues ordinary SQL; the proxy intercepts each
query and either executes it as-is or blocks it outright. It never
modifies a query — the paper's first highlighted trait.

Writes (INSERT/UPDATE/DELETE) pass through unchecked: the paper's setting
controls *data revelation*; write control is an orthogonal concern. The
serving gateway hooks :meth:`EnforcementProxy._execute_write` to observe
them anyway, because a write must invalidate shared decision templates
that touch the written table.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.enforce.cache import DecisionCache
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import Decision, PolicyViolation
from repro.enforce.trace import Trace
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.policy.policy import Policy
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.sqlir.prepared import PreparedPlan, prepare_plan
from repro.sqlir.printer import to_sql
from repro.sqlir.skeleton import Skeleton
from repro.util.errors import EngineError


@dataclass(frozen=True)
class Session:
    """Who is asking: the bindings for the policy's parameters."""

    bindings: Mapping[str, object]

    @staticmethod
    def for_user(user_id: object, param: str = "MyUId") -> "Session":
        return Session(bindings={param: user_id})


@dataclass(frozen=True)
class ProxyConfig:
    """Everything configurable about an :class:`EnforcementProxy`.

    One value object instead of a growing pile of constructor flags, so
    the gateway can stamp out many identically-configured sessions and
    new knobs don't ripple through every call site.

    * ``history_enabled`` — conjoin certified trace facts into checks
      (the Example 2.1 mechanism); disable for the no-history ablation.
    * ``record_decisions`` — keep the most recent decisions on
      ``stats.decisions`` for tooling (capped by ``decision_log_cap``).
    * ``cache`` — a :class:`DecisionCache` (or shared subclass) to
      consult before running the checker; ``None`` disables caching.
    * ``decision_log_cap`` — ring-buffer size for recorded decisions.
    """

    history_enabled: bool = True
    record_decisions: bool = False
    cache: DecisionCache | None = None
    decision_log_cap: int = 256


@dataclass
class ProxyStats:
    """Counters a proxy accumulates over its lifetime.

    ``decisions`` is a bounded ring buffer (newest last): with
    ``record_decisions`` on, an unbounded list would grow forever in a
    long-lived serving session. Overflow is not silent: every decision
    the ring evicts to make room increments ``audit_dropped``, which the
    gateway surfaces in ``snapshot()``/STATS — an operator replaying the
    decision log must be able to tell a complete window from a clipped
    one.
    """

    allowed: int = 0
    blocked: int = 0
    cache_hits: int = 0
    parse_seconds: float = 0.0
    check_seconds: float = 0.0
    execute_seconds: float = 0.0
    decisions: deque[Decision] = field(default_factory=lambda: deque(maxlen=256))
    #: Decisions evicted from the ``decisions`` ring by the cap.
    audit_dropped: int = 0

    @staticmethod
    def with_cap(decision_log_cap: int) -> "ProxyStats":
        return ProxyStats(decisions=deque(maxlen=max(1, decision_log_cap)))

    def record_decision(self, decision: Decision) -> None:
        """Append to the ring, counting (not hiding) any eviction."""
        ring = self.decisions
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.audit_dropped += 1
        ring.append(decision)


class EnforcementProxy:
    """A per-session database connection with policy enforcement.

    Implements the :class:`~repro.engine.connection.Connection` protocol
    (``sql()`` / ``query()`` / ``close()``), same as
    :class:`~repro.engine.database.Database`, so application handlers run
    unmodified against either.

    Configuration lives in :class:`ProxyConfig`. The pre-ProxyConfig
    keyword arguments ``history_enabled``, ``cache``, and
    ``record_decisions`` went through a deprecation cycle and are now a
    hard error; pass ``config=ProxyConfig(...)``.
    """

    #: Removed constructor kwargs -> the ProxyConfig field that replaced
    #: them (kept for the migration-hint error message).
    _REMOVED_KWARGS = ("history_enabled", "cache", "record_decisions")

    def __init__(
        self,
        db: Database,
        policy: Policy,
        session: Session,
        config: ProxyConfig | None = None,
        **legacy: object,
    ):
        if legacy:
            removed = sorted(set(legacy) & set(self._REMOVED_KWARGS))
            if removed:
                fields = ", ".join(f"{name}=..." for name in removed)
                raise TypeError(
                    f"EnforcementProxy no longer accepts keyword(s) {removed};"
                    f" pass config=ProxyConfig({fields}) instead"
                )
            raise TypeError(
                f"EnforcementProxy got unexpected keyword(s) {sorted(legacy)}"
            )
        base = config or ProxyConfig()
        self.config = base
        self.db = db
        self.policy = policy
        self.session = session
        self.checker = ComplianceChecker(
            db.schema, policy, history_enabled=base.history_enabled
        )
        self.trace = Trace()
        self.stats = ProxyStats.with_cap(base.decision_log_cap)
        # Per-session invariant, hoisted: the decision cache keys its
        # equality partitions on sorted binding items, and re-sorting an
        # immutable mapping on every request is pure hot-path waste.
        self._param_items = sorted(session.bindings.items())
        self._closed = False

    # -- deprecated accessors (pre-ProxyConfig attribute names) -------------------

    @property
    def cache(self) -> DecisionCache | None:
        return self.config.cache

    @property
    def record_decisions(self) -> bool:
        return self.config.record_decisions

    # -- the application-facing API ----------------------------------------------

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        if self._closed:
            raise EngineError("connection is closed")
        started = time.perf_counter()
        stmt = self.db.parse(sql)
        parse_seconds = time.perf_counter() - started
        self.stats.parse_seconds += parse_seconds
        self._record_stage("parse", parse_seconds)
        if not isinstance(stmt, ast.Select):
            return self._execute_write(stmt, args, named)
        bound = bind_parameters(stmt, args, named)
        assert isinstance(bound, ast.Select)
        return self._finish_select(bound, skeleton=None)

    def _finish_select(
        self, bound: ast.Select, skeleton: Skeleton | None
    ) -> Result:
        """Decide, execute, and certify one bound SELECT (shared by the
        classic and prepared paths; ``skeleton`` is the prepared plan's
        precomputed skeleton, or None)."""
        decision = self.decide(bound, skeleton=skeleton)
        if not decision.allowed:
            self.stats.blocked += 1
            if self.config.record_decisions:
                self.stats.record_decision(decision)
            raise PolicyViolation(decision)
        self.stats.allowed += 1
        if self.config.record_decisions:
            self.stats.record_decision(decision)
        started = time.perf_counter()
        result = self.db.sql(bound)
        execute_seconds = time.perf_counter() - started
        self.stats.execute_seconds += execute_seconds
        self._record_stage("execute", execute_seconds)
        assert isinstance(result, Result)
        query = self.checker.translate(bound)
        single = (
            query.disjuncts[0]
            if query is not None and len(query.disjuncts) == 1
            else None
        )
        self.trace.record(decision.sql, single, result)
        return result

    # -- prepared statements -------------------------------------------------------

    def prepare(self, sql: str | ast.Statement) -> PreparedPlan:
        """Hoist this statement's per-shape work; see ``docs/prepared.md``.

        The returned plan is immutable and policy-independent: it may be
        executed across hot reloads (decisions always come from the
        current epoch's caches), and one plan may serve many sessions.
        """
        stmt = self.db.parse(sql)
        return prepare_plan(stmt, sql if isinstance(sql, str) else to_sql(stmt))

    def execute_prepared(
        self,
        plan: PreparedPlan,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        """Execute a prepared plan: no parse, and (for static plans) no
        per-request skeletonization — the decision itself is unchanged."""
        if self._closed:
            raise EngineError("connection is closed")
        if not plan.is_select:
            return self._execute_write(plan.statement, args, named)
        bound = plan.bind(args, named)
        assert isinstance(bound, ast.Select)
        return self._finish_select(bound, plan.skeleton_for(args, named))

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        result = self.sql(sql, args, named)
        if not isinstance(result, Result):
            raise EngineError("query() requires a SELECT statement")
        return result

    def close(self) -> None:
        """Close the session: drop the trace and refuse further statements."""
        self._closed = True

    # -- decisions ---------------------------------------------------------------

    def decide(self, bound: ast.Select, skeleton: Skeleton | None = None) -> Decision:
        """Vet a bound SELECT (without executing it).

        ``skeleton`` is the prepared-statement fast path: a precomputed
        ``skeletonize(bound)`` that lets the cache probe and template
        store skip the per-request AST traversal.
        """
        started = time.perf_counter()
        cache = self._decision_cache()
        # Only offer the trace to the cache when this session's checker
        # would use history itself; otherwise a fact-dependent template
        # could allow what the no-history checker would block.
        trace = self.trace if self.config.history_enabled else None
        if cache is not None:
            cached = cache.lookup(
                bound,
                self.session.bindings,
                trace,
                skeleton=skeleton,
                param_items=self._param_items,
            )
            if cached is not None:
                self.stats.cache_hits += 1
                seconds = time.perf_counter() - started
                self.stats.check_seconds += seconds
                self._record_stage("check", seconds)
                self._observe_decision(cached, bound)
                return cached
        decision = self._check_fresh(bound, trace, skeleton=skeleton)
        if cache is not None:
            cache.store(bound, self.session.bindings, decision, skeleton=skeleton)
        seconds = time.perf_counter() - started
        self.stats.check_seconds += seconds
        self._record_stage("check", seconds)
        self._observe_decision(decision, bound)
        return decision

    # -- subclass hooks (used by repro.serve) -------------------------------------

    def _execute_write(
        self,
        stmt: ast.Statement,
        args: Sequence[object],
        named: Mapping[str, object] | None,
    ) -> Result | int:
        """Run a non-SELECT statement; the gateway overrides to invalidate."""
        started = time.perf_counter()
        outcome = self.db.sql(stmt, args, named)
        self._record_stage("execute", time.perf_counter() - started)
        return outcome

    def _record_stage(self, stage: str, seconds: float) -> None:
        """Per-stage latency observation point; no-op outside the gateway."""

    def _decision_cache(self) -> DecisionCache | None:
        """The decision cache to consult for this decision.

        The gateway overrides this to resolve the cache through the
        policy epoch pinned for the current decision (caches are
        per-policy-version there, not per-connection).
        """
        return self.config.cache

    def _check_fresh(
        self,
        bound: ast.Select,
        trace: Trace | None,
        skeleton: Skeleton | None = None,
    ) -> Decision:
        """Run the full compliance check for a cache miss.

        The gateway overrides this to offload onto a
        :class:`~repro.serve.pool.CheckerPool` when one is configured.
        """
        return self.checker.check(
            bound, self.session.bindings, trace, skeleton=skeleton
        )

    def _observe_decision(self, decision: Decision, bound: ast.Select) -> None:
        """Decision observation point; no-op outside the gateway."""
