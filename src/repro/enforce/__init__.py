"""Blockaid-style access-control enforcement (the paper's concrete setting).

The :class:`EnforcementProxy` wraps a database connection; each SELECT is
intercepted and either executed as-is or blocked outright — never modified
(§2.2, first trait). Compliance is decided against a view-based policy,
taking the history of prior queries and their results into account
(Example 2.1), with a decision-template cache to amortize repeated
decisions.
"""

from repro.enforce.decision import Decision, PolicyViolation
from repro.enforce.trace import Trace, TraceEntry
from repro.enforce.checker import ComplianceChecker
from repro.enforce.cache import DecisionCache
from repro.enforce.proxy import EnforcementProxy, ProxyConfig, ProxyStats, Session
from repro.enforce.baselines import DirectConnection, RowLevelSecurityProxy

__all__ = [
    "ComplianceChecker",
    "Decision",
    "DecisionCache",
    "DirectConnection",
    "EnforcementProxy",
    "PolicyViolation",
    "ProxyConfig",
    "ProxyStats",
    "RowLevelSecurityProxy",
    "Session",
    "Trace",
    "TraceEntry",
]
