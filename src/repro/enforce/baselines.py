"""Baselines the benchmarks compare the proxy against.

* :class:`DirectConnection` — no access control; the lower bound on
  latency and the upper bound on disclosure.
* :class:`RowLevelSecurityProxy` — the classic query-modification
  approach (Stonebraker & Wong '74; Oracle VPD; Postgres RLS): every
  table reference gets the table's row predicate conjoined to the WHERE
  clause. This is the "Truman model" the paper contrasts with Blockaid's
  execute-as-is-or-block design (§2.2): queries silently return filtered
  answers rather than being vetted.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.engine.database import Database
from repro.engine.executor import Result
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_expression
from repro.util.errors import EngineError, PolicyError


class DirectConnection:
    """The same interface as the proxies, with no enforcement at all."""

    def __init__(self, db: Database):
        self.db = db
        self._closed = False

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        if self._closed:
            raise EngineError("connection is closed")
        return self.db.sql(sql, args, named)

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        if self._closed:
            raise EngineError("connection is closed")
        return self.db.query(sql, args, named)

    def close(self) -> None:
        """Refuse further statements on this handle (idempotent);
        the underlying database stays open for other connections."""
        self._closed = True


class RowLevelSecurityProxy:
    """Query modification over per-table row predicates.

    ``predicates`` maps a table name to a predicate template over that
    table's columns, written with ``{T}`` standing for the table's alias,
    e.g. ``"{T}.UId = ?MyUId"``. Named parameters are bound from the
    session bindings at query time.
    """

    def __init__(
        self,
        db: Database,
        predicates: Mapping[str, str],
        bindings: Mapping[str, object],
    ):
        self.db = db
        self.bindings = dict(bindings)
        self._predicates: dict[str, str] = dict(predicates)
        self._closed = False
        for table in self._predicates:
            if table not in db.schema.tables:
                raise PolicyError(f"RLS predicate for unknown table {table!r}")

    def sql(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result | int:
        if self._closed:
            raise EngineError("connection is closed")
        stmt = self.db.parse(sql)
        if not isinstance(stmt, ast.Select):
            return self.db.sql(stmt, args, named)
        bound = bind_parameters(stmt, args, named)
        assert isinstance(bound, ast.Select)
        rewritten = self._rewrite(bound)
        return self.db.sql(rewritten)

    def query(
        self,
        sql: str | ast.Statement,
        args: Sequence[object] = (),
        named: Mapping[str, object] | None = None,
    ) -> Result:
        result = self.sql(sql, args, named)
        if not isinstance(result, Result):
            raise EngineError("query() requires a SELECT statement")
        return result

    def close(self) -> None:
        """Refuse further statements on this handle (idempotent);
        the underlying database stays open for other connections."""
        self._closed = True

    def _rewrite(self, stmt: ast.Select) -> ast.Select:
        """Conjoin each referenced table's predicate to the WHERE clause."""
        extra: list[ast.Expr] = []
        for ref in stmt.tables():
            template = self._predicates.get(ref.name)
            if template is None:
                continue
            predicate = parse_expression(template.replace("{T}", ref.alias))
            predicate_stmt = ast.Select(
                items=(ast.SelectItem(ast.Literal(1)),),
                sources=(ast.TableRef.of("_rls"),),
                where=predicate,
            )
            bound = bind_parameters(predicate_stmt, named=self.bindings)
            assert isinstance(bound, ast.Select)
            assert bound.where is not None
            extra.append(bound.where)
        if not extra:
            return stmt
        conjuncts = list(extra)
        if stmt.where is not None:
            conjuncts.append(stmt.where)
        where = conjuncts[0] if len(conjuncts) == 1 else ast.BoolOp("AND", tuple(conjuncts))
        return ast.Select(
            items=stmt.items,
            sources=stmt.sources,
            joins=stmt.joins,
            where=where,
            order_by=stmt.order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )
