"""Decision-template cache (the Blockaid-style fast path).

A fresh Allow decision is generalized into a *template*: the query's
skeleton (constants hollowed out), the equality pattern among the slot
values and the session parameters, and the trace facts the decision's
justification relied on — with their constants rewritten to slot/param
references. A later query with the same skeleton, the same equality
pattern, and matching facts in its trace is allowed without re-running
the checker.

Soundness. The checker's reasoning (constraint closure + homomorphism
search) over equality-compared constants is invariant under injective
renaming of those constants, so a decision replayed with renamed
constants — same equalities, same distinctness — remains valid, provided:

* slots whose literal occurs under an order comparison are *pinned*
  (must match exactly; renaming invariance does not cover ``<``), and
* slots whose value collides with a constant appearing in the policy's
  view definitions are pinned (the proof may have used that equality).

Block decisions are not cached: blocking depends on the *absence* of
helpful trace facts, which a growing trace can invalidate.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.enforce.decision import Decision
from repro.enforce.trace import Trace, is_labeled_null
from repro.policy.policy import Policy
from repro.relalg.cq import Atom, Const
from repro.sqlir import ast
from repro.sqlir.skeleton import Skeleton, skeletonize

# A fact-pattern argument: ("const", value) | ("slot", i) | ("param", name)
# | ("any", None) for labeled nulls.
_PatternArg = tuple[str, object]


@dataclass(frozen=True)
class _Template:
    """A cached, generalized Allow decision."""

    skeleton_key: object
    pinned: tuple[tuple[int, object], ...]  # (slot index, exact value)
    equality_pattern: tuple[tuple[int, ...], ...]  # partition of slots+params
    fact_patterns: tuple[tuple[str, tuple[_PatternArg, ...]], ...]
    reason: str
    #: Base tables the decision touches: the query's own tables plus the
    #: relations of every trace fact it relied on. Write-driven
    #: invalidation (the serving gateway) evicts by this set.
    tables: frozenset[str] = frozenset()


class DecisionCache:
    """Maps query skeletons to decision templates."""

    def __init__(self, policy: Policy):
        self._templates: dict[object, list[_Template]] = {}
        self._view_constants = policy.constants()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
    ) -> Decision | None:
        skeleton = skeletonize(stmt)
        key = skeleton.statement
        candidates = self._templates.get(key, ())
        param_items = sorted(bindings.items())
        for template in candidates:
            if self._matches(template, skeleton, param_items, trace):
                self.hits += 1
                from repro.sqlir.printer import to_sql

                return Decision(
                    allowed=True,
                    sql=to_sql(stmt),
                    reason=template.reason,
                    from_cache=True,
                )
        self.misses += 1
        return None

    def _matches(
        self,
        template: _Template,
        skeleton: Skeleton,
        param_items: list[tuple[str, object]],
        trace: Trace | None,
    ) -> bool:
        for index, value in template.pinned:
            if skeleton.values[index] != value:
                return False
        if _equality_partition(skeleton.values, param_items) != template.equality_pattern:
            return False
        if template.fact_patterns:
            if trace is None:
                return False
            facts = trace.facts
            params = dict(param_items)
            for rel, pattern_args in template.fact_patterns:
                if not any(
                    _fact_matches(fact, rel, pattern_args, skeleton.values, params)
                    for fact in facts
                ):
                    return False
        return True

    # -- insertion -------------------------------------------------------------

    def store(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
    ) -> None:
        """Generalize and store a fresh Allow decision."""
        if not decision.allowed or decision.from_cache:
            return
        skeleton = skeletonize(stmt)
        param_items = sorted(bindings.items())
        pinned = []
        for index, value in enumerate(skeleton.values):
            if not skeleton.generalizable[index] or value in self._view_constants:
                pinned.append((index, value))
        fact_patterns = []
        tables = {ref.name for ref in stmt.tables()}
        for fact in decision.facts_used:
            fact_patterns.append(
                (fact.rel, _pattern_of(fact, skeleton.values, param_items))
            )
            tables.add(fact.rel)
        template = _Template(
            skeleton_key=skeleton.statement,
            pinned=tuple(pinned),
            equality_pattern=_equality_partition(skeleton.values, param_items),
            fact_patterns=tuple(fact_patterns),
            reason=decision.reason + " [template]",
            tables=frozenset(tables),
        )
        self._templates.setdefault(skeleton.statement, []).append(template)

    # -- invalidation ----------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Evict every template touching ``table``; returns the eviction count.

        Decision soundness does not strictly require this (a decision
        depends on the query's shape, the policy, and *certified* trace
        facts, not on current table contents), but a serving deployment
        wants freshly-written data vetted by a fresh check rather than a
        months-old template, and conservative eviction keeps the cache
        from accumulating templates for churned tables.
        """
        evicted = 0
        for key in list(self._templates):
            templates = self._templates[key]
            kept = [t for t in templates if table not in t.tables]
            if len(kept) == len(templates):
                continue
            evicted += len(templates) - len(kept)
            if kept:
                self._templates[key] = kept
            else:
                del self._templates[key]
        self.invalidations += evicted
        return evicted

    def clear(self) -> int:
        """Drop every template (counts as invalidation); returns the count."""
        dropped = self.size
        self._templates.clear()
        self.invalidations += dropped
        return dropped

    @property
    def size(self) -> int:
        return sum(len(templates) for templates in self._templates.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _equality_partition(
    values: tuple[object, ...], param_items: list[tuple[str, object]]
) -> tuple[tuple[int, ...], ...]:
    """Partition of slot indexes (params get negative pseudo-indexes) by value.

    Captures both the required equalities and the required distinctness:
    two instantiations match iff they induce the same partition.
    """
    keyed: dict[object, list[int]] = {}
    for index, value in enumerate(values):
        keyed.setdefault(_value_key(value), []).append(index)
    for offset, (_, value) in enumerate(param_items):
        keyed.setdefault(_value_key(value), []).append(-(offset + 1))
    groups = [tuple(sorted(group)) for group in keyed.values() if len(group) > 1]
    groups.sort()
    return tuple(groups)


def _value_key(value: object) -> object:
    # bool is an int subclass; keep them distinct from 0/1.
    return (type(value).__name__, value)


def _pattern_of(
    fact: Atom,
    values: tuple[object, ...],
    param_items: list[tuple[str, object]],
) -> tuple[_PatternArg, ...]:
    params = {name: value for name, value in param_items}
    pattern: list[_PatternArg] = []
    for arg in fact.args:
        if is_labeled_null(arg):
            pattern.append(("any", None))
            continue
        if isinstance(arg, Const):
            slot = next(
                (i for i, v in enumerate(values) if _value_key(v) == _value_key(arg.value)),
                None,
            )
            if slot is not None:
                pattern.append(("slot", slot))
                continue
            param_name = next(
                (
                    name
                    for name, value in params.items()
                    if _value_key(value) == _value_key(arg.value)
                ),
                None,
            )
            if param_name is not None:
                pattern.append(("param", param_name))
                continue
            pattern.append(("const", arg.value))
            continue
        pattern.append(("any", None))
    return tuple(pattern)


def _fact_matches(
    fact: Atom,
    rel: str,
    pattern_args: tuple[_PatternArg, ...],
    values: tuple[object, ...],
    params: dict[str, object],
) -> bool:
    if fact.rel != rel or len(fact.args) != len(pattern_args):
        return False
    for arg, (kind, ref) in zip(fact.args, pattern_args):
        if kind == "any":
            continue
        if is_labeled_null(arg) or not isinstance(arg, Const):
            return False
        if kind == "slot":
            expected = values[ref]  # type: ignore[index]
        elif kind == "param":
            if ref not in params:
                return False
            expected = params[ref]
        else:
            expected = ref
        if _value_key(arg.value) != _value_key(expected):
            return False
    return True
