"""Decision-template cache (the Blockaid-style fast path).

A fresh Allow decision is generalized into a *template*: the query's
skeleton (constants hollowed out), the equality pattern among the slot
values and the session parameters, and the trace facts the decision's
justification relied on — with their constants rewritten to slot/param
references. A later query with the same skeleton, the same equality
pattern, and matching facts in its trace is allowed without re-running
the checker.

Soundness. The checker's reasoning (constraint closure + homomorphism
search) over equality-compared constants is invariant under injective
renaming of those constants, so a decision replayed with renamed
constants — same equalities, same distinctness — remains valid, provided:

* slots whose literal occurs under an order comparison are *pinned*
  (must match exactly; renaming invariance does not cover ``<``), and
* slots whose value collides with a constant appearing in the policy's
  view definitions are pinned (the proof may have used that equality).

Block decisions are not cached on the classic :meth:`DecisionCache.lookup`
path: blocking depends on the *absence* of helpful trace facts, which a
growing trace can invalidate. The **compiled** path (PR 8) does template
them, guarded: a Block whose fresh check consulted *zero* trace facts
(``facts_considered == 0``) is stored with the set of relations whose
facts could have changed the outcome (``guard_relations``), and replayed
only for requests whose trace still has no facts in those relations — in
that state the checker's outcome is a pure function of the skeleton, the
equality partition, and the pinned values, so renaming invariance applies
exactly as it does for Allows. Fragment blocks (untranslatable
statements) carry an empty guard and replay unconditionally, since
translatability is purely structural. See :meth:`lookup_compiled` /
:meth:`store_block` and docs/compilation.md.

Indexing. Two structures keep the hot paths sublinear at scale:

* Per skeleton key, a **pinned-slot discrimination index**
  (:class:`_SkeletonIndex`): templates are grouped by *which* slots they
  pin, and within a group selected by one dict probe on the pinned
  values — so a lookup touches only templates whose pins already match,
  instead of value-scanning every template under the key.
* A ``table -> {skeleton_key}`` **reverse index** so
  :meth:`DecisionCache.invalidate_table` visits only the keys whose
  templates actually touch the written table (O(affected), not a scan of
  the whole cache). ``invalidate_keys_scanned`` counts the keys visited,
  so tests can assert unaffected keys are never examined.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.enforce.decision import Decision
from repro.enforce.trace import Trace, is_labeled_null
from repro.policy.policy import Policy
from repro.relalg.cq import Atom, Const
from repro.sqlir import ast
from repro.sqlir.printer import to_sql
from repro.sqlir.skeleton import Skeleton, skeletonize

# A fact-pattern argument: ("const", value) | ("slot", i) | ("param", name)
# | ("any", None) for labeled nulls.
_PatternArg = tuple[str, object]


@dataclass(frozen=True)
class _Template:
    """A cached, generalized Allow decision."""

    skeleton_key: object
    pinned: tuple[tuple[int, object], ...]  # (slot index, exact value)
    equality_pattern: tuple[tuple[int, ...], ...]  # partition of slots+params
    fact_patterns: tuple[tuple[str, tuple[_PatternArg, ...]], ...]
    reason: str
    #: Base tables the decision touches: the query's own tables plus the
    #: relations of every trace fact it relied on. Write-driven
    #: invalidation (the serving gateway) evicts by this set.
    tables: frozenset[str] = frozenset()
    #: Allow templates replay an Allow; Block templates (compiled path
    #: only) replay a Block while their guard holds.
    allowed: bool = True
    #: For Block templates: relations whose trace facts could overturn
    #: the block. Replay requires the requester's trace to have *no*
    #: facts in any of them. Empty = unconditional (fragment blocks).
    guard_relations: frozenset[str] = frozenset()


class _SkeletonIndex:
    """Discrimination index over one skeleton key's templates.

    ``groups`` maps a pinned slot-index tuple to a dict keyed by the
    corresponding pinned-value tuples; one hash probe per group replaces
    the per-template pinned-value scan. The dict is keyed by *raw* values
    (not :func:`_value_key`) deliberately: the linear scan compared
    pinned values with ``!=``, under which ``True`` matches ``1`` — dict
    equality preserves exactly those semantics. Each template carries an
    insertion sequence number so candidates from different groups merge
    back into exact insertion order.
    """

    __slots__ = ("groups", "count")

    def __init__(self) -> None:
        self.groups: dict[tuple[int, ...], dict[tuple, list[tuple[int, _Template]]]] = {}
        self.count = 0

    def add(self, seq: int, template: _Template) -> None:
        slots = tuple(index for index, _ in template.pinned)
        values = tuple(value for _, value in template.pinned)
        self.groups.setdefault(slots, {}).setdefault(values, []).append((seq, template))
        self.count += 1

    def candidates(self, values: tuple[object, ...]) -> list[_Template]:
        """Templates whose pinned slots match ``values``, in insertion order."""
        if len(self.groups) == 1:
            # Common case: every template under this key pins the same slots.
            ((slots, by_value),) = self.groups.items()
            entries = by_value.get(tuple(values[i] for i in slots), ())
            return [template for _, template in entries]
        matched: list[tuple[int, _Template]] = []
        for slots, by_value in self.groups.items():
            entries = by_value.get(tuple(values[i] for i in slots))
            if entries:
                matched.extend(entries)
        matched.sort(key=lambda entry: entry[0])
        return [template for _, template in matched]

    def evict_touching(self, table: str) -> tuple[int, set[str]]:
        """Drop templates touching ``table``; returns (count, their tables)."""
        evicted = 0
        removed_tables: set[str] = set()
        for slots in list(self.groups):
            by_value = self.groups[slots]
            for values in list(by_value):
                entries = by_value[values]
                kept = [(s, t) for s, t in entries if table not in t.tables]
                if len(kept) == len(entries):
                    continue
                for _, template in entries:
                    if table in template.tables:
                        removed_tables |= template.tables
                evicted += len(entries) - len(kept)
                if kept:
                    by_value[values] = kept
                else:
                    del by_value[values]
            if not by_value:
                del self.groups[slots]
        self.count -= evicted
        return evicted, removed_tables

    def tables(self) -> set[str]:
        """Union of the tables of all remaining templates."""
        remaining: set[str] = set()
        for by_value in self.groups.values():
            for entries in by_value.values():
                for _, template in entries:
                    remaining |= template.tables
        return remaining

    def templates(self) -> Iterator[_Template]:
        for by_value in self.groups.values():
            for entries in by_value.values():
                for _, template in entries:
                    yield template


class DecisionCache:
    """Maps query skeletons to decision templates."""

    def __init__(self, policy: Policy):
        self._index: dict[object, _SkeletonIndex] = {}
        self._by_table: dict[str, set[object]] = {}
        self._view_constants = policy.constants()
        self._seq = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Skeleton keys visited by invalidate_table — the instrumentation
        #: the O(affected) claim is asserted against.
        self.invalidate_keys_scanned = 0
        # Compiled-path counters (checker fast path; see lookup_compiled).
        self.compiled_hits = 0
        self.compiled_misses = 0
        self.blocks_stored = 0
        self.duplicates_skipped = 0

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
        *,
        skeleton: Skeleton | None = None,
        param_items: list[tuple[str, object]] | None = None,
    ) -> Decision | None:
        """Replay a cached Allow for ``stmt``, or None.

        ``skeleton`` (when the caller holds a
        :class:`~repro.sqlir.prepared.PreparedPlan`) must be exactly
        ``skeletonize(stmt)``; passing it skips the per-request AST
        traversal. ``param_items`` is the session's pre-sorted
        ``sorted(bindings.items())`` — a per-session invariant callers
        hoist instead of re-sorting per lookup.
        """
        started = time.perf_counter()
        if skeleton is None:
            skeleton = skeletonize(stmt)
        index = self._index.get(skeleton.statement)
        if index is not None:
            if param_items is None:
                param_items = sorted(bindings.items())
            # Computed once per lookup; every candidate shares them.
            partition = _equality_partition(skeleton.values, param_items)
            params = dict(param_items)
            for template in index.candidates(skeleton.values):
                if not template.allowed:
                    continue  # Block templates serve only the compiled path.
                if self._matches(template, skeleton, partition, params, trace):
                    self.hits += 1
                    return Decision(
                        allowed=True,
                        sql=to_sql(stmt),
                        reason=template.reason,
                        from_cache=True,
                        duration_s=time.perf_counter() - started,
                    )
        self.misses += 1
        return None

    def lookup_compiled(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
        *,
        skeleton: Skeleton | None = None,
        param_items: list[tuple[str, object]] | None = None,
    ) -> Decision | None:
        """The checker's compiled fast path: Allow *and* Block templates.

        Unlike :meth:`lookup`, hits are returned ``from_cache=False`` —
        to the caller they are fresh decisions (the checker would have
        produced the same one), with ``facts_used`` reconstructed from
        the trace facts that satisfied the template's fact patterns so
        downstream generalization/metrics see a checker-shaped decision.
        ``skeleton``/``param_items`` follow :meth:`lookup`.
        """
        started = time.perf_counter()
        if skeleton is None:
            skeleton = skeletonize(stmt)
        index = self._index.get(skeleton.statement)
        if index is not None:
            if param_items is None:
                param_items = sorted(bindings.items())
            partition = _equality_partition(skeleton.values, param_items)
            params = dict(param_items)
            for template in index.candidates(skeleton.values):
                if template.allowed:
                    matched_facts: list[Atom] = []
                    if self._matches(
                        template, skeleton, partition, params, trace, matched_facts
                    ):
                        self.compiled_hits += 1
                        return Decision(
                            allowed=True,
                            sql=to_sql(stmt),
                            reason=template.reason,
                            facts_used=tuple(matched_facts),
                            duration_s=time.perf_counter() - started,
                            facts_considered=len(matched_facts),
                        )
                    continue
                if partition != template.equality_pattern:
                    continue
                if template.guard_relations and trace is not None:
                    if trace.relevant_facts(set(template.guard_relations)):
                        continue  # Guard broken: facts arrived, re-check.
                self.compiled_hits += 1
                return Decision(
                    allowed=False,
                    sql=to_sql(stmt),
                    reason=template.reason,
                    duration_s=time.perf_counter() - started,
                )
        self.compiled_misses += 1
        return None

    def _matches(
        self,
        template: _Template,
        skeleton: Skeleton,
        partition: tuple[tuple[int, ...], ...],
        params: dict[str, object],
        trace: Trace | None,
        collect: list[Atom] | None = None,
    ) -> bool:
        # Pinned values already matched: the discrimination index only
        # yields templates whose pinned slots equal the skeleton's values.
        if partition != template.equality_pattern:
            return False
        if template.fact_patterns:
            if trace is None:
                return False
            facts = trace.facts
            for rel, pattern_args in template.fact_patterns:
                witness = next(
                    (
                        fact
                        for fact in facts
                        if _fact_matches(
                            fact, rel, pattern_args, skeleton.values, params
                        )
                    ),
                    None,
                )
                if witness is None:
                    return False
                if collect is not None:
                    collect.append(witness)
        return True

    # -- insertion -------------------------------------------------------------

    def store(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
        *,
        skeleton: Skeleton | None = None,
    ) -> bool:
        """Generalize and store a fresh Allow decision.

        Returns True when a new template was actually inserted, so
        wrappers (the striped shared cache) can count stores without
        re-reading the cache size under a lock.
        """
        if not decision.allowed or decision.from_cache:
            return False
        if skeleton is None:
            skeleton = skeletonize(stmt)
        param_items = sorted(bindings.items())
        pinned = []
        for index, value in enumerate(skeleton.values):
            if not skeleton.generalizable[index] or value in self._view_constants:
                pinned.append((index, value))
        slot_of, param_of = _reference_maps(skeleton.values, param_items)
        fact_patterns = []
        tables = {ref.name for ref in stmt.tables()}
        for fact in decision.facts_used:
            fact_patterns.append((fact.rel, _pattern_of(fact, slot_of, param_of)))
            tables.add(fact.rel)
        template = _Template(
            skeleton_key=skeleton.statement,
            pinned=tuple(pinned),
            equality_pattern=_equality_partition(skeleton.values, param_items),
            fact_patterns=tuple(fact_patterns),
            reason=_template_reason(decision.reason),
            tables=frozenset(tables),
        )
        return self._insert_template(template)

    def store_block(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        decision: Decision,
        guard_relations: set[str],
        *,
        skeleton: Skeleton | None = None,
    ) -> bool:
        """Generalize a fresh *fact-free* Block for the compiled path.

        Only sound when the fresh check consulted zero trace facts
        (``facts_considered == 0``): then the outcome depends solely on
        the skeleton, the equality partition, and the pinned values, and
        injective renaming invariance carries it to any request matching
        those — provided no facts have since appeared in
        ``guard_relations`` (enforced at :meth:`lookup_compiled` time).
        Bindings colliding with structural view constants are skipped
        (the proof may have used that equality; params are never pinned).
        """
        if decision.allowed or decision.from_cache or decision.facts_considered:
            return False
        param_items = sorted(bindings.items())
        try:
            if any(value in self._view_constants for _, value in param_items):
                return False
        except TypeError:  # unhashable binding value: don't template it
            return False
        if skeleton is None:
            skeleton = skeletonize(stmt)
        pinned = []
        for index, value in enumerate(skeleton.values):
            if not skeleton.generalizable[index] or value in self._view_constants:
                pinned.append((index, value))
        tables = {ref.name for ref in stmt.tables()} | guard_relations
        template = _Template(
            skeleton_key=skeleton.statement,
            pinned=tuple(pinned),
            equality_pattern=_equality_partition(skeleton.values, param_items),
            fact_patterns=(),
            reason=_template_reason(decision.reason),
            tables=frozenset(tables),
            allowed=False,
            guard_relations=frozenset(guard_relations),
        )
        if not self._insert_template(template):
            return False
        self.blocks_stored += 1
        return True

    def _insert_template(self, template: _Template) -> bool:
        """Index a ready-made template (shared by store and benchmarks).

        Exact duplicates are skipped (returns False): the checker's
        compiled store and the gateway's shared cache are the same object
        now, so both ends may try to generalize the same decision.
        """
        index = self._index.setdefault(template.skeleton_key, _SkeletonIndex())
        slots = tuple(i for i, _ in template.pinned)
        values = tuple(value for _, value in template.pinned)
        existing = index.groups.get(slots, {}).get(values, ())
        if any(current == template for _, current in existing):
            self.duplicates_skipped += 1
            return False
        index.add(self._seq, template)
        self._seq += 1
        for table in template.tables:
            self._by_table.setdefault(table, set()).add(template.skeleton_key)
        return True

    # -- invalidation ----------------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Evict every template touching ``table``; returns the eviction count.

        Decision soundness does not strictly require this (a decision
        depends on the query's shape, the policy, and *certified* trace
        facts, not on current table contents), but a serving deployment
        wants freshly-written data vetted by a fresh check rather than a
        months-old template, and conservative eviction keeps the cache
        from accumulating templates for churned tables.

        Only skeleton keys listed in the reverse index for ``table`` are
        visited; keys with no template touching the table are never
        examined (see ``invalidate_keys_scanned``).
        """
        evicted = 0
        for key in self._by_table.pop(table, ()):
            self.invalidate_keys_scanned += 1
            index = self._index[key]
            dropped, removed_tables = index.evict_touching(table)
            evicted += dropped
            if index.count:
                remaining_tables = index.tables()
            else:
                del self._index[key]
                remaining_tables = set()
            # Unlink this key from the other tables of the evicted
            # templates, unless a surviving template still touches them.
            for other in removed_tables:
                if other == table or other in remaining_tables:
                    continue
                bucket = self._by_table.get(other)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._by_table[other]
        self.invalidations += evicted
        return evicted

    def clear(self) -> int:
        """Drop every template (counts as invalidation); returns the count."""
        dropped = self.size
        self._index.clear()
        self._by_table.clear()
        self.invalidations += dropped
        return dropped

    def iter_templates(self) -> Iterator[_Template]:
        """All live templates, in no particular order."""
        for index in self._index.values():
            yield from index.templates()

    @property
    def size(self) -> int:
        return sum(index.count for index in self._index.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _equality_partition(
    values: tuple[object, ...], param_items: list[tuple[str, object]]
) -> tuple[tuple[int, ...], ...]:
    """Partition of slot indexes (params get negative pseudo-indexes) by value.

    Captures both the required equalities and the required distinctness:
    two instantiations match iff they induce the same partition.
    """
    keyed: dict[object, list[int]] = {}
    for index, value in enumerate(values):
        keyed.setdefault(_value_key(value), []).append(index)
    for offset, (_, value) in enumerate(param_items):
        keyed.setdefault(_value_key(value), []).append(-(offset + 1))
    groups = [tuple(sorted(group)) for group in keyed.values() if len(group) > 1]
    groups.sort()
    return tuple(groups)


def _value_key(value: object) -> object:
    # bool is an int subclass; keep them distinct from 0/1.
    return (type(value).__name__, value)


def _template_reason(reason: str) -> str:
    """Tag a reason as template-served, idempotently.

    A compiled hit already carries the " [template]" suffix; when the
    proxy re-stores that decision into the (unified) cache the tag must
    not stack.
    """
    return reason if reason.endswith(" [template]") else reason + " [template]"


def _reference_maps(
    values: tuple[object, ...], param_items: list[tuple[str, object]]
) -> tuple[dict[object, int], dict[object, str]]:
    """First-occurrence value-key → slot index / param name maps.

    Built once per :meth:`DecisionCache.store`; ``setdefault`` keeps the
    *first* matching slot/param for a value, matching the order the old
    linear ``next(...)`` scans would have found.
    """
    slot_of: dict[object, int] = {}
    for index, value in enumerate(values):
        slot_of.setdefault(_value_key(value), index)
    param_of: dict[object, str] = {}
    for name, value in param_items:
        param_of.setdefault(_value_key(value), name)
    return slot_of, param_of


def _pattern_of(
    fact: Atom,
    slot_of: dict[object, int],
    param_of: dict[object, str],
) -> tuple[_PatternArg, ...]:
    pattern: list[_PatternArg] = []
    for arg in fact.args:
        if is_labeled_null(arg):
            pattern.append(("any", None))
            continue
        if isinstance(arg, Const):
            key = _value_key(arg.value)
            slot = slot_of.get(key)
            if slot is not None:
                pattern.append(("slot", slot))
                continue
            param_name = param_of.get(key)
            if param_name is not None:
                pattern.append(("param", param_name))
                continue
            pattern.append(("const", arg.value))
            continue
        pattern.append(("any", None))
    return tuple(pattern)


def _fact_matches(
    fact: Atom,
    rel: str,
    pattern_args: tuple[_PatternArg, ...],
    values: tuple[object, ...],
    params: dict[str, object],
) -> bool:
    if fact.rel != rel or len(fact.args) != len(pattern_args):
        return False
    for arg, (kind, ref) in zip(fact.args, pattern_args):
        if kind == "any":
            continue
        if is_labeled_null(arg) or not isinstance(arg, Const):
            return False
        if kind == "slot":
            expected = values[ref]  # type: ignore[index]
        elif kind == "param":
            if ref not in params:
                return False
            expected = params[ref]
        else:
            expected = ref
        if _value_key(arg.value) != _value_key(expected):
            return False
    return True
