"""Query traces and the ground facts they certify.

When the proxy allows a query and the database returns rows, every
returned row certifies the existence of matching rows in the base tables.
Example 2.1 hinges on this: ``Q1`` returning a row certifies the fact
``Attendance(1, 2)``, which later makes ``Q2`` compliant.

Fact extraction walks the query's CQ body: for each returned row, an atom
argument whose value is determined (a constant, a head variable bound by
the row, or a variable the comparisons pin to a constant) becomes that
constant; undetermined arguments become *labeled nulls* — fresh variables
meaning "some value exists here". Labeled nulls are shared within a row,
so joins are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import Result
from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, Atom, Comp, Const, Term, Var

_NULL_PREFIX = "\x00ln"


def is_labeled_null(term: Term) -> bool:
    return isinstance(term, Var) and term.name.startswith(_NULL_PREFIX)


@dataclass
class TraceEntry:
    """One allowed-and-executed query with its result."""

    sql: str
    query: CQ | None  # None when the query had no CQ translation
    result_columns: tuple[str, ...]
    result_rows: tuple[tuple, ...]
    facts: tuple[Atom, ...] = ()

    @property
    def returned_rows(self) -> int:
        return len(self.result_rows)


class Trace:
    """The per-session history of queries and the facts they certify."""

    def __init__(self, max_facts: int = 256):
        self.entries: list[TraceEntry] = []
        self._facts: list[Atom] = []
        self._fact_set: set[Atom] = set()
        self._null_counter = 0
        self.max_facts = max_facts
        #: Append-only log of fact-list mutations: ``("add", fact)`` when a
        #: fact enters the list, ``("refresh", fact)`` when a re-certified
        #: fact moves to the end. Facts dropped by the ``max_facts`` cap
        #: emit nothing. Replaying the log reproduces the fact list (with
        #: its recency order) exactly — the checker-pool protocol ships
        #: ``events[cursor:]`` to worker processes instead of re-pickling
        #: the whole trace on every check.
        self.events: list[tuple[str, Atom]] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def facts(self) -> tuple[Atom, ...]:
        return tuple(self._facts)

    def record(self, sql: str, query: CQ | None, result: Result) -> TraceEntry:
        """Record an executed query; extract and accumulate its facts."""
        facts: tuple[Atom, ...] = ()
        if query is not None and result.rows:
            facts = tuple(self._extract_facts(query, result))
        entry = TraceEntry(
            sql=sql,
            query=query,
            result_columns=tuple(result.columns),
            result_rows=tuple(result.rows),
            facts=facts,
        )
        self.entries.append(entry)
        for fact in facts:
            if fact in self._fact_set:
                # Re-certified: refresh recency so the checker's
                # most-recent-facts selection sees it again.
                self._facts.remove(fact)
                self._facts.append(fact)
                self.events.append(("refresh", fact))
            elif len(self._facts) < self.max_facts:
                self._fact_set.add(fact)
                self._facts.append(fact)
                self.events.append(("add", fact))
        return entry

    def relevant_facts(self, relations: set[str]) -> list[Atom]:
        """Facts over the given relations (what a compliance check conjoins)."""
        return [fact for fact in self._facts if fact.rel in relations]

    def _fresh_null(self) -> Var:
        self._null_counter += 1
        return Var(f"{_NULL_PREFIX}{self._null_counter}")

    def _extract_facts(self, query: CQ, result: Result) -> list[Atom]:
        facts: list[Atom] = []
        head_vars = [
            (index, term)
            for index, term in enumerate(query.head)
            if isinstance(term, Var)
        ]
        for row in result.rows:
            row_comps = list(query.comps)
            for index, var in head_vars:
                row_comps.append(Comp("=", var, Const(row[index])))
            closure = ConstraintSet(row_comps)
            if not closure.consistent():
                continue  # result row contradicts the query; defensive skip
            nulls: dict[Var, Var] = {}
            for atom in query.body:
                resolved: list[Term] = []
                for arg in atom.args:
                    if isinstance(arg, Const):
                        resolved.append(arg)
                        continue
                    if isinstance(arg, Var):
                        canon = closure.canon(arg)
                        if isinstance(canon, Const):
                            resolved.append(canon)
                        else:
                            # Key nulls by equivalence class so joined
                            # variables share one labeled null.
                            key = canon if isinstance(canon, Var) else arg
                            null = nulls.get(key)
                            if null is None:
                                null = self._fresh_null()
                                nulls[key] = null
                            resolved.append(null)
                        continue
                    # A residual param in a bound query should not happen;
                    # treat it as undetermined.
                    resolved.append(self._fresh_null())
                facts.append(Atom(atom.rel, tuple(resolved)))
        return facts
