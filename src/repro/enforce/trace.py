"""Query traces and the ground facts they certify.

When the proxy allows a query and the database returns rows, every
returned row certifies the existence of matching rows in the base tables.
Example 2.1 hinges on this: ``Q1`` returning a row certifies the fact
``Attendance(1, 2)``, which later makes ``Q2`` compliant.

Fact extraction walks the query's CQ body: for each returned row, an atom
argument whose value is determined (a constant, a head variable bound by
the row, or a variable the comparisons pin to a constant) becomes that
constant; undetermined arguments become *labeled nulls* — fresh variables
meaning "some value exists here". Labeled nulls are shared within a row,
so joins are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import Result
from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, Atom, Comp, Const, Term, Var

_NULL_PREFIX = "\x00ln"


def is_labeled_null(term: Term) -> bool:
    return isinstance(term, Var) and term.name.startswith(_NULL_PREFIX)


@dataclass
class TraceEntry:
    """One allowed-and-executed query with its result."""

    sql: str
    query: CQ | None  # None when the query had no CQ translation
    result_columns: tuple[str, ...]
    result_rows: tuple[tuple, ...]
    facts: tuple[Atom, ...] = ()

    @property
    def returned_rows(self) -> int:
        return len(self.result_rows)


class Trace:
    """The per-session history of queries and the facts they certify."""

    def __init__(self, max_facts: int = 256):
        self.entries: list[TraceEntry] = []
        self._facts: list[Atom] = []
        self._fact_set: set[Atom] = set()
        self._null_counter = 0
        self.max_facts = max_facts
        #: Append-only log of fact-list mutations: ``("add", fact)`` when a
        #: fact enters the list, ``("refresh", fact)`` when a re-certified
        #: fact moves to the end. Facts dropped by the ``max_facts`` cap
        #: emit nothing. Replaying the log reproduces the fact list (with
        #: its recency order) exactly — the checker-pool protocol ships
        #: ``events[cursor:]`` to worker processes instead of re-pickling
        #: the whole trace on every check.
        self.events: list[tuple[str, Atom]] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def facts(self) -> tuple[Atom, ...]:
        return tuple(self._facts)

    def record(self, sql: str, query: CQ | None, result: Result) -> TraceEntry:
        """Record an executed query; extract and accumulate its facts."""
        facts: tuple[Atom, ...] = ()
        if query is not None and result.rows:
            facts = tuple(self._extract_facts(query, result))
        entry = TraceEntry(
            sql=sql,
            query=query,
            result_columns=tuple(result.columns),
            result_rows=tuple(result.rows),
            facts=facts,
        )
        self.entries.append(entry)
        for fact in facts:
            if fact in self._fact_set:
                # Re-certified: refresh recency so the checker's
                # most-recent-facts selection sees it again.
                self._facts.remove(fact)
                self._facts.append(fact)
                self.events.append(("refresh", fact))
            elif len(self._facts) < self.max_facts:
                self._fact_set.add(fact)
                self._facts.append(fact)
                self.events.append(("add", fact))
        return entry

    def relevant_facts(self, relations: set[str]) -> list[Atom]:
        """Facts over the given relations (what a compliance check conjoins)."""
        return [fact for fact in self._facts if fact.rel in relations]

    def _fresh_null(self) -> Var:
        self._null_counter += 1
        return Var(f"{_NULL_PREFIX}{self._null_counter}")

    def _extract_facts(self, query: CQ, result: Result) -> list[Atom]:
        """Facts certified by ``result`` under ``query``.

        Semantics are defined by :meth:`_extract_facts_general`: close the
        query's comparisons together with ``head_var = row value`` per
        row, then resolve each atom argument to its canonical form. For
        equality-only queries — every hot-path shape — that per-row
        closure is wasteful: the *structure* of the resolution (which
        argument is a fixed constant, which follows a head column, which
        classes share a labeled null) is row-independent, so it is
        computed once here and each row only substitutes values and runs
        the two cheap consistency checks a row can actually fail
        (row value vs. class constant, and equal head columns).
        """
        if any(comp.op != "=" for comp in query.comps):
            return self._extract_facts_general(query, result)
        closure = ConstraintSet(query.comps)
        if not closure.consistent():
            return []  # every per-row closure would be inconsistent too
        # Row-independent structure: equivalence classes of head columns,
        # and a resolution op per atom argument.
        head_cols: dict[Term, list[int]] = {}
        for index, term in enumerate(query.head):
            if isinstance(term, Var):
                head_cols.setdefault(closure.canon(term), []).append(index)
        const_checks = [
            (columns, rep.value)
            for rep, columns in head_cols.items()
            if isinstance(rep, Const)
        ]
        equal_checks = [
            columns for rep, columns in head_cols.items()
            if len(columns) > 1 and not isinstance(rep, Const)
        ]
        plan: list[tuple[str, list[tuple[str, object]]]] = []
        for atom in query.body:
            ops: list[tuple[str, object]] = []
            for arg in atom.args:
                if isinstance(arg, Const):
                    ops.append(("const", arg))
                elif isinstance(arg, Var):
                    rep = closure.canon(arg)
                    if isinstance(rep, Const):
                        ops.append(("const", rep))
                    elif rep in head_cols:
                        ops.append(("col", head_cols[rep][0]))
                    else:
                        # Same null-key rule as the general path: the class
                        # representative when it is a Var, the argument
                        # itself otherwise.
                        ops.append(("null", rep if isinstance(rep, Var) else arg))
                else:
                    # A residual param in a bound query should not happen;
                    # treat it as undetermined (fresh per occurrence).
                    ops.append(("fresh", None))
            plan.append((atom.rel, ops))

        def values_equal(a: object, b: object) -> bool:
            # Mirrors ConstraintSet._union's constant-merge test exactly.
            return not (a != b or (a is None) != (b is None))

        facts: list[Atom] = []
        for row in result.rows:
            if any(
                not values_equal(row[column], value)
                for columns, value in const_checks
                for column in columns
            ):
                continue
            if any(
                not values_equal(row[columns[0]], row[column])
                for columns in equal_checks
                for column in columns[1:]
            ):
                continue
            nulls: dict[object, Var] = {}
            for rel, ops in plan:
                resolved: list[Term] = []
                for kind, payload in ops:
                    if kind == "const":
                        resolved.append(payload)  # type: ignore[arg-type]
                    elif kind == "col":
                        resolved.append(Const(row[payload]))  # type: ignore[index]
                    elif kind == "null":
                        null = nulls.get(payload)
                        if null is None:
                            null = self._fresh_null()
                            nulls[payload] = null
                        resolved.append(null)
                    else:
                        resolved.append(self._fresh_null())
                facts.append(Atom(rel, tuple(resolved)))
        return facts

    def _extract_facts_general(self, query: CQ, result: Result) -> list[Atom]:
        """The reference extraction: one constraint closure per row.

        Kept for queries whose comparisons go beyond equality (order or
        non-equality constraints can make a row's closure inconsistent in
        ways the precomputed plan does not model).
        """
        facts: list[Atom] = []
        head_vars = [
            (index, term)
            for index, term in enumerate(query.head)
            if isinstance(term, Var)
        ]
        for row in result.rows:
            row_comps = list(query.comps)
            for index, var in head_vars:
                row_comps.append(Comp("=", var, Const(row[index])))
            closure = ConstraintSet(row_comps)
            if not closure.consistent():
                continue  # result row contradicts the query; defensive skip
            nulls: dict[Var, Var] = {}
            for atom in query.body:
                resolved: list[Term] = []
                for arg in atom.args:
                    if isinstance(arg, Const):
                        resolved.append(arg)
                        continue
                    if isinstance(arg, Var):
                        canon = closure.canon(arg)
                        if isinstance(canon, Const):
                            resolved.append(canon)
                        else:
                            # Key nulls by equivalence class so joined
                            # variables share one labeled null.
                            key = canon if isinstance(canon, Var) else arg
                            null = nulls.get(key)
                            if null is None:
                                null = self._fresh_null()
                                nulls[key] = null
                            resolved.append(null)
                        continue
                    # A residual param in a bound query should not happen;
                    # treat it as undetermined.
                    resolved.append(self._fresh_null())
                facts.append(Atom(atom.rel, tuple(resolved)))
        return facts
