"""Decision objects and the violation exception."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relalg.rewrite import Rewriting
from repro.util.errors import DbacError


@dataclass
class Decision:
    """The outcome of vetting one query.

    ``rewritings`` holds, for an allowed query, one witnessing equivalent
    rewriting per disjunct — the machine-checkable justification that the
    query's answer is computable from the policy views and trace facts.
    """

    allowed: bool
    sql: str
    reason: str
    rewritings: tuple[Rewriting, ...] = ()
    #: Every trace fact the justification conjoined into the query — the
    #: decision is only valid while these facts are certified, so the
    #: cache template requires them all.
    facts_used: tuple = ()
    from_cache: bool = False
    duration_s: float = 0.0
    facts_considered: int = 0
    #: Which policy generation decided this statement (stamped by the
    #: gateway; ``None`` for bare-proxy decisions, which have no epochs).
    policy_version: int | None = None

    def describe(self) -> str:
        verdict = "ALLOW" if self.allowed else "BLOCK"
        origin = " (cached)" if self.from_cache else ""
        return f"{verdict}{origin}: {self.sql} — {self.reason}"

    def explain(self) -> str:
        """A multi-line justification an operator can audit.

        For an allowed query, shows the witnessing rewriting per disjunct
        (which views compute the answer) and the certified trace facts it
        leaned on; for a blocked one, restates what was missing.
        """
        lines = [self.describe()]
        for position, rewriting in enumerate(self.rewritings):
            prefix = f"  disjunct {position}: " if len(self.rewritings) > 1 else "  "
            lines.append(f"{prefix}answer = {rewriting.describe()}")
        if self.facts_used:
            lines.append("  certified trace facts relied upon:")
            for fact in self.facts_used:
                lines.append(f"    {fact!r}")
        if not self.allowed and not self.from_cache and "fragment" not in self.reason:
            lines.append(
                "  (no combination of policy views — together with certified"
                " trace facts, if any — computes this query's answer)"
            )
        return "\n".join(lines)


class PolicyViolation(DbacError):
    """Raised by the proxy when a query is blocked.

    Carries the :class:`Decision` so diagnosis tooling (§5) can pick up
    exactly where enforcement left off.
    """

    def __init__(self, decision: Decision):
        super().__init__(decision.describe())
        self.decision = decision
