"""The compliance checker: is this query's answer covered by the policy?

The check is the formalization of Blockaid's guarantee sketched in §2.2:
a query ``Q`` issued by user ``u`` with trace ``T`` is *compliant* when
``Q ∧ facts(T)`` has a rewriting over the policy views instantiated with
``u`` whose expansion is equivalent to ``Q ∧ facts(T)``. Then on every
database consistent with the trace, ``Q``'s answer is a function of
information the policy already reveals.

Soundness: conjoining certified trace facts preserves the query's answer
on all trace-consistent databases, and expansion equivalence means the
rewriting computes exactly that answer from view contents. Incompleteness
(the check may block a theoretically-compliant query) comes from the
homomorphism containment test and from restricting rewritings to
conjunctive combinations of views — both conservative.

The compiled path (PR 8): hand the checker a
:class:`~repro.relalg.compile.CompiledPolicy` (built once per policy
epoch) and a per-epoch skeleton store, and :meth:`check` first tries to
instantiate a pre-derived decision template — "bind parameters + satisfy
fact patterns" — falling back to the full containment search only for
never-seen statement skeletons, whose outcome is then compiled into a
new template for the rest of the epoch. Decisions are identical either
way (E17 verifies zero disagreements); only the work per decision
changes. ``allow_compiled=False`` forces the full path — the gateway's
``verify_cached_decisions`` mode uses it so verification stays
independent of the very templates it is auditing.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.enforce.decision import Decision
from repro.enforce.trace import Trace
from repro.policy.policy import Policy
from repro.relalg.cq import CQ, UCQ, Atom
from repro.relalg.rewrite import Rewriting, ViewDef, find_equivalent_rewriting
from repro.relalg.translate import SchemaInfo, translate_select
from repro.sqlir import ast
from repro.sqlir.printer import to_sql
from repro.sqlir.skeleton import Skeleton
from repro.util.errors import TranslationError

if TYPE_CHECKING:
    from repro.enforce.cache import DecisionCache
    from repro.relalg.compile import CompiledPolicy


class ComplianceChecker:
    """Decides allow/block for bound SELECT statements.

    ``history_enabled=False`` disables trace facts — the ablation that
    experiment E1 uses to show Q2 of Example 2.1 being blocked without
    history.

    ``compiled`` switches on the epoch-compiled fast path: view
    dispatch/instantiation comes from the
    :class:`~repro.relalg.compile.CompiledPolicy`, and per-skeleton
    decision templates are served from / stored into ``skeletons`` (a
    :class:`~repro.enforce.cache.DecisionCache`; the gateway passes its
    shared epoch store so cross-shard TEMPLATE events seed this same
    structure, a private one is created when omitted).
    """

    def __init__(
        self,
        schema: SchemaInfo,
        policy: Policy,
        history_enabled: bool = True,
        max_candidates: int = 2000,
        compiled: "CompiledPolicy | None" = None,
        skeletons: "DecisionCache | None" = None,
    ):
        self.schema = schema
        self.policy = policy
        self.history_enabled = history_enabled
        self.max_candidates = max_candidates
        self.compiled = compiled
        if compiled is not None and skeletons is None:
            from repro.enforce.cache import DecisionCache

            skeletons = DecisionCache(policy)
        self.skeletons = skeletons
        # Structural constants from the view definitions ("public", an
        # age bound): worthless as connectivity evidence, since they link
        # every fact mentioning them to every query mentioning them.
        self._view_constants = (
            set(compiled.view_constants) if compiled is not None else policy.constants()
        )

    def translate(self, stmt: ast.Select) -> UCQ | None:
        """The query's UCQ, or None when outside the reasoning fragment."""
        try:
            return translate_select(stmt, self.schema)
        except TranslationError:
            return None

    def check(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None = None,
        allow_compiled: bool = True,
        skeleton: Skeleton | None = None,
    ) -> Decision:
        """Vet one bound SELECT for the session described by ``bindings``.

        ``bindings`` instantiates the policy's parameters (typically
        ``{"MyUId": user_id}``). ``allow_compiled=False`` bypasses the
        template fast path *and* suppresses template learning, giving an
        independent full-path decision (used by cached-decision
        verification). ``skeleton`` is an optional precomputed
        ``skeletonize(stmt)`` (from a prepared-statement plan) forwarded
        to the template store so the fast path skips re-skeletonizing.
        """
        effective_trace = trace if self.history_enabled else None
        use_templates = (
            allow_compiled and self.compiled is not None and self.skeletons is not None
        )
        if use_templates:
            started = time.perf_counter()
            hit = self.skeletons.lookup_compiled(
                stmt, bindings, effective_trace, skeleton=skeleton
            )
            if hit is not None:
                hit.duration_s = time.perf_counter() - started
                return hit
        decision, relevant = self._check_full(stmt, bindings, trace)
        if use_templates:
            if decision.allowed:
                self.skeletons.store(stmt, bindings, decision, skeleton=skeleton)
            else:
                self.skeletons.store_block(
                    stmt, bindings, decision, relevant, skeleton=skeleton
                )
        return decision

    def _check_full(
        self,
        stmt: ast.Select,
        bindings: Mapping[str, object],
        trace: Trace | None,
    ) -> tuple[Decision, set[str]]:
        """The full containment path; also returns the relevant-relation
        set so fact-free Blocks can be templated with the right guard."""
        started = time.perf_counter()
        sql = to_sql(stmt)
        query = self.translate(stmt)
        if query is None:
            return (
                Decision(
                    allowed=False,
                    sql=sql,
                    reason="query is outside the analyzable fragment",
                    duration_s=time.perf_counter() - started,
                ),
                set(),
            )
        views = (
            self.compiled.view_defs(bindings)
            if self.compiled is not None
            else self.policy.view_defs(bindings)
        )
        facts: list[Atom] = []
        relevant: set[str] = set()
        if self.history_enabled:
            relevant = (
                self.compiled.relevant_relations(set(query.relations()))
                if self.compiled is not None
                else self._relevant_relations(query, views)
            )
            if trace is not None:
                facts = trace.relevant_facts(relevant)
        rewritings: list[Rewriting] = []
        facts_used: list[Atom] = []
        for disjunct in query.disjuncts:
            outcome = self._check_disjunct(disjunct, views, facts, bindings)
            if outcome is not None:
                rewriting, used = outcome
                for fact in used:
                    if fact not in facts_used:
                        facts_used.append(fact)
            else:
                rewriting = None
            if rewriting is None:
                return (
                    Decision(
                        allowed=False,
                        sql=sql,
                        reason=(
                            "no equivalent rewriting over policy views"
                            + (" and trace facts" if facts else "")
                        ),
                        duration_s=time.perf_counter() - started,
                        facts_considered=len(facts),
                    ),
                    relevant,
                )
            rewritings.append(rewriting)
        return (
            Decision(
                allowed=True,
                sql=sql,
                reason="answer is computable from policy views"
                + (" and trace facts" if any(r.fact_atoms for r in rewritings) else ""),
                rewritings=tuple(rewritings),
                facts_used=tuple(facts_used),
                duration_s=time.perf_counter() - started,
                facts_considered=len(facts),
            ),
            relevant,
        )

    def check_batch(
        self,
        items: list[tuple[ast.Select, Mapping[str, object], Trace | None]],
    ) -> list[Decision]:
        """Vet a batch of queued statements, sharing compilation work.

        Items are checked in order against the same epoch artifacts, so
        the first fresh check of a skeleton immediately templates it and
        every later same-shaped item in the batch instantiates the
        template instead of re-running containment — the gateway's
        :class:`~repro.serve.batch.CheckBatcher` rides this to share
        canonicalization/constraint-closure work across sessions.
        """
        return [self.check(stmt, bindings, trace) for stmt, bindings, trace in items]

    def _relevant_relations(self, query: UCQ, views: list[ViewDef]) -> set[str]:
        """Relations whose trace facts could help this query.

        The query's own relations, plus every relation co-occurring with
        one of them in some view body (a view may join a query relation
        against a guard relation — exactly the Example 2.1 shape).
        """
        relations = set(query.relations())
        for view in views:
            view_relations = view.cq.relations()
            if view_relations & relations:
                relations |= view_relations
        return relations

    def _check_disjunct(
        self,
        disjunct: CQ,
        views: list[ViewDef],
        facts: list[Atom],
        bindings: Mapping[str, object],
    ) -> tuple[Rewriting, list[Atom]] | None:
        # Fast path: no facts needed.
        rewriting = find_equivalent_rewriting(
            disjunct, views, max_candidates=self.max_candidates
        )
        if rewriting is not None:
            return rewriting, []
        if not facts:
            return None
        # Iterative deepening over trace facts: first the facts directly
        # tied to the query's constants, then the transitive closure. The
        # narrow attempt resolves the common guarded-handler shape (one
        # check query, one fetch) without a combinatorial search.
        narrow = self._select_facts(disjunct, facts, {}, transitive=False, cap=4)
        if narrow:
            rewriting = self._try_with_facts(disjunct, views, narrow)
            if rewriting is not None:
                return rewriting, narrow
        wide = self._select_facts(disjunct, facts, bindings, transitive=True, cap=8)
        if wide and wide != narrow:
            rewriting = self._try_with_facts(disjunct, views, wide)
            if rewriting is not None:
                return rewriting, wide
        return None

    def _try_with_facts(
        self, disjunct: CQ, views: list[ViewDef], useful: list[Atom]
    ) -> Rewriting | None:
        augmented = CQ(
            head=disjunct.head,
            body=disjunct.body + tuple(useful),
            comps=disjunct.comps,
            head_names=disjunct.head_names,
            name=(disjunct.name or "Q") + "_with_facts",
        )
        return find_equivalent_rewriting(
            augmented, views, facts=useful, max_candidates=self.max_candidates
        )

    def _select_facts(
        self,
        disjunct: CQ,
        facts: list[Atom],
        bindings: Mapping[str, object],
        transitive: bool = True,
        cap: int = 10,
    ) -> list[Atom]:
        """Facts worth conjoining, by transitive constant reachability.

        Conjoining every trace fact would make candidate assembly blow up
        combinatorially as the session runs. A fact can only tie the query
        to the views if it is linked to the query through shared constants
        — possibly via other facts (a Posts fact introduces the author id
        that a Friendships fact then connects to). Seed with the query's
        constants and the session bindings, then close transitively.

        Structural view constants are ignored as links: a value like
        ``'friends'`` occurs in every friends-post fact, so reaching
        through it floods the selection with unrelated facts and — under
        the cap — crowds out the one guard fact that actually certifies
        the query (observed at serving scale, where traces are long).
        Within the cap, facts reached *directly* from the query beat
        transitively-reached ones, most recent first.
        """
        from repro.relalg.cq import Const

        def informative(values: set[object]) -> set[object]:
            return values - self._view_constants

        reached: set[object] = informative(set(bindings.values()))
        for comp in disjunct.comps:
            for term in (comp.left, comp.right):
                if isinstance(term, Const):
                    reached.add(term.value)
        for atom in disjunct.body:
            for arg in atom.args:
                if isinstance(arg, Const):
                    reached.add(arg.value)
        reached = informative(reached)
        rounds: list[list[Atom]] = []
        remaining = list(facts)
        changed = True
        while changed:
            changed = False
            matched: list[Atom] = []
            still_remaining = []
            for fact in remaining:
                fact_consts = informative(
                    {arg.value for arg in fact.args if isinstance(arg, Const)}
                )
                if fact_consts & reached:
                    matched.append(fact)
                    if transitive:
                        reached |= fact_consts
                    changed = True
                else:
                    still_remaining.append(fact)
            if matched:
                rounds.append(matched)
            remaining = still_remaining
            if not transitive:
                break
        selected: list[Atom] = []
        quota = cap
        for matched in rounds:
            if quota <= 0:
                break
            take = matched[-quota:]
            selected.extend(take)
            quota -= len(take)
        return selected
