"""Language-agnostic policy extraction: specification mining (§3.2.2).

The miner treats the application as a black box: it runs a stream of
requests against an instrumented connection, records each query with its
arguments and result, and generalizes the observations into views.

Generalization, per query template (queries identical up to constants):

* a constant slot that always equals the session user becomes the policy
  parameter ``?MyUId``;
* a slot that takes multiple values across observations becomes a free
  variable (promoted to the view head — the application evidently ranges
  over it);
* a slot constant across all observations stays a constant — *unless* an
  **opacity hint** says the column holds opaque identifiers, or **active
  constraint discovery** (:mod:`repro.extract.active`) shows the constant
  is data-derived rather than baked into the code;
* a preceding same-request query that returned rows becomes a *guard*
  when the correspondence between its output/arguments and the query's
  arguments is consistent across every observation — this is what turns
  the ``Q1; Q2`` trace of Example 2.1 into the join view V2;
* if the resulting policy exceeds the **size budget**, the
  most-discriminating constant slots are generalized first until the
  policy fits — the paper's "insist that the generated policy be small"
  control against non-generalizing per-user views.

All three §3.2.2 controls are independent toggles in :class:`MinerConfig`
so experiment E6 can ablate each.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TYPE_CHECKING
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.executor import Result
from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.cq import CQ, Atom, Comp, Const, Param, Term, Var
from repro.relalg.containment import satisfiable
from repro.relalg.minimize import minimize_cq
from repro.relalg.render import cq_to_select
from repro.relalg.rewrite import ViewDef, find_equivalent_rewriting
from repro.relalg.translate import translate_select
from repro.sqlir import ast
from repro.sqlir.params import bind_parameters
from repro.sqlir.parser import parse_sql
from repro.sqlir.skeleton import Skeleton, skeletonize
from repro.util.errors import DbacError, TranslationError
from repro.extract.handlers import run_handler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.runner import Request, WorkloadApp


@dataclass
class MinerConfig:
    """Tuning knobs for the miner; the E6 ablation flips these."""

    #: (table, column) pairs holding opaque identifiers; constants compared
    #: against them are always generalized (§3.2.2, second control).
    opaque_columns: frozenset[tuple[str, str]] = frozenset()
    #: Maximum number of views; beyond it, constant slots are generalized
    #: most-varying-first (§3.2.2, first control). None disables.
    size_budget: int | None = 24
    #: Re-run requests against mutated databases to classify constants and
    #: vet guards (§3.2.2, third control).
    active_discovery: bool = True
    #: Session attribute -> policy parameter name.
    session_params: dict[str, str] = field(
        default_factory=lambda: {"user_id": "MyUId"}
    )


@dataclass
class QueryEvent:
    """One observed query inside a request."""

    index: int
    sql_skeleton: Skeleton
    values: tuple[object, ...]
    result: Result
    statement: ast.Statement


@dataclass
class RequestTrace:
    """All queries observed while serving one request."""

    request: "Request"
    events: list[QueryEvent] = field(default_factory=list)


class RecordingConnection:
    """A Database wrapper that logs every SELECT it serves."""

    def __init__(self, db: Database):
        self.db = db
        self.events: list[QueryEvent] = []

    def sql(self, sql, args=(), named=None):
        stmt = self.db._parse(sql)
        if not isinstance(stmt, ast.Select):
            return self.db.sql(stmt, args, named)
        bound = bind_parameters(stmt, args, named)
        result = self.db.sql(bound)
        assert isinstance(result, Result)
        skeleton = skeletonize(bound)
        self.events.append(
            QueryEvent(
                index=len(self.events),
                sql_skeleton=skeleton,
                values=skeleton.values,
                result=result,
                statement=bound,
            )
        )
        return result

    def query(self, sql, args=(), named=None) -> Result:
        result = self.sql(sql, args, named)
        assert isinstance(result, Result)
        return result


@dataclass
class MiningReport:
    """What the miner observed and decided (for E5/E6 tables)."""

    traces: int = 0
    events: int = 0
    templates: int = 0
    guarded_templates: int = 0
    generalized_by_hint: int = 0
    generalized_by_activity: int = 0
    generalized_by_budget: int = 0
    views_emitted: int = 0


# Slot decision markers.
_SLOT_PARAM = "param"
_SLOT_VAR = "var"
_SLOT_CONST = "const"
_SLOT_GUARD = "guard"  # tied to a guard output column


@dataclass
class _GuardLink:
    """Template-level guard: a preceding template with slot correspondences.

    ``slot_map`` maps this template's slot index to either
    ``("slot", guard_slot_index)`` or ``("column", output_column_name)``
    of the guard template.
    """

    guard_key: object
    slot_map: dict[int, tuple[str, object]]


class TraceMiner:
    """The black-box extraction pipeline."""

    def __init__(self, app: "WorkloadApp", db: Database, config: MinerConfig | None = None):
        self.app = app
        self.db = db
        self.config = config or MinerConfig()
        self.report = MiningReport()

    # -- trace collection ---------------------------------------------------------

    def collect(self, requests: Sequence["Request"]) -> list[RequestTrace]:
        """Run requests against a recording connection, keeping their traces."""
        traces = []
        for request in requests:
            recorder = RecordingConnection(self.db)
            handler = self.app.handlers[request.handler]
            run_handler(handler, recorder, request.params, request.session)
            traces.append(RequestTrace(request=request, events=recorder.events))
        self.report.traces += len(traces)
        self.report.events += sum(len(t.events) for t in traces)
        return traces

    # -- mining -------------------------------------------------------------------

    def mine(self, requests: Sequence["Request"]) -> Policy:
        traces = self.collect(requests)
        return self.mine_traces(traces)

    def mine_traces(self, traces: Sequence[RequestTrace]) -> Policy:
        groups = self._group_by_template(traces)
        self.report.templates = len(groups)
        decisions = {
            key: self._decide_slots(key, observations, traces)
            for key, observations in groups.items()
        }
        guards = {
            key: self._find_guard(key, observations, traces, decisions)
            for key, observations in groups.items()
        }
        self.report.guarded_templates = sum(1 for g in guards.values() if g)

        def build() -> Policy:
            views = []
            for key, observations in groups.items():
                view = self._compile_view(
                    key, observations, decisions[key], guards.get(key), decisions
                )
                if view is not None:
                    views.append(view)
            return self._assemble(views)

        policy = build()
        # Size budget (§3.2.2, first control): while the policy is too big,
        # generalize the constant slots of the rarest templates — widening
        # them until assembly-time dedup can merge them into broader views.
        budget = self.config.size_budget
        while budget is not None and len(policy) > budget:
            candidates = [
                key
                for key, slot_decisions in decisions.items()
                if any(kind == _SLOT_CONST for kind, _ in slot_decisions)
            ]
            if not candidates:
                break
            key = min(candidates, key=lambda k: len(groups[k]))
            decisions[key] = [
                (_SLOT_VAR, None) if kind == _SLOT_CONST else (kind, payload)
                for kind, payload in decisions[key]
            ]
            self.report.generalized_by_budget += 1
            policy = build()
        self.report.views_emitted = len(policy)
        return policy

    # -- template grouping -----------------------------------------------------------

    def _group_by_template(
        self, traces: Sequence[RequestTrace]
    ) -> dict[object, list[tuple[RequestTrace, QueryEvent]]]:
        """Group observations by (template, guard context).

        The guard context — the set of templates that preceded the query
        *non-empty* within its request — distinguishes the same SQL shape
        issued from differently-guarded code paths. Without it, a detail
        query reached both through an access check and through a listing
        would lose its guard entirely and over-generalize (precisely the
        §3.2.2 failure mode).
        """
        groups: dict[object, list[tuple[RequestTrace, QueryEvent]]] = {}
        for trace in traces:
            for event in trace.events:
                context = frozenset(
                    prior.sql_skeleton.statement
                    for prior in trace.events
                    if prior.index < event.index and not prior.result.is_empty()
                )
                key = (event.sql_skeleton.statement, context)
                groups.setdefault(key, []).append((trace, event))
        return groups

    # -- slot decisions ----------------------------------------------------------------

    def _decide_slots(
        self,
        key: object,
        observations: list[tuple[RequestTrace, QueryEvent]],
        traces: Sequence[RequestTrace],
    ) -> list[tuple[str, object]]:
        """One decision per slot: (kind, payload)."""
        skeleton = observations[0][1].sql_skeleton
        slot_columns = _slot_columns(skeleton.statement, self.db.schema)
        decisions: list[tuple[str, object]] = []
        for slot in range(skeleton.slot_count):
            values = [event.values[slot] for _, event in observations]
            # Session parameter?
            param = self._session_param_for(slot, observations)
            if param is not None:
                decisions.append((_SLOT_PARAM, param))
                continue
            if len(set(values)) > 1:
                decisions.append((_SLOT_VAR, None))
                continue
            # Constant across all observations.
            column = slot_columns.get(slot)
            if (
                column is not None
                and column in self.config.opaque_columns
            ):
                self.report.generalized_by_hint += 1
                decisions.append((_SLOT_VAR, None))
                continue
            if self.config.active_discovery and self._constant_is_data_derived(
                slot, observations
            ):
                self.report.generalized_by_activity += 1
                decisions.append((_SLOT_VAR, None))
                continue
            decisions.append((_SLOT_CONST, values[0]))
        return decisions

    def _session_param_for(
        self, slot: int, observations: list[tuple[RequestTrace, QueryEvent]]
    ) -> str | None:
        for attr, param in self.config.session_params.items():
            if all(
                attr in trace.request.session
                and event.values[slot] == trace.request.session[attr]
                for trace, event in observations
            ):
                # Require at least two distinct user values, or a single
                # observation, to avoid mistaking a constant for the user.
                distinct = {
                    trace.request.session.get(attr) for trace, _ in observations
                }
                if len(distinct) > 1 or len(observations) == 1:
                    return param
                # One user only: ambiguous; prefer the param (generalizing
                # across users is the common case for user-id slots).
                return param
        return None

    def _constant_is_data_derived(
        self, slot: int, observations: list[tuple[RequestTrace, QueryEvent]]
    ) -> bool:
        """Active probe: does the constant come from data, not code?

        If the constant equals a value in a preceding query's result and
        re-running the request with that cell mutated makes the query show
        up with the mutated value, the constant is data-derived and must
        be generalized. Delegated to
        :class:`~repro.extract.active.ActiveConstraintDiscovery`.
        """
        from repro.extract.active import ActiveConstraintDiscovery

        discovery = ActiveConstraintDiscovery(self.app, self.db)
        trace, event = observations[0]
        return discovery.constant_is_data_derived(trace, event, slot)

    # -- guard detection -----------------------------------------------------------------

    def _find_guard(
        self,
        key: object,
        observations: list[tuple[RequestTrace, QueryEvent]],
        traces: Sequence[RequestTrace],
        decisions: dict[object, list[tuple[str, object]]],
    ) -> _GuardLink | None:
        """A guard template must precede *every* observation, non-empty,
        with a consistent value correspondence."""
        candidate_keys: set[object] | None = None
        for trace, event in observations:
            keys = {
                prior.sql_skeleton.statement
                for prior in trace.events
                if prior.index < event.index and not prior.result.is_empty()
            }
            candidate_keys = keys if candidate_keys is None else candidate_keys & keys
            if not candidate_keys:
                return None
        assert candidate_keys is not None
        for guard_key in sorted(candidate_keys, key=repr):
            link = self._correspondence(guard_key, observations)
            if link is not None:
                if self.config.active_discovery and not self._guard_is_real(
                    observations, link
                ):
                    continue
                return link
        return None

    def _correspondence(
        self, guard_key: object, observations: list[tuple[RequestTrace, QueryEvent]]
    ) -> _GuardLink | None:
        """Find slot correspondences that hold in every observation."""
        slot_map: dict[int, tuple[str, object]] = {}
        slot_count = observations[0][1].sql_skeleton.slot_count
        for slot in range(slot_count):
            # Candidate correspondences from the first observation, then
            # verified against the rest.
            trace0, event0 = observations[0]
            guard0 = _last_guard_event(trace0, event0, guard_key)
            if guard0 is None:
                return None
            value0 = event0.values[slot]
            candidates: list[tuple[str, object]] = []
            for guard_slot, guard_value in enumerate(guard0.values):
                if guard_value == value0:
                    candidates.append(("slot", guard_slot))
            for column_index, column in enumerate(guard0.result.columns):
                if any(row[column_index] == value0 for row in guard0.result.rows):
                    candidates.append(("column", column))
            for candidate in candidates:
                if self._correspondence_holds(slot, candidate, guard_key, observations):
                    slot_map[slot] = candidate
                    break
        if not slot_map:
            return None
        return _GuardLink(guard_key=guard_key, slot_map=slot_map)

    def _correspondence_holds(
        self,
        slot: int,
        candidate: tuple[str, object],
        guard_key: object,
        observations: list[tuple[RequestTrace, QueryEvent]],
    ) -> bool:
        kind, ref = candidate
        for trace, event in observations:
            guard = _last_guard_event(trace, event, guard_key)
            if guard is None:
                return False
            value = event.values[slot]
            if kind == "slot":
                if guard.values[ref] != value:  # type: ignore[index]
                    return False
            else:
                if ref not in guard.result.columns:
                    return False
                column_index = guard.result.columns.index(ref)
                if not any(row[column_index] == value for row in guard.result.rows):
                    return False
        return True

    def _guard_is_real(
        self,
        observations: list[tuple[RequestTrace, QueryEvent]],
        link: _GuardLink,
    ) -> bool:
        from repro.extract.active import ActiveConstraintDiscovery

        discovery = ActiveConstraintDiscovery(self.app, self.db)
        trace, event = observations[0]
        return discovery.guard_is_load_bearing(trace, event, link.guard_key)

    # -- view compilation ------------------------------------------------------------------

    def _template_cq(
        self,
        key: object,
        decisions: list[tuple[str, object]],
        prefix: str,
    ) -> CQ | None:
        """Translate a skeleton + slot decisions into a CQ."""
        statement = key[0] if isinstance(key, tuple) else key
        if not isinstance(statement, ast.Select):
            return None
        try:
            ucq = translate_select(statement, self.db.schema)
        except TranslationError:
            return None
        if len(ucq.disjuncts) != 1:
            return None
        cq = ucq.disjuncts[0].rename_apart(set())
        substitution: dict[str, Term] = {}
        for slot, (kind, payload) in enumerate(decisions):
            name = f"${slot}"
            if kind == _SLOT_PARAM:
                substitution[name] = Param(str(payload))
            elif kind == _SLOT_CONST:
                substitution[name] = Const(payload)  # type: ignore[arg-type]
            else:
                substitution[name] = Var(f"${prefix}.{slot}")
        return _substitute_named_params(cq, substitution, prefix)

    def _compile_view(
        self,
        key: object,
        observations: list[tuple[RequestTrace, QueryEvent]],
        decisions: list[tuple[str, object]],
        guard: _GuardLink | None,
        all_decisions: dict[object, list[tuple[str, object]]],
    ) -> View | None:
        cq = self._template_cq(key, decisions, "q")
        if cq is None:
            return None
        body = list(cq.body)
        comps = list(cq.comps)
        if guard is not None:
            guard_decisions = _decisions_for_statement(all_decisions, guard.guard_key)
            if guard_decisions is not None:
                guard_cq = self._template_cq(guard.guard_key, guard_decisions, "g")
                if guard_cq is not None:
                    body.extend(guard_cq.body)
                    comps.extend(guard_cq.comps)
                    for slot, (kind, ref) in guard.slot_map.items():
                        this_term = _slot_term(decisions, slot, "q")
                        if kind == "slot":
                            other = _slot_term(guard_decisions, ref, "g")
                        else:
                            other = _column_term(guard_cq, str(ref))
                        if this_term is not None and other is not None:
                            comps.append(Comp("=", this_term, other))
        merged = CQ(
            head=cq.head,
            body=tuple(body),
            comps=tuple(comps),
            head_names=cq.head_names,
        )
        compiled = _finalize_view_cq(merged)
        if compiled is None or not satisfiable(compiled):
            return None
        compiled = minimize_cq(compiled)
        try:
            select = cq_to_select(compiled, self.db.schema)
        except DbacError:
            return None
        handler = observations[0][0].request.handler
        return View(f"M_{handler}", select, self.db.schema, f"mined from {handler}")

    def _assemble(self, views: list[View]) -> Policy:
        kept: list[View] = []
        for view in views:
            pinned = _pin_cq(view)
            if pinned is None:
                continue
            if any(
                find_equivalent_rewriting(pinned, [ViewDef("W", other_pinned)])
                for other, other_pinned in (
                    (existing, _pin_cq(existing)) for existing in kept
                )
                if other_pinned is not None
            ):
                continue
            survivors = []
            for existing in kept:
                existing_pinned = _pin_cq(existing)
                if existing_pinned is not None and find_equivalent_rewriting(
                    existing_pinned, [ViewDef("W", pinned)]
                ):
                    continue
                survivors.append(existing)
            kept = survivors + [view]
        policy = Policy(name="mined")
        for index, view in enumerate(kept, start=1):
            policy.add(View(f"V{index}", view.ast, self.db.schema, view.description))
        return policy


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _last_guard_event(
    trace: RequestTrace, event: QueryEvent, guard_key: object
) -> QueryEvent | None:
    best = None
    for prior in trace.events:
        if prior.index >= event.index:
            break
        if prior.sql_skeleton.statement == guard_key and not prior.result.is_empty():
            best = prior
    return best


def _slot_columns(statement: ast.Statement, schema=None) -> dict[int, tuple[str, str]]:
    """Map slot index -> (table, column) when the slot is compared to a column.

    Unqualified column names are resolved against ``schema`` when given,
    else attributed to the first FROM table.
    """
    if not isinstance(statement, ast.Select):
        return {}
    aliases = {ref.alias: ref.name for ref in statement.tables()}
    first_table = statement.sources[0].name if statement.sources else None
    out: dict[int, tuple[str, str]] = {}

    def owner_of(column: ast.Column) -> str | None:
        if column.table is not None:
            return aliases.get(column.table)
        if schema is not None:
            for name in aliases.values():
                try:
                    if column.name in schema.columns_of(name):
                        return name
                except KeyError:
                    continue
            return None
        return first_table

    def visit(expr: ast.Expr) -> None:
        if not isinstance(expr, ast.Comparison):
            return
        sides = [(expr.left, expr.right), (expr.right, expr.left)]
        for column_side, other in sides:
            if isinstance(column_side, ast.Column) and isinstance(other, ast.Param):
                table = owner_of(column_side)
                if table is not None and other.index is not None:
                    out[other.index] = (table, column_side.name)

    for expr in ast.statement_expressions(statement):
        for node in ast.walk_expr(expr):
            visit(node)
    return out


def _substitute_named_params(cq: CQ, mapping: dict[str, Term], prefix: str) -> CQ:
    def conv(term: Term) -> Term:
        if isinstance(term, Param) and term.name in mapping:
            return mapping[term.name]
        return term

    return CQ(
        head=tuple(conv(t) for t in cq.head),
        body=tuple(Atom(a.rel, tuple(conv(x) for x in a.args)) for a in cq.body),
        comps=tuple(Comp(c.op, conv(c.left), conv(c.right)) for c in cq.comps),
        head_names=cq.head_names,
        name=cq.name,
    )


def _decisions_for_statement(
    all_decisions: dict[object, list[tuple[str, object]]], statement: object
) -> list[tuple[str, object]] | None:
    """Find slot decisions for a guard's statement across grouped keys.

    Group keys are (statement, context) tuples; a guard references just
    the statement. Prefer the group with the smallest context (the least
    guarded occurrence of the guard template itself).
    """
    matches = [
        (key, decisions)
        for key, decisions in all_decisions.items()
        if (key[0] if isinstance(key, tuple) else key) == statement
    ]
    if not matches:
        return None
    matches.sort(key=lambda item: len(item[0][1]) if isinstance(item[0], tuple) else 0)
    return matches[0][1]


def _slot_term(decisions: list[tuple[str, object]], slot: int, prefix: str) -> Term | None:
    kind, payload = decisions[slot]
    if kind == _SLOT_PARAM:
        return Param(str(payload))
    if kind == _SLOT_CONST:
        return Const(payload)  # type: ignore[arg-type]
    return Var(f"${prefix}.{slot}")


def _column_term(guard_cq: CQ, column: str) -> Term | None:
    for position, name in enumerate(guard_cq.head_names):
        if name == column:
            return guard_cq.head[position]
    return None


def _finalize_view_cq(cq: CQ) -> CQ | None:
    """Resolve out-of-body terms and promote free slots to the head.

    The same canonicalization the symbolic extractor performs: slot
    variables live in comparisons, so each is rewritten onto a body
    variable (preserving guard joins) and promoted into the head.
    """
    from repro.relalg.constraints import ConstraintSet

    body_vars = {v for atom in cq.body for v in atom.variables()}
    closure = ConstraintSet(cq.comps)
    candidates = sorted(body_vars, key=lambda v: v.name)

    def resolve(term: Term) -> Term | None:
        if not isinstance(term, Var) or term in body_vars:
            return term
        pinned = closure.canon(term)
        if isinstance(pinned, Const | Param):
            return pinned
        for candidate in candidates:
            if closure.equal(term, candidate):
                return candidate
        return None

    comps = []
    for comp in cq.comps:
        left = resolve(comp.left)
        right = resolve(comp.right)
        if left is None or right is None:
            continue
        if left == right and comp.op in ("=", "<="):
            continue
        comps.append(Comp(comp.op, left, right))

    slot_vars = sorted(
        {
            v
            for comp in cq.comps
            for v in comp.variables()
            if v.name.startswith("$")
        },
        key=lambda v: v.name,
    )
    head: list[Term] = []
    head_names: list[str] = []
    for position, term in enumerate(cq.head):
        if isinstance(term, Const):
            continue
        if isinstance(term, Var) and term not in body_vars:
            resolved = resolve(term)
            if not isinstance(resolved, Var):
                continue
            term = resolved
        if term in head:
            continue
        head.append(term)
        head_names.append(
            cq.head_names[position] if position < len(cq.head_names) else f"c{position}"
        )
    for var in slot_vars:
        resolved = resolve(var) if var not in body_vars else var
        if isinstance(resolved, Var) and resolved not in head:
            head.append(resolved)
            head_names.append(resolved.name.rsplit(".", 1)[-1])
    if not head:
        head = [Const(1)]
        head_names = ["present"]
    return CQ(
        head=tuple(head),
        body=cq.body,
        comps=tuple(comps),
        head_names=tuple(head_names),
    )


def _pin_cq(view: View) -> CQ | None:
    if not view.is_conjunctive:
        return None
    bindings = {name: f"\x00param:{name}" for name in view.param_names}
    return view.ucq.instantiate(bindings).disjuncts[0]
