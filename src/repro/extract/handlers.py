"""The handler DSL: application request handlers as analyzable ASTs.

The paper's language-based extraction proposal (§3.2.1) symbolically
executes application code. Re-implementing a Ruby/PHP interpreter is out
of scope for a reproduction, so — following the spirit of Near & Jackson's
"co-opt the interpreter" approach [30] — workload applications are written
in a small structured DSL that has *two* interpreters:

* the **concrete** interpreter (:func:`run_handler`) executes a handler
  against a live connection (direct or proxied), which the black-box
  miner and the benchmarks drive; and
* the **symbolic** executor (:mod:`repro.extract.symbolic`) walks all
  paths, which the language-based extractor drives.

A handler is a tree of statements; the only control flow is ``If`` over
result-emptiness / parameter comparisons, and ``ForEach`` over a prior
result — the "simple loop structure" the paper notes web handlers have.

Listing 1 of the paper, in this DSL::

    Handler(
        name="show_event",
        params=("event_id",),
        body=(
            Assign("check", Query(
                "SELECT 1 FROM Attendance WHERE UId = ? AND EId = ?",
                (SessionRef("user_id"), ParamRef("event_id")))),
            If(IsEmpty("check"),
               then=(Abort("event not found"),),
               orelse=()),
            Return(Query(
                "SELECT * FROM Events WHERE EId = ?",
                (ParamRef("event_id"),))),
        ),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import Result
from repro.util.errors import DbacError

# --------------------------------------------------------------------------
# Argument expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamRef:
    """A handler parameter (request input)."""

    name: str


@dataclass(frozen=True)
class SessionRef:
    """A session attribute, e.g. ``user_id``."""

    name: str


@dataclass(frozen=True)
class ConstArg:
    """A constant baked into the handler."""

    value: object


@dataclass(frozen=True)
class FieldRef:
    """A column of the current row of a previously fetched result.

    ``var`` names the result (from ``Assign`` or the ``ForEach`` row
    variable); ``column`` is the output column name.
    """

    var: str
    column: str


ArgExpr = ParamRef | SessionRef | ConstArg | FieldRef


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class IsEmpty:
    """True when the named result has no rows."""

    var: str


@dataclass(frozen=True)
class Compare:
    """A comparison between two argument expressions."""

    op: str
    left: ArgExpr
    right: ArgExpr


@dataclass(frozen=True)
class Not:
    operand: "Cond"


@dataclass(frozen=True)
class And:
    operands: tuple["Cond", ...]


Cond = IsEmpty | Compare | Not | And


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """A parameterized SQL query with argument expressions."""

    sql: str
    args: tuple[ArgExpr, ...] = ()


@dataclass(frozen=True)
class Assign:
    """Run a query and bind its result to a handler variable."""

    var: str
    query: Query


@dataclass(frozen=True)
class If:
    cond: Cond
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class ForEach:
    """Iterate over the rows of a prior result.

    Inside the body, ``FieldRef(row_var, column)`` reads the current row.
    """

    row_var: str
    over: str
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Return:
    """Finish the handler, emitting a final query's result (or nothing)."""

    query: Query | None = None


@dataclass(frozen=True)
class Abort:
    """Finish the handler with an application-level error (e.g. HTTP 404)."""

    message: str


Stmt = Assign | If | ForEach | Return | Abort


@dataclass(frozen=True)
class Handler:
    """A named request handler."""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]


class HandlerAbort(DbacError):
    """Raised by the concrete interpreter when a handler Aborts."""


# --------------------------------------------------------------------------
# Concrete interpreter
# --------------------------------------------------------------------------


@dataclass
class HandlerOutcome:
    """What a concrete handler run produced."""

    returned: Result | None
    aborted: bool
    abort_message: str = ""
    queries_issued: list[tuple[str, tuple]] = field(default_factory=list)


def run_handler(
    handler: Handler,
    connection,
    params: dict[str, object],
    session: dict[str, object],
) -> HandlerOutcome:
    """Execute ``handler`` concretely against ``connection``.

    ``connection`` is anything exposing ``query(sql, args)`` — a
    :class:`~repro.engine.database.Database`, an
    :class:`~repro.enforce.proxy.EnforcementProxy`, or a baseline.
    Missing handler parameters raise immediately; an ``Abort`` statement
    finishes the run with ``aborted=True`` (it is an application-level
    outcome, not an error of the harness).
    """
    for name in handler.params:
        if name not in params:
            raise DbacError(f"handler {handler.name!r} missing parameter {name!r}")
    outcome = HandlerOutcome(returned=None, aborted=False)
    env: dict[str, Result] = {}
    rows: dict[str, dict[str, object]] = {}

    def arg_value(arg: ArgExpr) -> object:
        if isinstance(arg, ParamRef):
            return params[arg.name]
        if isinstance(arg, SessionRef):
            if arg.name not in session:
                raise DbacError(f"session has no attribute {arg.name!r}")
            return session[arg.name]
        if isinstance(arg, ConstArg):
            return arg.value
        if isinstance(arg, FieldRef):
            if arg.var in rows:
                row = rows[arg.var]
            elif arg.var in env:
                # Outside ForEach, a FieldRef reads the first row — the
                # idiomatic "fetch one, then use a column" pattern of
                # Listing 1-style handlers.
                result = env[arg.var]
                if result.is_empty():
                    raise DbacError(
                        f"result {arg.var!r} is empty; guard it with IsEmpty"
                    )
                row = dict(zip(result.columns, result.rows[0]))
            else:
                raise DbacError(f"no current row for {arg.var!r}")
            if arg.column not in row:
                raise DbacError(f"row {arg.var!r} has no column {arg.column!r}")
            return row[arg.column]
        raise AssertionError(arg)

    def run_query(query: Query) -> Result:
        values = tuple(arg_value(a) for a in query.args)
        outcome.queries_issued.append((query.sql, values))
        return connection.query(query.sql, list(values))

    def cond_value(cond: Cond) -> bool:
        if isinstance(cond, IsEmpty):
            if cond.var not in env:
                raise DbacError(f"no result bound to {cond.var!r}")
            return env[cond.var].is_empty()
        if isinstance(cond, Compare):
            left = arg_value(cond.left)
            right = arg_value(cond.right)
            return _compare(cond.op, left, right)
        if isinstance(cond, Not):
            return not cond_value(cond.operand)
        if isinstance(cond, And):
            return all(cond_value(op) for op in cond.operands)
        raise AssertionError(cond)

    def run_block(stmts: tuple[Stmt, ...]) -> bool:
        """Returns True when the handler has finished."""
        for stmt in stmts:
            if isinstance(stmt, Assign):
                env[stmt.var] = run_query(stmt.query)
            elif isinstance(stmt, If):
                branch = stmt.then if cond_value(stmt.cond) else stmt.orelse
                if run_block(branch):
                    return True
            elif isinstance(stmt, ForEach):
                if stmt.over not in env:
                    raise DbacError(f"no result bound to {stmt.over!r}")
                result = env[stmt.over]
                for row in result.as_dicts():
                    rows[stmt.row_var] = row
                    if run_block(stmt.body):
                        rows.pop(stmt.row_var, None)
                        return True
                rows.pop(stmt.row_var, None)
            elif isinstance(stmt, Return):
                if stmt.query is not None:
                    outcome.returned = run_query(stmt.query)
                return True
            elif isinstance(stmt, Abort):
                outcome.aborted = True
                outcome.abort_message = stmt.message
                return True
            else:
                raise AssertionError(stmt)
        return False

    run_block(handler.body)
    return outcome


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op in ("!=", "<>"):
        return left != right
    if left is None or right is None:
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise DbacError(f"unknown comparison {op!r}")
