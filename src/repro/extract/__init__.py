"""Policy extraction (§3): generate a draft policy from an application.

Two extractors, matching the paper's two proposals:

* :mod:`repro.extract.symbolic` — language-based extraction (§3.2.1):
  symbolically execute handlers written in the :mod:`repro.extract.handlers`
  DSL, enumerate per-query path conditions, and compile condition-guarded
  queries into views.
* :mod:`repro.extract.miner` — language-agnostic extraction (§3.2.2):
  run the application black-box, collect query traces, and generalize
  them into views, controlled by a policy-size budget, opaque-identifier
  hints, and active constraint discovery (:mod:`repro.extract.active`).
"""

from repro.extract.handlers import (
    Abort,
    And,
    Assign,
    Compare,
    ConstArg,
    FieldRef,
    ForEach,
    Handler,
    If,
    IsEmpty,
    Not,
    ParamRef,
    Query,
    Return,
    SessionRef,
    run_handler,
)
from repro.extract.symbolic import SymbolicExtractor
from repro.extract.miner import MinerConfig, TraceMiner
from repro.extract.active import ActiveConstraintDiscovery

__all__ = [
    "Abort",
    "ActiveConstraintDiscovery",
    "And",
    "Assign",
    "Compare",
    "ConstArg",
    "FieldRef",
    "ForEach",
    "Handler",
    "If",
    "IsEmpty",
    "MinerConfig",
    "Not",
    "ParamRef",
    "Query",
    "Return",
    "SessionRef",
    "SymbolicExtractor",
    "TraceMiner",
    "run_handler",
]
