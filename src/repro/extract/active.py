"""Active constraint discovery (§3.2.2, third control).

The paper's example: unsure whether an ``Attendance`` row's ``notes``
value matters to access checking, mutate the cell to a random string and
re-run the application; if the subsequent trace is unaffected, ``notes``
does not affect access and can be omitted from the policy.

Two probes are implemented, both built on database snapshot/restore and
concrete re-execution of a recorded request:

* :meth:`constant_is_data_derived` — a constant that appears in a query
  may be baked into the code (``Visibility = 'friends'``) or flow from
  data fetched earlier in the request (an event id read from a prior
  result). Mutate the source cell and re-run: if the query's constant
  follows the mutation, it is data-derived and must be generalized.
* :meth:`guard_is_load_bearing` — a candidate guard (a prior non-empty
  query) may be coincidental. Delete the rows satisfying the guard and
  re-run: if the guarded query is still issued, the guard does not
  actually protect it and must not narrow the extracted view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.database import Database
from repro.sqlir import ast
from repro.util.errors import DbacError
from repro.extract.handlers import run_handler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.runner import WorkloadApp


class ActiveConstraintDiscovery:
    """Mutate-and-re-run probes against a snapshot of the database."""

    def __init__(self, app: "WorkloadApp", db: Database):
        self.app = app
        self.db = db

    # -- probes ----------------------------------------------------------------

    def constant_is_data_derived(self, trace, event, slot: int) -> bool:
        """Does ``event``'s slot constant flow from an earlier result?

        Finds a preceding event whose result contains the constant,
        mutates the matching base-table cell, re-runs the request, and
        checks whether the constant in the re-observed query changed.
        """
        from repro.extract.miner import RecordingConnection

        value = event.values[slot]
        source = self._find_source(trace, event, value)
        if source is None:
            return False
        table, column, row_filter = source
        mutated = self._pick_mutation(table, column, value)
        if mutated is None:
            return False
        snapshot = self.db.snapshot()
        try:
            try:
                self._mutate_cell(table, column, row_filter, mutated)
            except DbacError:
                return False  # constraint in the way; probe inconclusive
            recorder = RecordingConnection(self.db)
            handler = self.app.handlers[trace.request.handler]
            try:
                run_handler(
                    handler, recorder, trace.request.params, trace.request.session
                )
            except DbacError:
                return False
            for replay in recorder.events:
                if replay.sql_skeleton.statement != event.sql_skeleton.statement:
                    continue
                if slot < len(replay.values) and replay.values[slot] == mutated:
                    return True
            return False
        finally:
            self.db.restore(snapshot)

    def guard_is_load_bearing(self, trace, event, guard_key: object) -> bool:
        """Does removing the guard's rows stop the guarded query?

        True (keep the guard) when deleting the rows that satisfied the
        guard makes the guarded query disappear from the re-run trace.
        """
        from repro.extract.miner import RecordingConnection, _last_guard_event

        guard_event = _last_guard_event(trace, event, guard_key)
        if guard_event is None:
            return False
        statement = guard_event.statement
        if not isinstance(statement, ast.Select) or len(statement.sources) != 1:
            # Join guards are not probed; keeping them is the conservative
            # (more restrictive) choice for an extracted policy.
            return True
        if statement.joins:
            return True
        snapshot = self.db.snapshot()
        try:
            delete = ast.Delete(table=statement.sources[0].name, where=statement.where)
            self.db.sql(delete)
            recorder = RecordingConnection(self.db)
            handler = self.app.handlers[trace.request.handler]
            try:
                run_handler(
                    handler, recorder, trace.request.params, trace.request.session
                )
            except DbacError:
                # The handler now fails outright: the guard clearly matters.
                return True
            for replay in recorder.events:
                if replay.sql_skeleton.statement == event.sql_skeleton.statement:
                    return False  # still issued without the guard rows
            return True
        finally:
            self.db.restore(snapshot)

    # -- helpers -----------------------------------------------------------------

    def _find_source(self, trace, event, value):
        """Locate (table, column, row-filter) producing ``value`` earlier
        in the request, for single-table source queries."""
        for prior in trace.events:
            if prior.index >= event.index:
                break
            statement = prior.statement
            if not isinstance(statement, ast.Select) or statement.joins:
                continue
            if len(statement.sources) != 1:
                continue
            if value not in {v for row in prior.result.rows for v in row}:
                continue
            column_index = None
            for row in prior.result.rows:
                if value in row:
                    column_index = row.index(value)
                    break
            if column_index is None:
                continue
            column = prior.result.columns[column_index]
            table = statement.sources[0].name
            if column not in self.db.schema.table(table).column_names:
                continue
            return table, column, statement.where
        return None

    def _pick_mutation(self, table: str, column: str, value: object) -> object | None:
        """Choose a replacement value that respects foreign keys.

        For an FK column, pick a *different existing* value of the
        referenced column so the mutation stays valid; otherwise derive a
        fresh value from the old one.
        """
        schema = self.db.schema.table(table)
        for fk in schema.foreign_keys:
            if fk.column != column:
                continue
            referenced = self.db.query(
                ast.Select(
                    items=(
                        ast.SelectItem(ast.Column(table=fk.ref_table, name=fk.ref_column)),
                    ),
                    sources=(ast.TableRef.of(fk.ref_table),),
                    distinct=True,
                )
            )
            for (candidate,) in referenced.rows:
                if candidate != value:
                    return candidate
            return None
        return _mutated_value(value)

    def _mutate_cell(self, table: str, column: str, row_filter, new_value) -> None:
        update = ast.Update(
            table=table,
            assignments=((column, ast.Literal(new_value)),),
            where=row_filter,
        )
        self.db.sql(update)


def _mutated_value(value: object) -> object:
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1_000_003
    if isinstance(value, float):
        return value + 1_000_003.0
    if isinstance(value, str):
        return value + "_mutated"
    return value
