"""Language-based policy extraction via symbolic execution (§3.2.1).

The executor walks every path of a DSL handler (branching on result
emptiness, the only data-dependent control flow in the DSL), collecting
each issued query together with its *path condition*: which prior queries
were assumed non-empty, and which parameter comparisons held.

Compilation of a guarded query into a view follows Example 3.1:

* the query's CQ is instantiated with symbolic terms — handler parameters
  become shared variables, session attributes become policy params
  (``user_id`` → ``?MyUId``);
* the bodies of the non-empty-assumed guard queries are conjoined (they
  share parameter variables, which is what turns "Q2 guarded by Q1" into
  the join view V2);
* handler-parameter variables are *promoted to the view head*: the
  application may invoke the handler with any parameter value, so the
  information revealed ranges over them (this is what turns
  ``SELECT 1 ... WHERE EId = ?`` into the V1 view exposing EId);
* emptiness assumptions (negative conditions) cannot be expressed in a
  conjunctive view and are dropped — the extracted policy then allows
  slightly more than the exact behavior; the report flags each view
  affected.

The extracted views are minimized, deduplicated, and pruned: a view whose
content is computable from another extracted view (equivalent rewriting)
is redundant in an allow-list policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extract.handlers import (
    Abort,
    And,
    ArgExpr,
    Assign,
    Compare,
    Cond,
    ConstArg,
    FieldRef,
    ForEach,
    Handler,
    If,
    IsEmpty,
    Not,
    ParamRef,
    Query,
    Return,
    SessionRef,
    Stmt,
)
from repro.policy.policy import Policy
from repro.policy.view import View
from repro.relalg.cq import CQ, Atom, Comp, Const, Param, Term, Var
from repro.relalg.containment import satisfiable
from repro.relalg.minimize import minimize_cq
from repro.relalg.render import cq_to_select
from repro.relalg.rewrite import ViewDef, find_equivalent_rewriting
from repro.relalg.translate import SchemaInfo, translate_select
from repro.sqlir.parser import parse_select
from repro.util.errors import DbacError, TranslationError


@dataclass
class GuardedQuery:
    """A query plus the positive path condition under which it is issued."""

    handler: str
    cq: CQ
    guards: tuple[CQ, ...]
    path_comps: tuple[Comp, ...]
    dropped_negative_guards: int


@dataclass
class ExtractionReport:
    """What the extractor did, for the E4 experiment table."""

    paths_explored: dict[str, int] = field(default_factory=dict)
    queries_collected: int = 0
    views_before_dedup: int = 0
    views_emitted: int = 0
    views_with_dropped_negative_guards: int = 0


class SymbolicExtractor:
    """Extracts a draft policy from DSL handlers."""

    def __init__(
        self,
        schema: SchemaInfo,
        session_params: dict[str, str] | None = None,
        max_paths: int = 256,
    ):
        self.schema = schema
        # Map session attribute -> policy parameter name.
        self.session_params = session_params or {"user_id": "MyUId"}
        self.max_paths = max_paths

    # -- public API ---------------------------------------------------------

    def extract(self, handlers: list[Handler]) -> tuple[Policy, ExtractionReport]:
        report = ExtractionReport()
        guarded: list[GuardedQuery] = []
        for handler in handlers:
            collected, paths = self._execute(handler)
            guarded.extend(collected)
            report.paths_explored[handler.name] = paths
        report.queries_collected = len(guarded)
        views = [self._compile(g) for g in guarded]
        views = [v for v in views if v is not None]
        report.views_before_dedup = len(views)
        report.views_with_dropped_negative_guards = sum(
            1 for g in guarded if g.dropped_negative_guards
        )
        policy = self._assemble(views)
        report.views_emitted = len(policy)
        return policy, report

    # -- symbolic execution ---------------------------------------------------

    def _execute(self, handler: Handler) -> tuple[list[GuardedQuery], int]:
        collected: list[GuardedQuery] = []
        paths_finished = 0
        fresh_counter = [0]
        param_vars = {
            name: Var(f"${handler.name}.{name}") for name in handler.params
        }

        def fresh_suffix() -> str:
            fresh_counter[0] += 1
            return str(fresh_counter[0])

        def arg_term(arg: ArgExpr, results: dict[str, CQ]) -> Term:
            if isinstance(arg, ParamRef):
                if arg.name not in param_vars:
                    raise DbacError(
                        f"handler {handler.name!r} has no parameter {arg.name!r}"
                    )
                return param_vars[arg.name]
            if isinstance(arg, SessionRef):
                mapped = self.session_params.get(arg.name)
                if mapped is not None:
                    return Param(mapped)
                return Var(f"$session.{arg.name}")
            if isinstance(arg, ConstArg):
                return Const(arg.value)  # type: ignore[arg-type]
            if isinstance(arg, FieldRef):
                if arg.var not in results:
                    raise DbacError(f"no symbolic row bound to {arg.var!r}")
                source = results[arg.var]
                for position, name in enumerate(source.head_names):
                    if name == arg.column:
                        term = source.head[position]
                        return term
                raise DbacError(
                    f"result {arg.var!r} has no column {arg.column!r}"
                )
            raise AssertionError(arg)

        def instantiate_query(query: Query, results: dict[str, CQ]) -> list[CQ]:
            stmt = parse_select(query.sql)
            try:
                ucq = translate_select(stmt, self.schema)
            except TranslationError as exc:
                raise DbacError(
                    f"handler {handler.name!r} issues an untranslatable query:"
                    f" {exc}"
                ) from exc
            terms = {
                f"${position}": arg_term(arg, results)
                for position, arg in enumerate(query.args)
            }
            out = []
            taken = {v.name for v in param_vars.values()}
            for source in results.values():
                taken |= {v.name for v in source.variables()}
            for disjunct in ucq.disjuncts:
                renamed = disjunct.rename_apart(set(taken))
                out.append(_substitute_params(renamed, terms))
            return out

        def walk(
            stmts: tuple[Stmt, ...],
            position: int,
            results: dict[str, CQ],
            guards: tuple[CQ, ...],
            comps: tuple[Comp, ...],
            negatives: int,
            continuation: list[tuple[tuple[Stmt, ...], int]],
        ) -> None:
            nonlocal paths_finished
            if paths_finished >= self.max_paths:
                return
            if position == len(stmts):
                if continuation:
                    rest, rest_pos = continuation[-1]
                    walk(
                        rest,
                        rest_pos,
                        results,
                        guards,
                        comps,
                        negatives,
                        continuation[:-1],
                    )
                else:
                    paths_finished += 1
                return
            stmt = stmts[position]
            if isinstance(stmt, Assign):
                for cq in instantiate_query(stmt.query, results):
                    if not satisfiable(CQ((), cq.body, comps + cq.comps)):
                        continue
                    collected.append(
                        GuardedQuery(handler.name, cq, guards, comps, negatives)
                    )
                    new_results = dict(results)
                    new_results[stmt.var] = cq
                    walk(
                        stmts,
                        position + 1,
                        new_results,
                        guards,
                        comps,
                        negatives,
                        continuation,
                    )
                return
            if isinstance(stmt, If):
                def resolve(arg: ArgExpr) -> Term:
                    return arg_term(arg, results)

                for branch_cond, branch in (
                    (stmt.cond, stmt.then),
                    (Not(stmt.cond), stmt.orelse),
                ):
                    new_guards, new_comps, new_negatives = guards, comps, negatives
                    feasible = True
                    for outcome in _condition_outcomes(branch_cond, resolve):
                        if isinstance(outcome, _AssumeNonEmpty):
                            source = results.get(outcome.var)
                            if source is None:
                                feasible = False
                                break
                            new_guards = new_guards + (source,)
                        elif isinstance(outcome, _AssumeEmpty):
                            new_negatives += 1
                        elif isinstance(outcome, Comp):
                            new_comps = new_comps + (outcome,)
                        elif outcome is _INFEASIBLE:
                            feasible = False
                            break
                    if not feasible:
                        continue
                    walk(
                        branch,
                        0,
                        results,
                        new_guards,
                        new_comps,
                        new_negatives,
                        continuation + [(stmts, position + 1)],
                    )
                return
            if isinstance(stmt, ForEach):
                source = results.get(stmt.over)
                if source is None:
                    raise DbacError(f"no result bound to {stmt.over!r}")
                # A generic iteration: the source is non-empty and the row
                # variable exposes its head columns.
                new_results = dict(results)
                new_results[stmt.row_var] = source
                walk(
                    stmt.body,
                    0,
                    new_results,
                    guards + (source,),
                    comps,
                    negatives,
                    continuation + [(stmts, position + 1)],
                )
                # Plus the path where the loop body never runs.
                walk(
                    stmts,
                    position + 1,
                    results,
                    guards,
                    comps,
                    negatives,
                    continuation,
                )
                return
            if isinstance(stmt, Return):
                if stmt.query is not None:
                    for cq in instantiate_query(stmt.query, results):
                        if not satisfiable(CQ((), cq.body, comps + cq.comps)):
                            continue
                        collected.append(
                            GuardedQuery(handler.name, cq, guards, comps, negatives)
                        )
                paths_finished += 1
                return
            if isinstance(stmt, Abort):
                paths_finished += 1
                return
            raise AssertionError(stmt)

        walk(handler.body, 0, {}, (), (), 0, [])
        return collected, paths_finished

    # -- view compilation --------------------------------------------------------

    def _compile(self, guarded: GuardedQuery) -> View | None:
        query = guarded.cq
        body: list[Atom] = list(query.body)
        comps: list[Comp] = list(query.comps) + list(guarded.path_comps)
        for guard in guarded.guards:
            body.extend(guard.body)
            comps.extend(guard.comps)

        body_vars = {v for atom in body for v in atom.variables()}
        # Parameter variables never occur as atom arguments (the translator
        # keeps them in equality comparisons), so resolve each variable
        # outside the body onto an equal body variable / constant / policy
        # param before anything else — this is what preserves the join
        # between a guard's atoms and the guarded query's atoms.
        from repro.relalg.constraints import ConstraintSet

        closure = ConstraintSet(comps)
        # Prefer resolving onto the guarded query's own variables: guard
        # atoms may later minimize away, and a head variable must survive.
        query_vars = {v for atom in query.body for v in atom.variables()}
        candidates: list[Term] = sorted(
            body_vars, key=lambda v: (v not in query_vars, v.name)
        )

        def resolve(term: Term) -> Term | None:
            if not isinstance(term, Var) or term in body_vars:
                return term
            pinned = closure.canon(term)
            if isinstance(pinned, Const | Param):
                return pinned
            for candidate in candidates:
                if closure.equal(term, candidate):
                    return candidate
            return None

        resolved_comps: list[Comp] = []
        for comp in comps:
            left = resolve(comp.left)
            right = resolve(comp.right)
            if left is None or right is None:
                # A constraint over parameters this query never touches does
                # not constrain the data it reveals; dropping it widens the
                # view, the safe direction for a policy that must allow the
                # observed behavior.
                continue
            if left == right and comp.op in ("=", "<="):
                continue
            resolved_comps.append(Comp(comp.op, left, right))
        comps = resolved_comps

        # Promote handler-parameter variables into the head: the view must
        # range over every value the application could be invoked with.
        head: list[Term] = []
        head_names: list[str] = []
        for position, term in enumerate(query.head):
            if isinstance(term, Const):
                continue  # constant output columns carry no information
            if isinstance(term, Var) and term not in body_vars:
                resolved = resolve(term)
                if not isinstance(resolved, Var):
                    continue
                term = resolved
            if term in head:
                continue
            head.append(term)
            name = (
                query.head_names[position]
                if position < len(query.head_names)
                else f"col{position}"
            )
            head_names.append(name)
        param_vars = {
            v
            for comp in guarded.cq.comps
            for v in comp.variables()
            if v.name.startswith("$")
        } | {v for v in guarded.cq.variables() if v.name.startswith("$")}
        for var in sorted(param_vars, key=lambda v: v.name):
            resolved = resolve(var) if var not in body_vars else var
            if isinstance(resolved, Var) and resolved not in head:
                head.append(resolved)
                head_names.append(var.name.rsplit(".", 1)[-1])
        if not head:
            # Pure existence view; expose a constant marker.
            head = [Const(1)]
            head_names = ["present"]

        cq = CQ(
            head=tuple(head),
            body=tuple(body),
            comps=tuple(comps),
            head_names=tuple(head_names),
        )
        if not satisfiable(cq):
            return None
        cq = minimize_cq(cq)
        try:
            select = cq_to_select(cq, self.schema)
        except DbacError:
            return None
        description = f"extracted from {guarded.handler}"
        if guarded.dropped_negative_guards:
            description += " (negative guard dropped)"
        return View(f"X_{guarded.handler}", select, self.schema, description)

    def _assemble(self, views: list[View]) -> Policy:
        """Drop redundant views and name the survivors V1, V2, ..."""
        kept: list[View] = []
        for view in views:
            pinned = _pin(view)
            redundant = False
            for existing in kept:
                if find_equivalent_rewriting(pinned, [ViewDef("W", _pin(existing))]):
                    redundant = True
                    break
            if redundant:
                continue
            # A previously kept view may now be redundant w.r.t. this one.
            survivors = []
            for existing in kept:
                if find_equivalent_rewriting(
                    _pin(existing), [ViewDef("W", pinned)]
                ):
                    continue
                survivors.append(existing)
            kept = survivors + [view]
        policy = Policy(name="extracted")
        for index, view in enumerate(kept, start=1):
            renamed = View(
                f"V{index}", view.ast, self.schema, view.description
            )
            policy.add(renamed)
        return policy


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _pin(view: View) -> CQ:
    """The view's CQ with params pinned to sentinels, for comparisons."""
    bindings = {name: f"\x00param:{name}" for name in view.param_names}
    return view.cq.instantiate(bindings)


def _substitute_params(cq: CQ, terms: dict[str, Term]) -> CQ:
    """Replace positional params (``$k``) with symbolic terms."""

    def conv(term: Term) -> Term:
        if isinstance(term, Param) and term.name in terms:
            return terms[term.name]
        return term

    return CQ(
        head=tuple(conv(t) for t in cq.head),
        body=tuple(Atom(a.rel, tuple(conv(x) for x in a.args)) for a in cq.body),
        comps=tuple(Comp(c.op, conv(c.left), conv(c.right)) for c in cq.comps),
        head_names=cq.head_names,
        name=cq.name,
    )


class _AssumeNonEmpty:
    def __init__(self, var: str):
        self.var = var


class _AssumeEmpty:
    def __init__(self, var: str):
        self.var = var


_INFEASIBLE = object()


def _condition_outcomes(cond: Cond, resolve):
    """Flatten a condition into assumption outcomes for one branch.

    ``resolve`` maps an :class:`~repro.extract.handlers.ArgExpr` to its
    symbolic term. Returns a list whose elements are
    :class:`_AssumeNonEmpty`, :class:`_AssumeEmpty`,
    :class:`~repro.relalg.cq.Comp`, or the ``_INFEASIBLE`` marker. Only
    conjunctive conditions are supported — the DSL has no Or, and
    ``Not(And(...))`` is rejected to keep path conditions conjunctive.
    """
    if isinstance(cond, IsEmpty):
        return [_AssumeEmpty(cond.var)]
    if isinstance(cond, Not):
        inner = cond.operand
        if isinstance(inner, IsEmpty):
            return [_AssumeNonEmpty(inner.var)]
        if isinstance(inner, Not):
            return _condition_outcomes(inner.operand, resolve)
        if isinstance(inner, Compare):
            negated = Compare(_negate_op(inner.op), inner.left, inner.right)
            return _condition_outcomes(negated, resolve)
        raise DbacError("negated conjunctions are not supported in the DSL")
    if isinstance(cond, Compare):
        return [Comp.normalized(cond.op, resolve(cond.left), resolve(cond.right))]
    if isinstance(cond, And):
        outcomes = []
        for operand in cond.operands:
            outcomes.extend(_condition_outcomes(operand, resolve))
        return outcomes
    raise AssertionError(cond)


def _negate_op(op: str) -> str:
    return {"=": "!=", "!=": "=", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}[op]
