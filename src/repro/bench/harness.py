"""Table/figure rendering for the experiment suite.

Each benchmark module prints its experiment's table or figure series in a
stable plain-text format so EXPERIMENTS.md can quote results verbatim.
Results are also appended to ``bench_results/`` as tab-separated files
when the directory exists, for post-processing.
"""

from __future__ import annotations

import os
import platform
import subprocess
from collections.abc import Sequence

_RESULTS_DIR = os.environ.get("DBAC_BENCH_RESULTS", "bench_results")


def provenance_lines() -> list[str]:
    """``#``-comment header lines stamped into every recorded TSV.

    Benchmark numbers are meaningless without knowing what produced
    them: the commit, the interpreter, and how many cores the machine
    had (E13's worker-scaling results especially).
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    return [
        f"# commit: {commit}",
        f"# python: {platform.python_version()}",
        f"# cpus: {os.cpu_count()}",
    ]


def format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Print one experiment table and optionally record it."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    print()
    print(f"== {experiment}: {title} ==")
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(header_line)
    print("-" * len(header_line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    record_result(experiment, headers, rendered)


def print_figure_series(
    experiment: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
) -> None:
    """Print a figure as aligned columns: x plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    print_table(experiment, title + " (figure series)", headers, rows)


def record_result(
    experiment: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> None:
    """Append the table to bench_results/<experiment>.tsv if possible."""
    if not os.path.isdir(_RESULTS_DIR):
        return
    path = os.path.join(_RESULTS_DIR, f"{experiment}.tsv")
    with open(path, "w", encoding="utf-8") as handle:
        for line in provenance_lines():
            handle.write(line + "\n")
        handle.write("\t".join(str(h) for h in headers) + "\n")
        for row in rows:
            handle.write("\t".join(str(c) for c in row) + "\n")
