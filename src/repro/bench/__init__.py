"""Benchmark support: table and figure-series printers shared by benches."""

from repro.bench.harness import print_figure_series, print_table, record_result

__all__ = ["print_figure_series", "print_table", "record_result"]
