"""The cluster front door: a wire-protocol router over gateway shards.

The :class:`ClusterRouter` listens on one address and speaks the exact
``repro.net`` protocol, so every existing client works against a cluster
unchanged. Its job splits by when a frame arrives:

**Before HELLO** the router answers itself:

* ``PING`` — locally (the router's own liveness).
* ``STATS`` — fanned out to every healthy shard concurrently and merged
  with :func:`~repro.cluster.aggregate.aggregate_stats`, plus a
  ``router`` section (routing counters, shard health).
* Admin verbs (``POLICY``/``RELOAD``/``SHADOW``/``PROMOTE``/
  ``ROLLBACK``/``MINE``) — fanned out **rolling, shard by shard**: shard
  *i* finishes its reload (new epoch built, installed, old epoch retired)
  before shard *i+1* starts, so at most one shard is mid-swap at any
  time and a fleet-wide reload never has a stop-the-world moment. The
  merged reply keeps the single-server keys (``report``, ``policy``,
  ...) so :class:`~repro.net.client.AdminClient` works unmodified, and
  adds per-shard replies under ``shards``. Two MINE actions get extra
  treatment: ``candidates`` merges the per-shard candidate lists by
  content fingerprint (the same traffic shape mined on two shards yields
  identical fingerprints — see
  :func:`repro.mining.miner.reconcile_by_fingerprint`), and ``approve``
  tolerates shards that never mined the fingerprint, succeeding when at
  least one shard accepts it.

**At HELLO** the router picks the session's home shard by hashing the
HELLO's bindings (:func:`shard_index_for` — deterministic across
processes and restarts, so a returning principal always lands on the
shard holding its trace), forwards the HELLO on a pooled shard
connection, relays the WELCOME — and then stops interpreting frames
entirely: the client and shard sockets are **spliced** byte-for-byte in
both directions. Per-request deadlines, admission control, idle reaping
and graceful drain all continue to work because the shard's own
``NetServer`` enforces them; the router adds one hop of buffering and
nothing else.

Degradation: a shard that fails ``health_failures`` consecutive health
probes is marked down; HELLOs hashing to it are *shed* with
``ERROR/unavailable`` (sessions are sticky — silently rehoming a
principal would strand its trace) while sessions on healthy shards
continue untouched. A probe success marks it back up.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import logging
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.aggregate import aggregate_stats
from repro.net import protocol
from repro.net.protocol import (
    ConnectionClosed,
    NetError,
    encode_frame,
    read_frame_async,
)

logger = logging.getLogger(__name__)

_ADMIN_VERBS = (
    protocol.POLICY,
    protocol.RELOAD,
    protocol.SHADOW,
    protocol.PROMOTE,
    protocol.ROLLBACK,
    protocol.MINE,
)

#: Admin verbs whose reply the AdminClient unwraps via a ``report`` key.
_REPORT_VERBS = (protocol.RELOAD, protocol.ROLLBACK)


def shard_index_for(bindings: dict, shard_count: int) -> int:
    """The home shard for a session, by content hash of its bindings.

    Uses md5 over the canonical JSON of the sorted binding items — NOT
    Python's ``hash()``, which is salted per process; the router, tests,
    and any external tooling must agree on where a principal lives.
    """
    if shard_count <= 1:
        return 0
    canonical = json.dumps(
        sorted((str(k), v) for k, v in (bindings or {}).items()),
        separators=(",", ":"),
        default=str,
    )
    digest = hashlib.md5(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class RouterConfig:
    """Router tunables; defaults suit tests and the E16 benchmark."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read .port after start()
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: Pre-warmed idle connections kept per shard for HELLO handoff.
    pool_size: int = 2
    connect_timeout_s: float = 5.0
    #: Seconds between health-probe rounds; 0 disables probing.
    health_interval_s: float = 1.0
    #: Consecutive probe failures before a shard is marked down.
    health_failures: int = 3
    #: Deadline for one shard's answer to a fanned-out STATS.
    stats_timeout_s: float = 30.0
    #: Deadline for one shard's answer to an admin verb (must outlast
    #: the shard server's own 120 s admin deadline).
    admin_timeout_s: float = 150.0


@dataclass
class _Shard:
    """One shard target and its health state (router-loop confined)."""

    index: int
    host: str
    port: int
    healthy: bool = True
    failures: int = 0
    sessions_routed: int = 0
    pool: deque = field(default_factory=deque)


class ClusterRouter:
    """Routes one listening address onto N gateway shards. Asyncio-native:
    construct, ``await start()``, read ``.port``, ``await stop()``."""

    def __init__(self, shards: list[tuple[str, int]], config: RouterConfig | None = None):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self.config = config or RouterConfig()
        self._shards = [
            _Shard(index=i, host=host, port=port)
            for i, (host, port) in enumerate(shards)
        ]
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._splices: set[asyncio.Task] = set()
        self.port = self.config.port
        self.counters = {
            "sessions_routed": 0,
            "sessions_shed": 0,
            "pool_hits": 0,
            "pool_misses": 0,
            "health_probes": 0,
            "health_failures": 0,
            "stats_fanouts": 0,
            "admin_fanouts": 0,
        }

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for shard in self._shards:
            await self._replenish(shard)
        if self.config.health_interval_s > 0:
            self._health_task = asyncio.create_task(self._health_loop())

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._splices):
            task.cancel()
        if self._splices:
            await asyncio.gather(*self._splices, return_exceptions=True)
        for shard in self._shards:
            while shard.pool:
                _, writer = shard.pool.popleft()
                writer.close()

    # -- shard connections --------------------------------------------------------

    async def _dial(self, shard: _Shard):
        return await asyncio.wait_for(
            asyncio.open_connection(shard.host, shard.port),
            timeout=self.config.connect_timeout_s,
        )

    async def _acquire(self, shard: _Shard):
        """A fresh or pooled (reader, writer) to ``shard``."""
        while shard.pool:
            reader, writer = shard.pool.popleft()
            if writer.is_closing() or reader.at_eof():
                writer.close()
                continue
            self.counters["pool_hits"] += 1
            return reader, writer
        self.counters["pool_misses"] += 1
        return await self._dial(shard)

    async def _replenish(self, shard: _Shard) -> None:
        """Top the shard's pool back up to ``pool_size`` (best effort)."""
        try:
            while len(shard.pool) < self.config.pool_size:
                shard.pool.append(await self._dial(shard))
        except (OSError, asyncio.TimeoutError):
            pass  # the health loop will notice a genuinely down shard

    # -- health -------------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for shard in self._shards:
                await self._probe(shard)

    async def _probe(self, shard: _Shard) -> None:
        self.counters["health_probes"] += 1
        try:
            reader, writer = await self._acquire(shard)
            try:
                writer.write(encode_frame({"type": protocol.PING, "id": -1}))
                await writer.drain()
                reply = await asyncio.wait_for(
                    read_frame_async(reader, self.config.max_frame_bytes),
                    timeout=self.config.connect_timeout_s,
                )
                if reply.get("type") != protocol.PONG:
                    raise NetError("health probe expected PONG")
            except BaseException:
                writer.close()
                raise
            # The probed connection stays usable (PING is pre-session).
            shard.pool.append((reader, writer))
        except (OSError, NetError, ConnectionClosed, asyncio.TimeoutError):
            self.counters["health_failures"] += 1
            shard.failures += 1
            if shard.healthy and shard.failures >= self.config.health_failures:
                shard.healthy = False
                logger.warning("shard %d marked down", shard.index)
            return
        shard.failures = 0
        if not shard.healthy:
            shard.healthy = True
            logger.info("shard %d marked up", shard.index)
        await self._replenish(shard)

    def _healthy_shards(self) -> list[_Shard]:
        return [shard for shard in self._shards if shard.healthy]

    # -- client serving -----------------------------------------------------------

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame_async(reader, self.config.max_frame_bytes)
                except ConnectionClosed:
                    return
                except NetError as exc:
                    await self._reply(writer, _error(None, exc.code, str(exc)))
                    return
                kind = frame.get("type")
                request_id = frame.get("id")
                if kind == protocol.PING:
                    await self._reply(writer, {"type": protocol.PONG, "id": request_id})
                elif kind == protocol.GOODBYE:
                    await self._reply(writer, {"type": protocol.BYE, "reason": "goodbye"})
                    return
                elif kind == protocol.STATS:
                    await self._reply(writer, await self._cluster_stats(request_id))
                elif kind in _ADMIN_VERBS:
                    await self._reply(writer, await self._rolling_admin(frame))
                elif kind == protocol.HELLO:
                    done = await self._route_session(frame, reader, writer)
                    if done:
                        return
                else:
                    # Covers every session verb — QUERY/EXEC and also
                    # PREPARE/EXECUTE: prepared handles live in the home
                    # shard's per-connection table, so they only make
                    # sense after HELLO. Post-HELLO the byte splice makes
                    # EXECUTE stickiness automatic: every frame of the
                    # session, prepared or not, reaches the shard that
                    # vended the handle.
                    await self._reply(
                        writer,
                        _error(
                            request_id,
                            protocol.ERR_UNAUTHENTICATED,
                            f"{kind} requires a session; HELLO first",
                        ),
                    )
        finally:
            writer.close()

    async def _reply(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(encode_frame(message))
        await writer.drain()

    # -- session routing ----------------------------------------------------------

    async def _route_session(
        self,
        hello: dict,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> bool:
        """Home the session, relay the HELLO, then splice. Returns True
        when the client connection is finished (spliced or fatally shed)."""
        bindings = hello.get("bindings")
        index = shard_index_for(bindings if isinstance(bindings, dict) else {}, len(self._shards))
        shard = self._shards[index]
        if not shard.healthy:
            self.counters["sessions_shed"] += 1
            await self._reply(
                client_writer,
                _error(
                    hello.get("id"),
                    protocol.ERR_UNAVAILABLE,
                    f"shard {index} is down; session cannot be homed",
                ),
            )
            return False  # the client may try a different principal
        try:
            shard_reader, shard_writer = await self._acquire(shard)
        except (OSError, asyncio.TimeoutError):
            shard.failures += 1
            self.counters["sessions_shed"] += 1
            await self._reply(
                client_writer,
                _error(
                    hello.get("id"),
                    protocol.ERR_UNAVAILABLE,
                    f"shard {index} refused a connection",
                ),
            )
            return False
        asyncio.create_task(self._replenish(shard))
        try:
            shard_writer.write(encode_frame(hello))
            await shard_writer.drain()
            reply = await asyncio.wait_for(
                read_frame_async(shard_reader, self.config.max_frame_bytes),
                timeout=self.config.connect_timeout_s,
            )
        except (OSError, NetError, ConnectionClosed, asyncio.TimeoutError):
            shard_writer.close()
            self.counters["sessions_shed"] += 1
            await self._reply(
                client_writer,
                _error(
                    hello.get("id"),
                    protocol.ERR_UNAVAILABLE,
                    f"shard {index} failed during session handoff",
                ),
            )
            return False
        await self._reply(client_writer, reply)
        if reply.get("type") != protocol.WELCOME:
            # Shard rejected the HELLO (bad version, draining, ...); the
            # handoff connection consumed the rejection, so retire it and
            # let the client try again on a fresh pre-session loop turn.
            shard_writer.close()
            return False
        shard.sessions_routed += 1
        self.counters["sessions_routed"] += 1
        await self._splice(client_reader, client_writer, shard_reader, shard_writer)
        return True

    async def _splice(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        shard_reader: asyncio.StreamReader,
        shard_writer: asyncio.StreamWriter,
    ) -> None:
        """Bidirectional byte relay until either side hangs up."""
        task = asyncio.gather(
            _pipe(client_reader, shard_writer),
            _pipe(shard_reader, client_writer),
            return_exceptions=True,
        )
        wrapper = asyncio.ensure_future(task)
        self._splices.add(wrapper)
        try:
            await wrapper
        except asyncio.CancelledError:
            pass
        finally:
            self._splices.discard(wrapper)
            shard_writer.close()

    # -- pre-session fan-outs ------------------------------------------------------

    async def _shard_call(self, shard: _Shard, frame: dict, timeout_s: float) -> dict:
        """One transient request/reply against a shard."""
        reader, writer = await self._dial(shard)
        try:
            writer.write(encode_frame(frame))
            await writer.drain()
            return await asyncio.wait_for(
                read_frame_async(reader, self.config.max_frame_bytes),
                timeout=timeout_s,
            )
        finally:
            with contextlib.suppress(OSError, RuntimeError):
                writer.write(encode_frame({"type": protocol.GOODBYE}))
            writer.close()

    async def _cluster_stats(self, request_id) -> dict:
        self.counters["stats_fanouts"] += 1
        healthy = self._healthy_shards()
        frame = {"type": protocol.STATS, "id": request_id}
        gathered = await asyncio.gather(
            *(
                self._shard_call(shard, frame, self.config.stats_timeout_s)
                for shard in healthy
            ),
            return_exceptions=True,
        )
        replies = [reply for reply in gathered if isinstance(reply, dict)]
        merged = aggregate_stats(replies)
        merged["type"] = protocol.STATS
        merged["id"] = request_id
        merged["router"] = {
            "counters": dict(self.counters),
            "shards": [
                {
                    "index": shard.index,
                    "healthy": shard.healthy,
                    "sessions_routed": shard.sessions_routed,
                }
                for shard in self._shards
            ],
        }
        return merged

    async def _rolling_admin(self, frame: dict) -> dict:
        """Apply one admin verb shard-by-shard (never two mid-swap).

        Stops at the first shard error: for RELOAD that leaves a version
        split (earlier shards new, later shards old), which is exactly
        the degraded-but-sound state the exchange tier's epoch fencing is
        built for — templates stop flowing between the two sides until
        the operator retries and the fleet converges.
        """
        self.counters["admin_fanouts"] += 1
        kind = frame.get("type")
        # A fingerprint is mined per shard: approving it fleet-wide must
        # tolerate the shards that never saw that traffic shape.
        tolerant = kind == protocol.MINE and frame.get("action") == "approve"
        per_shard: list[dict] = []
        base: dict | None = None
        first_error: dict | None = None
        for shard in self._shards:
            if not shard.healthy:
                per_shard.append({"shard": shard.index, "skipped": "down"})
                continue
            try:
                reply = await self._shard_call(shard, frame, self.config.admin_timeout_s)
            except (OSError, NetError, ConnectionClosed, asyncio.TimeoutError) as exc:
                return _error(
                    frame.get("id"),
                    protocol.ERR_UNAVAILABLE,
                    f"{kind} failed at shard {shard.index}: {exc}"
                    f" (applied to {len(per_shard)} shard(s) before it)",
                )
            if reply.get("type") == protocol.ERROR:
                reply.setdefault("error", f"{kind} failed")
                reply["error"] = f"shard {shard.index}: {reply['error']}"
                if tolerant:
                    per_shard.append(
                        {"shard": shard.index, "error": reply["error"]}
                    )
                    first_error = first_error or reply
                    continue
                return reply
            per_shard.append({"shard": shard.index, "reply": reply})
            base = reply
        if base is None:
            if first_error is not None:
                return first_error
            return _error(
                frame.get("id"), protocol.ERR_UNAVAILABLE, "no healthy shards"
            )
        merged = dict(base)
        merged["id"] = frame.get("id")
        merged["shards"] = per_shard
        if kind == protocol.MINE and frame.get("action") == "candidates":
            from repro.mining.miner import reconcile_by_fingerprint

            merged["candidates"] = reconcile_by_fingerprint(
                [
                    entry["reply"].get("candidates", [])
                    for entry in per_shard
                    if "reply" in entry
                ]
            )
        return merged


async def _pipe(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            chunk = await reader.read(1 << 16)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()
    except (ConnectionError, OSError):
        pass
    finally:
        with contextlib.suppress(OSError, RuntimeError):
            if writer.can_write_eof():
                writer.write_eof()


def _error(request_id, code: str, message: str) -> dict:
    return {"type": protocol.ERROR, "id": request_id, "code": code, "error": message}
