"""One gateway shard: the ``repro shard`` subprocess entry point.

A shard is nothing new — it is exactly the ``repro serve`` stack (one
:class:`~repro.serve.gateway.EnforcementGateway` behind one
:class:`~repro.net.server.NetServer` with a
:class:`~repro.lifecycle.reload.LifecycleManager`) plus three
cluster-specific attachments:

* a **ready handshake**: after binding its socket the shard prints
  ``SHARD-READY shard=<i> port=<port>`` on stdout, which is how the
  supervisor learns an ephemeral port and knows the shard is serving;
* an optional :class:`~repro.cluster.exchange.TemplateExchangeClient`
  (``--exchange-port``) publishing fresh decision templates and write
  invalidations to the cluster bus, and applying its peers';
* an optional **decision audit log** (``--audit-log``): one JSON line
  per decision with the bound SQL, bindings, verdict, deciding policy
  version, and the certified trace facts at decision time — the E16
  benchmark's instrument for cross-shard fidelity and torn-version
  checks.

``SIGTERM`` triggers the server's graceful drain (finish in-flight
statements, then close), so a supervisor shutdown never truncates a
decision mid-flight.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from dataclasses import dataclass

from repro.cluster.exchange import TemplateExchangeClient, _serialize_fact


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard subprocess needs to come up."""

    app: str
    shard_id: int
    host: str = "127.0.0.1"
    port: int = 0
    size: int | None = None
    seed: int = 7
    backend: str | None = None
    db_path: str | None = None
    cache_mode: str = "shared"
    check_workers: int = 0
    compile_checks: bool = True
    batch_checks: bool = True
    exchange_host: str = "127.0.0.1"
    exchange_port: int | None = None
    audit_log: str | None = None
    max_in_flight: int = 16
    request_timeout_s: float = 30.0


class _AuditLog:
    """Append-only JSONL decision log (thread-safe; decisions are hot)."""

    def __init__(self, path: str, shard_id: int):
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._shard_id = shard_id

    def __call__(self, record) -> None:
        line = json.dumps(
            {
                "shard": self._shard_id,
                "sql": record.sql,
                "bindings": record.bindings,
                "allowed": record.allowed,
                "policy_version": record.policy_version,
                "from_cache": record.from_cache,
                "trace_len": record.trace_len,
                "facts": [_serialize_fact(fact) for fact in record.facts],
            },
            separators=(",", ":"),
            default=str,
        )
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()


def run_shard(spec: ShardSpec) -> int:
    """Bring the shard up, announce readiness, serve until drained."""
    from repro.lifecycle import LifecycleManager
    from repro.net import NetServer, ServerConfig
    from repro.serve import EnforcementGateway, GatewayConfig
    from repro.workloads import calendar_app, employees, hospital, social

    modules = {
        "calendar": calendar_app,
        "hospital": hospital,
        "employees": employees,
        "social": social,
    }
    app = modules[spec.app].make_app()
    db = app.make_database(
        spec.size or app.default_size,
        spec.seed,
        backend=spec.backend,
        db_path=spec.db_path,
    )
    policy = app.ground_truth_policy()
    gateway = EnforcementGateway(
        db,
        policy,
        GatewayConfig(
            cache_mode=spec.cache_mode,
            check_workers=spec.check_workers,
            compile_checks=spec.compile_checks,
            batch_checks=spec.batch_checks,
            backend=spec.backend,
            db_path=spec.db_path,
        ),
    )
    audit = None
    if spec.audit_log:
        audit = _AuditLog(spec.audit_log, spec.shard_id)
        gateway.decision_audit = audit
    lifecycle = LifecycleManager(gateway)
    server = NetServer(
        gateway,
        ServerConfig(
            host=spec.host,
            port=spec.port,
            shard_id=spec.shard_id,
            max_in_flight=spec.max_in_flight,
            request_timeout_s=spec.request_timeout_s,
        ),
        lifecycle=lifecycle,
    )
    exchange: TemplateExchangeClient | None = None

    async def run() -> None:
        nonlocal exchange
        await server.start()
        if spec.exchange_port is not None:
            exchange = TemplateExchangeClient(
                spec.exchange_host,
                spec.exchange_port,
                gateway,
                spec.shard_id,
            )
            exchange.attach()
        # The supervisor blocks on this exact line (and its flush).
        print(f"SHARD-READY shard={spec.shard_id} port={server.port}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        serving = asyncio.create_task(server.serve_forever())
        stopped = asyncio.create_task(stop.wait())
        try:
            await asyncio.wait(
                {serving, stopped}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stopped.cancel()
            serving.cancel()
            await asyncio.gather(serving, stopped, return_exceptions=True)
            await server.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        if exchange is not None:
            exchange.close()
        gateway.close()
        if audit is not None:
            audit.close()
        print(f"SHARD-STOPPED shard={spec.shard_id}", flush=True)
    return 0


def spec_from_args(args) -> ShardSpec:
    """Build a :class:`ShardSpec` from the ``repro shard`` CLI namespace."""
    return ShardSpec(
        app=args.app,
        shard_id=args.shard_id,
        host=args.host,
        port=args.port,
        size=args.size,
        seed=args.seed,
        backend=args.backend,
        db_path=args.db_path,
        cache_mode=args.cache,
        check_workers=args.check_workers,
        compile_checks=not args.no_compile,
        batch_checks=not args.no_batch,
        exchange_host=args.exchange_host,
        exchange_port=args.exchange_port,
        audit_log=args.audit_log,
        max_in_flight=args.max_in_flight,
        request_timeout_s=args.request_timeout,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via `repro shard`
    sys.exit(run_shard(ShardSpec(app="calendar", shard_id=0)))
