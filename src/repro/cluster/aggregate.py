"""Cluster-wide STATS: merging per-shard metrics into one document.

Each shard's STATS reply carries raw histogram buckets (see
:meth:`~repro.serve.metrics.LatencyHistogram.to_stage_wire`), so the
router can merge latency distributions *exactly* — summed bucket counts,
not averaged percentiles — via the same
:meth:`~repro.serve.metrics.LatencyHistogram.merge` the in-process
metrics use. Counters sum; gauges (active connections, in-flight) sum;
the cluster cache hit rate is recomputed from the summed shared-cache
hit/miss counters rather than averaging per-shard rates (which would
weight an idle shard equally with a busy one).
"""

from __future__ import annotations

from repro.serve.metrics import LatencyHistogram


def _merge_counters(totals: dict[str, float], counters: dict) -> None:
    for name, value in (counters or {}).items():
        if isinstance(value, (int, float)):
            totals[name] = totals.get(name, 0) + value


def _merge_stages(
    collected: dict[str, list[dict]], stages: dict
) -> None:
    for stage, doc in (stages or {}).items():
        if isinstance(doc, dict):
            collected.setdefault(stage, []).append(doc)


def _combine_stage(docs: list[dict]) -> dict:
    """Merge one stage's per-shard documents into a cluster document."""
    merged = LatencyHistogram()
    exact = True
    for doc in docs:
        histogram = LatencyHistogram.from_stage_wire(doc)
        if histogram is None:
            exact = False
            break
        merged.merge(histogram)
    if exact:
        return merged.to_stage_wire()
    # Pre-buckets shard document: the best mergeable summary is a
    # count-weighted mean and worst-case tails.
    count = sum(float(doc.get("count", 0)) for doc in docs)
    mean = (
        sum(float(doc.get("count", 0)) * float(doc.get("mean_us", 0.0)) for doc in docs)
        / count
        if count
        else 0.0
    )
    summary: dict[str, object] = {"count": count, "mean_us": mean, "approximate": True}
    for tail in ("p50_us", "p95_us", "p99_us", "max_us"):
        summary[tail] = max(float(doc.get(tail, 0.0)) for doc in docs)
    return summary


def aggregate_stats(shard_replies: list[dict]) -> dict:
    """Fold per-shard STATS replies into one cluster-level STATS body.

    The result keeps the single-server shape (``net`` / ``gateway`` /
    ``cache_hit_rate`` / ``policy``) so existing STATS consumers read a
    cluster exactly like one big server, and adds a ``cluster`` section
    with per-shard identity, uptime, and policy versions.
    """
    gateway_counters: dict[str, float] = {}
    view_checks: dict[str, float] = {}
    gateway_stages: dict[str, list[dict]] = {}
    net_counters: dict[str, float] = {}
    net_stages: dict[str, list[dict]] = {}
    active_connections = 0
    in_flight = 0
    shards = []
    versions: set = set()

    for reply in shard_replies:
        gateway = reply.get("gateway") or {}
        _merge_counters(gateway_counters, gateway.get("counters"))
        _merge_counters(view_checks, gateway.get("view_checks"))
        _merge_stages(gateway_stages, gateway.get("stages"))
        net = reply.get("net") or {}
        _merge_counters(net_counters, net.get("counters"))
        _merge_stages(net_stages, net.get("stages"))
        active_connections += int(net.get("active_connections", 0))
        in_flight += int(net.get("in_flight", 0))
        policy = reply.get("policy") or {}
        version = policy.get("active_version")
        if version is not None:
            versions.add(version)
        shards.append(
            {
                "shard_id": reply.get("shard_id"),
                "uptime_s": reply.get("uptime_s"),
                "active_version": version,
                "cache_hit_rate": reply.get("cache_hit_rate"),
            }
        )

    hits = gateway_counters.get("shared_cache_hits", 0)
    misses = gateway_counters.get("shared_cache_misses", 0)
    if not hits and not misses:
        hits = gateway_counters.get("cache_hits", 0)
        misses = gateway_counters.get("cache_misses", 0)
    total = hits + misses
    hit_rate = hits / total if total else 0.0

    # policy_version and pre-computed rates sum like any counter, which
    # is meaningless for a cluster; drop the version (the shard consensus
    # lives under "policy") and recompute the rate from summed hit/miss.
    gateway_counters.pop("policy_version", None)
    if "shared_cache_hit_rate" in gateway_counters:
        shared_total = gateway_counters.get(
            "shared_cache_hits", 0
        ) + gateway_counters.get("shared_cache_misses", 0)
        gateway_counters["shared_cache_hit_rate"] = (
            gateway_counters.get("shared_cache_hits", 0) / shared_total
            if shared_total
            else 0.0
        )

    return {
        "net": {
            "counters": net_counters,
            "stages": {name: _combine_stage(docs) for name, docs in net_stages.items()},
            "active_connections": active_connections,
            "in_flight": in_flight,
        },
        "gateway": {
            "counters": gateway_counters,
            "view_checks": view_checks,
            "stages": {
                name: _combine_stage(docs) for name, docs in gateway_stages.items()
            },
        },
        "cache_hit_rate": hit_rate,
        "policy": {
            "active_versions": sorted(versions),
            "consistent": len(versions) <= 1,
        },
        "cluster": {"shards": shards, "shard_count": len(shard_replies)},
    }
