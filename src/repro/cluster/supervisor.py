"""Parent-side cluster supervision: shard subprocesses + the router.

:class:`ShardProcess` wraps one ``repro shard`` subprocess: it spawns
``python -m repro shard ...`` (with ``PYTHONPATH`` propagated so the
child finds the same checkout), blocks on the ``SHARD-READY`` handshake
line to learn the shard's ephemeral port, keeps draining the child's
stdout so it can never block on a full pipe, and stops the shard with
``SIGTERM`` (graceful drain) escalating to ``SIGKILL``.

:class:`BackgroundCluster` is the synchronous façade tests and the E16
benchmark use, mirroring :class:`~repro.net.server.BackgroundServer`:
``with BackgroundCluster(ClusterConfig(app="calendar", shards=4)) as
cluster:`` brings up the template bus, the shard fleet, and the router
on a dedicated event-loop thread, exposes ``cluster.port`` for any wire
client, and tears everything down (router → shards → bus) on exit.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.exchange import TemplateBus
from repro.cluster.router import ClusterRouter, RouterConfig


def seed_shared_database(app_name: str, size: int | None, seed: int, db_path: str) -> int:
    """Seed ``db_path`` once, in-process, before any shard opens it.

    ``make_database`` reopens an already-populated SQLite file without
    re-seeding, so doing this in the supervisor makes the subsequent
    per-shard opens pure readers of one WAL-mode file. Returns the row
    count seeded (or already present).
    """
    from repro.workloads import calendar_app, employees, hospital, social

    modules = {
        "calendar": calendar_app,
        "hospital": hospital,
        "employees": employees,
        "social": social,
    }
    app = modules[app_name].make_app()
    db = app.make_database(
        size or app.default_size, seed, backend="sqlite", db_path=db_path
    )
    try:
        return db.total_rows()
    finally:
        db.close()


def _pythonpath_for_child() -> dict[str, str]:
    """The child environment, with this checkout's ``src`` on the path."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class ShardProcess:
    """One supervised ``repro shard`` subprocess."""

    def __init__(self, shard_id: int, argv: list[str], ready_timeout_s: float = 30.0):
        self.shard_id = shard_id
        self.port: int | None = None
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro", "shard", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=_pythonpath_for_child(),
            text=True,
        )
        self._tail: list[str] = []
        self._await_ready(ready_timeout_s)
        self._drainer = threading.Thread(
            target=self._drain, name=f"shard-{shard_id}-stdout", daemon=True
        )
        self._drainer.start()

    def _await_ready(self, timeout_s: float) -> None:
        marker = f"SHARD-READY shard={self.shard_id} port="
        deadline = time.monotonic() + timeout_s
        assert self._process.stdout is not None
        while True:
            if time.monotonic() > deadline:
                self.stop()
                raise TimeoutError(
                    f"shard {self.shard_id} did not become ready in {timeout_s}s;"
                    f" output so far: {''.join(self._tail[-20:])!r}"
                )
            line = self._process.stdout.readline()
            if not line:
                code = self._process.poll()
                raise RuntimeError(
                    f"shard {self.shard_id} exited (code {code}) before ready;"
                    f" output: {''.join(self._tail[-20:])!r}"
                )
            self._tail.append(line)
            if line.startswith(marker):
                self.port = int(line[len(marker) :].strip())
                return

    def _drain(self) -> None:
        assert self._process.stdout is not None
        for line in self._process.stdout:
            self._tail.append(line)
            if len(self._tail) > 200:
                del self._tail[:100]

    @property
    def alive(self) -> bool:
        return self._process.poll() is None

    def stop(self, grace_s: float = 10.0) -> None:
        """SIGTERM (graceful drain), then SIGKILL after ``grace_s``."""
        if self._process.poll() is not None:
            return
        try:
            self._process.send_signal(signal.SIGTERM)
            self._process.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            self._process.kill()
            self._process.wait(timeout=5.0)
        except ProcessLookupError:
            pass

    def kill(self) -> None:
        """Immediate SIGKILL — the E16 shard-down experiment's hammer."""
        if self._process.poll() is None:
            self._process.kill()
            self._process.wait(timeout=5.0)


@dataclass(frozen=True)
class ClusterConfig:
    """Everything :class:`BackgroundCluster` needs to bring a fleet up.

    ``shared_db_path`` points every shard at one SQLite file instead of
    each shard seeding a private copy: the supervisor seeds the file
    once in-process (WAL mode, so the shard fleet reads it
    concurrently), then spawns the shards with ``--backend sqlite
    --db-path <file>`` — they find the rows already present and skip
    re-seeding. Writes remain **single-writer**: route all mutations for
    a table through one shard (or keep the workload read-only); see
    docs/cluster.md.
    """

    app: str
    shards: int = 2
    size: int | None = None
    seed: int = 7
    backend: str | None = None
    db_path: str | None = None
    #: One SQLite WAL file shared by every shard (implies backend=sqlite).
    shared_db_path: str | None = None
    cache_mode: str = "shared"
    check_workers: int = 0
    #: Epoch-compiled decision fast path per shard (docs/compilation.md).
    compile_checks: bool = True
    #: Batched in-process containment checking per shard.
    batch_checks: bool = True
    #: Cross-shard template exchange on/off (the E16 ablation knob).
    exchange: bool = True
    #: Directory for per-shard decision audit JSONL logs (None = off).
    audit_dir: str | None = None
    request_timeout_s: float = 30.0
    ready_timeout_s: float = 60.0
    router: RouterConfig = field(default_factory=lambda: RouterConfig(health_interval_s=0.5))

    def __post_init__(self) -> None:
        if self.shared_db_path is not None:
            if self.db_path is not None:
                raise ValueError(
                    "shared_db_path and db_path are mutually exclusive:"
                    " the shared file is passed to every shard as its db_path"
                )
            if self.backend not in (None, "sqlite"):
                raise ValueError(
                    f"shared_db_path requires the sqlite backend,"
                    f" not {self.backend!r}"
                )


class BackgroundCluster:
    """A whole cluster (bus + shards + router) on a background loop thread."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.shards: list[ShardProcess] = []
        self.router: ClusterRouter | None = None
        self.bus: TemplateBus | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "BackgroundCluster":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="cluster-loop", daemon=True
        )
        self._thread.start()
        try:
            if self.config.exchange:
                self.bus = TemplateBus()
                self._call(self.bus.start())
            self._spawn_shards()
            self.router = ClusterRouter(
                [("127.0.0.1", shard.port) for shard in self.shards],
                self.config.router,
            )
            self._call(self.router.start())
            self.port = self.router.port
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        if self.router is not None:
            self._call(self.router.stop())
            self.router = None
        for shard in self.shards:
            shard.stop()
        self.shards = []
        if self.bus is not None:
            self._call(self.bus.stop())
            self.bus = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "BackgroundCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- pieces -------------------------------------------------------------------

    def _spawn_shards(self) -> None:
        config = self.config
        if config.audit_dir is not None:
            Path(config.audit_dir).mkdir(parents=True, exist_ok=True)
        backend, db_path = config.backend, config.db_path
        if config.shared_db_path is not None:
            seed_shared_database(
                config.app, config.size, config.seed, config.shared_db_path
            )
            backend, db_path = "sqlite", config.shared_db_path
        for shard_id in range(config.shards):
            argv = [
                "--app", config.app,
                "--shard-id", str(shard_id),
                "--port", "0",
                "--seed", str(config.seed),
                "--cache", config.cache_mode,
                "--check-workers", str(config.check_workers),
                "--request-timeout", str(config.request_timeout_s),
            ]
            if config.size is not None:
                argv += ["--size", str(config.size)]
            if backend is not None:
                argv += ["--backend", backend]
            if db_path is not None:
                argv += ["--db-path", db_path]
            if not config.compile_checks:
                argv += ["--no-compile"]
            if not config.batch_checks:
                argv += ["--no-batch"]
            if self.bus is not None:
                argv += ["--exchange-port", str(self.bus.port)]
            if config.audit_dir is not None:
                argv += [
                    "--audit-log",
                    str(Path(config.audit_dir) / f"shard-{shard_id}.jsonl"),
                ]
            self.shards.append(
                ShardProcess(shard_id, argv, ready_timeout_s=config.ready_timeout_s)
            )

    def audit_paths(self) -> list[Path]:
        if self.config.audit_dir is None:
            return []
        return [
            Path(self.config.audit_dir) / f"shard-{shard.shard_id}.jsonl"
            for shard in self.shards
        ]

    def _call(self, coroutine):
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(
            timeout=180.0
        )

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
