"""Cross-shard decision-template exchange.

Decision templates are session-agnostic by construction (see
``repro.serve.cache``): a template stored from one user's fresh check can
only allow another user's query when the full checker would have reached
the identical decision. That soundness argument says nothing about
*which process* derived the template — so a cluster can share them
across shards, turning a cache miss paid on one shard into a hit on
every shard.

The exchange is a broadcast bus with re-derivation at the receiver:

* Each shard's :class:`TemplateExchangeClient` hooks the gateway's
  ``template_observer`` (fresh Allow decisions made under a shared
  cache) and ``write_observer`` (tables a write touched) and publishes
  compact JSON events to the :class:`TemplateBus`.
* The bus rebroadcasts every event to every *other* shard.
* A receiving shard does not deserialize the template structure itself.
  It re-parses the event's bound SQL and calls
  :meth:`~repro.serve.cache.SharedDecisionCache.store` — re-running the
  exact generalization logic (pinning, equality pattern, fact patterns)
  the local path runs, so a remotely derived template is bit-for-bit the
  template the shard would have derived from its own fresh check.

Epoch fencing
-------------
A template is only meaningful under the policy that justified it. Every
TEMPLATE event carries the publisher's policy *version* and content
*fingerprint* (:meth:`repro.policy.policy.Policy.fingerprint`); the
receiver captures its own gateway's current epoch **once** and applies
the event only when both match. During a rolling reload the shards
briefly disagree on versions and cross-version events are simply dropped
(counted as ``templates_fenced``) — a template minted under policy v1 is
never planted in a v2 cache. INVALIDATE events are *not* fenced:
evicting templates for a written table is sound under any policy (it
only ever removes cached work).

The race that remains — receiver fetches epoch v1, a reload installs v2,
the store lands in v1's cache — is harmless: v1's caches are retired
with the epoch and never consulted by v2 decisions.
"""

from __future__ import annotations

import asyncio
import logging
import queue
import socket
import threading
from typing import Any

from repro.enforce.decision import Decision
from repro.enforce.trace import _NULL_PREFIX, is_labeled_null
from repro.net import protocol
from repro.net.client import connect_with_retry
from repro.net.protocol import (
    ConnectionClosed,
    NetError,
    encode_frame,
    read_frame,
    read_frame_async,
    write_frame,
)
from repro.relalg.cq import Atom, Const, Var
from repro.sqlir import ast

logger = logging.getLogger(__name__)

#: Bus message types (framed exactly like the client protocol: the
#: payload must be a JSON object with a string ``type``).
TEMPLATE = "TEMPLATE"
INVALIDATE = "INVALIDATE"


# --------------------------------------------------------------------------
# Event serialization
# --------------------------------------------------------------------------


def _serialize_fact(fact: Atom) -> list:
    """``Atom`` → ``[rel, [["const", v] | ["null", n], ...]]``.

    Labeled nulls are serialized by their per-trace name suffix, so two
    occurrences of the *same* null stay identical after a round trip
    (the fact-pattern builder treats every null as a wildcard today, but
    the serialization should not be lossier than the object it carries).
    """
    args: list[list] = []
    for arg in fact.args:
        if is_labeled_null(arg):
            args.append(["null", arg.name[len(_NULL_PREFIX) :]])
        elif isinstance(arg, Const):
            args.append(["const", arg.value])
        else:  # pragma: no cover - trace facts only hold consts and nulls
            raise ValueError(f"cannot serialize fact argument {arg!r}")
    return [fact.rel, args]


def _deserialize_fact(payload: list) -> Atom:
    rel, args = payload
    terms: list = []
    for kind, value in args:
        if kind == "null":
            terms.append(Var(f"{_NULL_PREFIX}{value}"))
        elif kind == "const":
            terms.append(Const(value))
        else:
            raise NetError(
                f"unknown fact argument kind {kind!r}", code=protocol.ERR_MALFORMED
            )
    return Atom(rel, tuple(terms))


def template_event(
    bindings: dict[str, Any],
    decision: Decision,
    epoch,
    shard_id: int,
) -> dict[str, Any]:
    """The wire event publishing one fresh Allow decision.

    Ships the *bound* SQL (``decision.sql`` renders every literal), the
    session bindings, and the certified facts the justification used —
    everything the receiver's ``store()`` needs to re-derive the same
    template — plus the epoch identity for fencing.
    """
    return {
        "type": TEMPLATE,
        "shard": shard_id,
        "sql": decision.sql,
        "bindings": dict(bindings),
        "reason": decision.reason,
        "facts": [_serialize_fact(fact) for fact in decision.facts_used],
        "policy_version": epoch.version,
        "policy_fingerprint": epoch.policy.fingerprint(),
    }


def invalidate_event(tables: tuple[str, ...], epoch, shard_id: int) -> dict[str, Any]:
    """The wire event broadcasting one write's invalidation footprint."""
    return {
        "type": INVALIDATE,
        "shard": shard_id,
        "tables": list(tables),
        "policy_version": epoch.version,
    }


# --------------------------------------------------------------------------
# The bus (runs in the router process)
# --------------------------------------------------------------------------


class TemplateBus:
    """An asyncio broadcast hub: every frame in goes to every *other* peer.

    The bus is deliberately dumb — it neither parses template contents
    nor tracks shard identity; fencing happens at the receivers. Slow
    peers apply TCP backpressure only to themselves: each peer's
    rebroadcast awaits that peer's own drain.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self._server: asyncio.AbstractServer | None = None
        self._peers: dict[int, asyncio.StreamWriter] = {}
        self._next_peer = 0
        self.events_in = 0
        self.events_out = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._peers.values()):
            writer.close()
        self._peers.clear()

    @property
    def peer_count(self) -> int:
        return len(self._peers)

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer_id = self._next_peer
        self._next_peer += 1
        self._peers[peer_id] = writer
        try:
            while True:
                try:
                    event = await read_frame_async(reader, self.max_frame_bytes)
                except (ConnectionClosed, NetError):
                    return
                self.events_in += 1
                frame = encode_frame(event)
                for other_id, other in list(self._peers.items()):
                    if other_id == peer_id:
                        continue
                    try:
                        other.write(frame)
                        await other.drain()
                        self.events_out += 1
                    except (ConnectionError, RuntimeError):
                        self._peers.pop(other_id, None)
        finally:
            self._peers.pop(peer_id, None)
            writer.close()


# --------------------------------------------------------------------------
# The shard-side client
# --------------------------------------------------------------------------


class TemplateExchangeClient:
    """One shard's connection to the bus: publish hooks + apply loop.

    Publishing is asynchronous (a bounded queue drained by a sender
    thread) so the gateway's decision path never blocks on the bus; a
    full queue drops the event (counted) rather than stalling a request.
    The receive thread applies peer events directly into the gateway's
    current epoch, under the fencing rules in the module docstring.
    """

    QUEUE_CAP = 1024

    def __init__(
        self,
        host: str,
        port: int,
        gateway,
        shard_id: int,
        timeout_s: float = 30.0,
    ):
        self._gateway = gateway
        self.shard_id = shard_id
        self._sock = connect_with_retry(host, port, timeout_s)
        self._sock.settimeout(None)
        self._outbox: queue.Queue = queue.Queue(maxsize=self.QUEUE_CAP)
        self._lock = threading.Lock()
        self._counters = {
            "published": 0,
            "publish_dropped": 0,
            "received": 0,
            "templates_applied": 0,
            "templates_fenced": 0,
            "template_errors": 0,
            "invalidations_applied": 0,
        }
        self._closed = threading.Event()
        self._sender = threading.Thread(
            target=self._send_loop, name=f"exchange-send-{shard_id}", daemon=True
        )
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"exchange-recv-{shard_id}", daemon=True
        )
        self._sender.start()
        self._receiver.start()

    # -- wiring into the gateway -------------------------------------------------

    def attach(self) -> None:
        """Install the publish hooks on this client's gateway."""
        self._gateway.template_observer = self._on_fresh_allow
        self._gateway.write_observer = self._on_write

    def _on_fresh_allow(self, bound, bindings, decision, epoch) -> None:
        self._publish(template_event(bindings, decision, epoch, self.shard_id))

    def _on_write(self, tables: tuple[str, ...]) -> None:
        self._publish(invalidate_event(tables, self._gateway.epoch, self.shard_id))

    def _publish(self, event: dict) -> None:
        try:
            self._outbox.put_nowait(event)
        except queue.Full:
            self._count("publish_dropped")

    # -- the two loops -------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            event = self._outbox.get()
            if event is None:
                return
            try:
                write_frame(self._sock, event)
                self._count("published")
            except OSError:
                if not self._closed.is_set():
                    logger.warning("template bus send failed; publishing stopped")
                return

    def _receive_loop(self) -> None:
        while True:
            try:
                event = read_frame(self._sock)
            except (ConnectionClosed, NetError, OSError):
                if not self._closed.is_set():
                    logger.warning("template bus receive failed; exchange stopped")
                return
            self._count("received")
            try:
                self._apply(event)
            except Exception:
                self._count("template_errors")
                logger.exception("failed to apply exchange event")

    # -- applying peer events ------------------------------------------------------

    def _apply(self, event: dict) -> None:
        kind = event.get("type")
        if kind == INVALIDATE:
            evicted = 0
            for cache in self._gateway.epoch.caches():
                for table in event.get("tables", ()):
                    evicted += cache.invalidate_table(table)
            self._count("invalidations_applied")
            if evicted:
                self._gateway.metrics.increment("exchange_invalidations", evicted)
            return
        if kind != TEMPLATE:
            self._count("template_errors")
            return
        # Fence: capture the epoch once; both the identity check and the
        # store go through this one object, so a concurrent reload can at
        # worst land the template in a retired (never-consulted) cache.
        epoch = self._gateway.epoch
        if (
            event.get("policy_version") != epoch.version
            or event.get("policy_fingerprint") != epoch.policy.fingerprint()
        ):
            self._count("templates_fenced")
            return
        cache = epoch.shared_cache
        if cache is None:
            self._count("templates_fenced")
            return
        stmt = self._gateway.db.parse(event["sql"])
        if not isinstance(stmt, ast.Select):
            self._count("template_errors")
            return
        decision = Decision(
            allowed=True,
            sql=event["sql"],
            reason=event.get("reason", "allowed by peer shard"),
            facts_used=tuple(
                _deserialize_fact(fact) for fact in event.get("facts", ())
            ),
        )
        cache.store(stmt, event.get("bindings", {}), decision)
        self._count("templates_applied")
        self._gateway.metrics.increment("exchange_templates_applied")

    # -- bookkeeping ---------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._lock:
            self._counters[name] += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def close(self) -> None:
        self._closed.set()
        if self._gateway.template_observer == self._on_fresh_allow:
            self._gateway.template_observer = None
        if self._gateway.write_observer == self._on_write:
            self._gateway.write_observer = None
        try:
            self._outbox.put_nowait(None)
        except queue.Full:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._sender.join(timeout=2.0)
        self._receiver.join(timeout=2.0)
