"""The cluster tier: many gateways behind one wire-protocol front door.

``repro.cluster`` scales the serving stack horizontally the way a real
policy-enforcement deployment would: N independent **gateway shards**
(each a full :class:`~repro.net.server.NetServer` wrapping its own
:class:`~repro.serve.gateway.EnforcementGateway`) sit behind one
:class:`~repro.cluster.router.ClusterRouter` speaking the *same*
length-prefixed JSON protocol, so every existing client — the blocking
``NetClientConnection``, the ``AdminClient``, the workload driver —
talks to a cluster without changing a byte.

The pieces:

* :mod:`repro.cluster.router` — the asyncio front end. It hashes each
  HELLO's session bindings to a shard (deterministically, so a principal
  always lands on the shard holding its trace), then splices bytes
  between client and shard. Pre-session PING/STATS/admin verbs are
  handled at the router: STATS fans out and *merges* shard metrics,
  RELOAD rolls shard-by-shard.
* :mod:`repro.cluster.exchange` — the template-exchange tier. Shards
  publish newly derived decision templates and write invalidations to a
  broadcast bus; peers re-derive the template into their own shared
  cache (a miss on one shard becomes a hit everywhere), fenced by policy
  version + fingerprint so a template minted under one policy epoch is
  never applied under another.
* :mod:`repro.cluster.aggregate` — cluster-wide STATS: merges per-shard
  counters and raw latency-histogram buckets via
  :meth:`~repro.serve.metrics.LatencyHistogram.merge`.
* :mod:`repro.cluster.shard` / :mod:`repro.cluster.supervisor` — the
  shard subprocess entry point and the parent-side process supervisor
  (:class:`~repro.cluster.supervisor.BackgroundCluster` is the
  test/benchmark façade that brings a whole cluster up and down).

See ``docs/cluster.md`` for the full design and the E16 benchmark for
the scaling, fidelity, and exchange-ablation experiments.
"""

from repro.cluster.aggregate import aggregate_stats
from repro.cluster.exchange import (
    TemplateBus,
    TemplateExchangeClient,
    invalidate_event,
    template_event,
)
from repro.cluster.router import ClusterRouter, RouterConfig, shard_index_for
from repro.cluster.supervisor import BackgroundCluster, ClusterConfig, ShardProcess

__all__ = [
    "BackgroundCluster",
    "ClusterConfig",
    "ClusterRouter",
    "RouterConfig",
    "ShardProcess",
    "TemplateBus",
    "TemplateExchangeClient",
    "aggregate_stats",
    "invalidate_event",
    "shard_index_for",
    "template_event",
]
