"""Answering queries using views: rewriting enumeration and validation.

This module implements the machinery behind three parts of the paper:

* **Enforcement** (§2.2, the Blockaid setting): a query is compliant when
  ``Q ∧ trace-facts`` has an *equivalent* rewriting over the policy views —
  its answer is then computable from information the policy already
  reveals. :func:`find_equivalent_rewriting`.
* **Query-narrowing patches** (§5.2.2): a blocked query is narrowed to a
  *maximally contained* rewriting using the views (Levy et al. '95; with
  comparisons per Afrati et al. '06). :func:`maximally_contained_rewritings`.
* **PQI checking** (§4.3): a non-trivial contained rewriting of a
  sensitive query witnesses positive query implication.

The generator is bucket-style with MiniCon-flavored multi-subgoal
coverage: for each view we enumerate partial homomorphisms from the view
body onto subsets of the query body; candidates are assembled by covering
every query subgoal, then validated by *expansion containment* — the
candidate's expansion over base relations must be contained in (or
equivalent to) the query. Validation by expansion keeps generation simple
and sound: an over-eager candidate is simply rejected.

Trace facts (ground atoms known from prior query answers) participate as
zero-cost coverage: a subgoal matching a known fact needs no view.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.relalg import memo
from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, Atom, Comp, Const, Param, Term, Var, fresh_var_factory
from repro.relalg.containment import cq_contained_in


@dataclass(frozen=True)
class ViewDef:
    """A named view with a CQ definition; the head is what the view exposes."""

    name: str
    cq: CQ


@dataclass(frozen=True)
class Rewriting:
    """A validated rewriting of a query using views (and trace facts).

    ``atoms`` are applications of views (relation name = view name, args =
    exposed values); ``fact_atoms`` are the trace facts relied upon;
    ``rewriting`` is the executable query over the view relations;
    ``expansion`` is its unfolding over base relations.
    """

    atoms: tuple[Atom, ...]
    fact_atoms: tuple[Atom, ...]
    rewriting: CQ
    expansion: CQ

    def describe(self) -> str:
        parts = [repr(a) for a in self.atoms]
        if self.fact_atoms:
            parts.append("facts: " + ", ".join(repr(f) for f in self.fact_atoms))
        return " AND ".join(parts) if parts else "(trivial)"


# --------------------------------------------------------------------------
# Coverage descriptors
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Descriptor:
    """One way to cover a set of query subgoals.

    Either a view application (``view`` set, with the argument tuple the
    rewrite atom will carry) or a trace fact (``fact`` set).
    """

    covers: frozenset[int]
    view: str | None
    args: tuple[Term, ...]
    fact: Atom | None


def _view_descriptors(
    query: CQ,
    closure: ConstraintSet,
    view: ViewDef,
    fresh,
    needed: set[Var],
) -> list[_Descriptor]:
    """Enumerate partial homomorphisms from the view body into the query body.

    Each consistent mapping of a non-empty subset of the view's atoms onto
    query subgoals yields a descriptor, provided every *needed* query
    variable touched by the covered subgoals is exposed through the view
    head (or fixed to a constant).
    """
    view_cq = view.cq.rename_apart({v.name for v in query.variables()})
    head_vars = {t for t in view_cq.head if isinstance(t, Var)}
    descriptors: list[_Descriptor] = []
    seen: set[tuple] = set()
    body = view_cq.body

    def match(view_atom: Atom, subgoal: Atom, phi: dict[Var, Term]) -> dict[Var, Term] | None:
        if view_atom.rel != subgoal.rel or len(view_atom.args) != len(subgoal.args):
            return None
        extension: dict[Var, Term] = {}
        for view_arg, q_arg in zip(view_atom.args, subgoal.args):
            if isinstance(view_arg, Var):
                bound = phi.get(view_arg, extension.get(view_arg))
                if bound is None:
                    extension[view_arg] = q_arg
                elif not closure.equal(bound, q_arg):
                    return None
            else:
                # Constant/param inside the view body must be matched by a
                # provably equal query term.
                if not closure.equal(view_arg, q_arg):
                    return None
        return extension

    def emit(phi: dict[Var, Term], covered: frozenset[int]) -> None:
        # Exposure check (MiniCon property): a query variable touched by
        # the covered subgoals must be recoverable from the view head
        # unless this descriptor covers *every* subgoal using it — a join
        # internal to one view application needs no exposure.
        exposed_images = {phi[v] for v in head_vars if v in phi}
        query_head_vars = {t for t in query.head if isinstance(t, Var)}
        for index in covered:
            for arg in query.body[index].args:
                if not isinstance(arg, Var) or arg not in needed:
                    continue
                if isinstance(closure.canon(arg), Const):
                    continue  # pinned to a constant; nothing to expose
                if any(closure.equal(arg, image) for image in exposed_images):
                    continue
                needed_outside = arg in query_head_vars or any(
                    other_index not in covered
                    and arg in query.body[other_index].variables()
                    for other_index in range(len(query.body))
                )
                if needed_outside:
                    return  # needed variable hidden by this view use
        # The view's own comparisons must not contradict the query's (a view
        # filtering age >= 60 cannot cover a subgoal constrained to age < 30).
        combined = ConstraintSet(
            list(query.comps) + [c.substitute(phi) for c in view_cq.comps]
        )
        if not combined.consistent():
            return
        # Build the rewrite-atom argument list from the view head.
        args: list[Term] = []
        for term in view_cq.head:
            if isinstance(term, Var):
                image = phi.get(term)
                if image is None:
                    image = fresh()  # unrestricted output column
                args.append(image)
            else:
                args.append(term)
        key = (view.name, tuple(args), covered)
        if key in seen:
            return
        seen.add(key)
        descriptors.append(
            _Descriptor(covers=covered, view=view.name, args=tuple(args), fact=None)
        )

    def extend(atom_index: int, phi: dict[Var, Term], covered: frozenset[int]) -> None:
        if atom_index == len(body):
            if covered:
                emit(phi, covered)
            return
        view_atom = body[atom_index]
        # Option 1: leave this view atom unmapped.
        extend(atom_index + 1, phi, covered)
        # Option 2: map it onto some query subgoal.
        for index, subgoal in enumerate(query.body):
            extension = match(view_atom, subgoal, phi)
            if extension is None:
                continue
            phi.update(extension)
            extend(atom_index + 1, phi, covered | {index})
            for key in extension:
                del phi[key]

    extend(0, {}, frozenset())
    return descriptors


def _view_descriptors_cached(
    query: CQ,
    closure: ConstraintSet,
    view: ViewDef,
    fresh,
    needed: set[Var],
) -> list[_Descriptor]:
    """Memoizing front-end for :func:`_view_descriptors`.

    Descriptors are computed once per (canonical query, view) and cached
    in canonical variable space, then translated back into the caller's
    variables through the inverse renaming. Fresh variables (unrestricted
    view output columns) come from a *deterministic per-view* factory
    (``rw_<view>_N``) instead of the caller's shared counter, so the
    cached descriptor list is reusable across calls; per-view prefixes
    keep fresh names collision-free across views, and neither translator
    variables (``Table.Column``) nor canonical ones (``~N``) can collide
    with them.
    """
    if not memo.memoization_enabled():
        return _view_descriptors(query, closure, view, fresh, needed)
    canon_query, inverse = memo.canonical_form(query)
    key = (canon_query, view.name, view.cq)
    cached = memo.DESCRIPTOR_MEMO.get(key)
    if cached is memo.MISSING:
        cached = tuple(
            _view_descriptors(
                canon_query,
                ConstraintSet(canon_query.comps),
                view,
                fresh_var_factory(f"rw_{view.name}_"),
                _needed_variables(canon_query),
            )
        )
        memo.DESCRIPTOR_MEMO.put(key, cached)

    def uncanon(term: Term) -> Term:
        return inverse.get(term, term) if isinstance(term, Var) else term

    return [
        _Descriptor(
            covers=descriptor.covers,
            view=descriptor.view,
            args=tuple(uncanon(arg) for arg in descriptor.args),
            fact=None,
        )
        for descriptor in cached
    ]


def _fact_descriptors(
    query: CQ, closure: ConstraintSet, facts: Sequence[Atom]
) -> list[_Descriptor]:
    descriptors = []
    for fact in facts:
        for index, subgoal in enumerate(query.body):
            if fact.rel != subgoal.rel or len(fact.args) != len(subgoal.args):
                continue
            if all(
                closure.equal(fact_arg, q_arg)
                for fact_arg, q_arg in zip(fact.args, subgoal.args)
            ):
                descriptors.append(
                    _Descriptor(
                        covers=frozenset({index}), view=None, args=fact.args, fact=fact
                    )
                )
    return descriptors


def _needed_variables(query: CQ) -> set[Var]:
    """Variables that must be exposed: head vars and join vars.

    Comparison-only variables are deliberately *not* required: a view
    whose own body enforces the comparison (e.g. ``Age >= 60``) can cover
    the subgoal without exposing the column — expansion validation
    rejects the candidates where the view's constraint is insufficient.
    """
    needed: set[Var] = {t for t in query.head if isinstance(t, Var)}
    counts: dict[Var, int] = {}
    for atom in query.body:
        for var in set(atom.variables()):
            counts[var] = counts.get(var, 0) + 1
    needed.update(v for v, n in counts.items() if n > 1)
    return needed


# --------------------------------------------------------------------------
# Expansion
# --------------------------------------------------------------------------


class _Expander:
    """Unfolds view atoms into base-relation bodies."""

    def __init__(self, views: Sequence[ViewDef]):
        self.by_name = {v.name: v.cq for v in views}

    def expansion_of(
        self,
        rewriting: CQ,
        view_atoms: Sequence[Atom],
        fact_atoms: Sequence[Atom],
    ) -> CQ:
        body: list[Atom] = list(fact_atoms)
        comps: list[Comp] = list(rewriting.comps)
        taken = {v.name for v in rewriting.variables()}
        for atom in view_atoms:
            definition = self.by_name[atom.rel]
            renamed = definition.rename_apart(taken)
            taken.update(v.name for v in renamed.variables())
            substitution: dict[Var, Term] = {}
            for head_term, arg in zip(renamed.head, atom.args):
                if isinstance(head_term, Var):
                    existing = substitution.get(head_term)
                    if existing is None:
                        substitution[head_term] = arg
                    elif existing != arg:
                        comps.append(Comp("=", existing, arg))
                else:
                    comps.append(Comp("=", head_term, arg))
            for body_atom in renamed.body:
                body.append(body_atom.substitute(substitution))
            for comp in renamed.comps:
                comps.append(comp.substitute(substitution))
        return CQ(
            head=rewriting.head,
            body=tuple(body),
            comps=tuple(comps),
            head_names=rewriting.head_names,
            name=(rewriting.name or "R") + "_exp",
        )


# --------------------------------------------------------------------------
# Candidate assembly
# --------------------------------------------------------------------------


def enumerate_rewritings(
    query: CQ,
    views: Sequence[ViewDef],
    facts: Sequence[Atom] = (),
    max_candidates: int = 2000,
    allow_partial: bool = False,
) -> Iterator[Rewriting]:
    """Yield well-formed (not yet validated) rewriting candidates.

    With ``allow_partial=True`` the assembly may *skip* subgoals — the
    shape needed for **containing** rewritings (NQI): an upper bound on
    the query need not cover subgoals no view mentions, as long as every
    head variable is still exposed (checked during candidate build).

    Callers validate via the convenience wrappers
    :func:`find_equivalent_rewriting` / :func:`maximally_contained_rewritings`,
    or check ``candidate.expansion`` against the query themselves.
    """
    if memo.memoization_enabled():
        analysis = memo.ANALYSIS_MEMO.get(query)
        if analysis is memo.MISSING:
            analysis = (ConstraintSet(query.comps), _needed_variables(query))
            memo.ANALYSIS_MEMO.put(query, analysis)
        closure, needed = analysis
    else:
        closure = ConstraintSet(query.comps)
        needed = _needed_variables(query)
    if not closure.consistent():
        return
    expander = _Expander(views)
    fresh = fresh_var_factory("rw")
    descriptors: list[_Descriptor] = []
    # Index views by relation: a view sharing no relation with the query
    # can match no subgoal, so consulting it is provably a no-op.
    query_relations = query.relations()
    for view in views:
        if not (view.cq.relations() & query_relations):
            continue
        descriptors.extend(_view_descriptors_cached(query, closure, view, fresh, needed))
    descriptors.extend(_fact_descriptors(query, closure, facts))

    by_subgoal: list[list[_Descriptor]] = [[] for _ in query.body]
    for descriptor in descriptors:
        for index in descriptor.covers:
            by_subgoal[index].append(descriptor)
    if not allow_partial and any(not bucket for bucket in by_subgoal):
        return  # some subgoal cannot be covered at all
    # Order buckets for fast convergence: trace facts first (exact,
    # zero-cost coverage), then view descriptors covering more subgoals.
    for bucket in by_subgoal:
        bucket.sort(key=lambda d: (d.fact is None, -len(d.covers)))

    emitted = 0

    def assemble(index: int, chosen: list[_Descriptor]) -> Iterator[Rewriting]:
        nonlocal emitted
        if emitted >= max_candidates:
            return
        covered: frozenset[int] = frozenset()
        for descriptor in chosen:
            covered |= descriptor.covers
        while index < len(query.body) and index in covered:
            index += 1
        if index == len(query.body):
            if allow_partial and not chosen:
                return  # the empty rewriting carries no information
            candidate = _build(query, closure, chosen, expander)
            if candidate is not None:
                emitted += 1
                yield candidate
            return
        for descriptor in by_subgoal[index]:
            yield from assemble(index + 1, chosen + [descriptor])
            if emitted >= max_candidates:
                return
        if allow_partial:
            yield from assemble(index + 1, chosen)

    yield from assemble(0, [])


def _build(
    query: CQ,
    closure: ConstraintSet,
    chosen: Sequence[_Descriptor],
    expander: _Expander,
) -> Rewriting | None:
    view_atoms: list[Atom] = []
    fact_atoms: list[Atom] = []
    seen_atoms: set[Atom] = set()
    for descriptor in chosen:
        if descriptor.view is not None:
            atom = Atom(descriptor.view, descriptor.args)
        else:
            assert descriptor.fact is not None
            atom = descriptor.fact
        if atom in seen_atoms:
            continue
        seen_atoms.add(atom)
        if descriptor.view is not None:
            view_atoms.append(atom)
        else:
            fact_atoms.append(atom)

    available: set[Term] = set()
    for atom in view_atoms + fact_atoms:
        available.update(atom.args)

    def is_available(term: Term) -> bool:
        if isinstance(term, Const | Param):
            return True
        if term in available:
            return True
        if isinstance(closure.canon(term), Const):
            return True
        return any(
            isinstance(other, Var) and closure.equal(term, other) for other in available
        )

    def canonical(term: Term) -> Term | None:
        """Rewrite a term onto the rewriting's vocabulary, or None."""
        if isinstance(term, Const | Param) or term in available:
            return term
        pinned = closure.canon(term)
        if isinstance(pinned, Const):
            return pinned
        for other in available:
            if isinstance(other, Var) and closure.equal(term, other):
                return other
        return None

    # The rewriting's head must live in its own vocabulary: map each query
    # head term onto an exposed term (a head variable merely *equal* to an
    # exposed one is rewritten to it). An unexposable head term kills the
    # candidate.
    head: list[Term] = []
    for term in query.head:
        mapped = canonical(term)
        if mapped is None:
            return None
        head.append(mapped)

    kept_comps: list[Comp] = []
    for comp in query.comps:
        left = canonical(comp.left)
        right = canonical(comp.right)
        if left is None or right is None:
            continue
        if isinstance(left, Const) and isinstance(right, Const):
            continue  # ground comparison: true by consistency, drop it
        if left == right and comp.op in ("=", "<="):
            continue  # tautology after canonicalization
        kept_comps.append(Comp(comp.op, left, right))
    rewriting = CQ(
        head=tuple(head),
        body=tuple(view_atoms) + tuple(fact_atoms),
        comps=tuple(kept_comps),
        head_names=query.head_names,
        name=(query.name or "Q") + "_rw",
    )
    expansion = expander.expansion_of(rewriting, view_atoms, fact_atoms)
    return Rewriting(
        atoms=tuple(view_atoms),
        fact_atoms=tuple(fact_atoms),
        rewriting=rewriting,
        expansion=expansion,
    )


# --------------------------------------------------------------------------
# Validated entry points
# --------------------------------------------------------------------------


def find_equivalent_rewriting(
    query: CQ,
    views: Sequence[ViewDef],
    facts: Sequence[Atom] = (),
    max_candidates: int = 2000,
) -> Rewriting | None:
    """Find a rewriting whose expansion is *equivalent* to ``query``.

    This is the compliance condition used by the enforcement proxy: the
    query's answer is then a function of the view contents (plus known
    trace facts), so executing it reveals nothing beyond the policy.
    """
    for candidate in enumerate_rewritings(query, views, facts, max_candidates):
        expansion = candidate.expansion
        if cq_contained_in(expansion, query) and cq_contained_in(query, expansion):
            return candidate
    return None


def maximally_contained_rewritings(
    query: CQ,
    views: Sequence[ViewDef],
    facts: Sequence[Atom] = (),
    max_candidates: int = 2000,
) -> list[Rewriting]:
    """All maximal contained rewritings of ``query`` using ``views``.

    Each returned rewriting's expansion is contained in ``query``,
    satisfiable, and not strictly contained in another returned
    rewriting's expansion.
    """
    valid: list[Rewriting] = []
    for candidate in enumerate_rewritings(query, views, facts, max_candidates):
        expansion = candidate.expansion
        if not ConstraintSet(expansion.comps).consistent():
            continue
        if cq_contained_in(expansion, query):
            valid.append(candidate)
    return _prune_non_maximal(valid)


def _prune_non_maximal(candidates: list[Rewriting]) -> list[Rewriting]:
    kept: list[Rewriting] = []
    for position, candidate in enumerate(candidates):
        dominated = False
        for other_position, other in enumerate(candidates):
            if other_position == position:
                continue
            if cq_contained_in(candidate.expansion, other.expansion):
                if not cq_contained_in(other.expansion, candidate.expansion):
                    dominated = True
                    break
                # Equivalent expansions: keep the structurally smaller one,
                # breaking ties by enumeration order.
                if (_size(other), other_position) < (_size(candidate), position):
                    dominated = True
                    break
        if not dominated:
            kept.append(candidate)
    return kept


def _size(rewriting: Rewriting) -> int:
    return len(rewriting.atoms) + len(rewriting.fact_atoms)
