"""Memoization for the rewriting/containment core.

The compliance checker's miss path re-derives the same intermediate
results over and over: the containment test is run twice per rewriting
candidate (equivalence = mutual containment), and the per-view partial
homomorphisms (:func:`~repro.relalg.rewrite._view_descriptors`) are
recomputed for every ``enumerate_rewritings`` call even when the query
shape was seen moments ago — blocked queries in particular repeat their
full checker run on every request, because block decisions are never
cached as decision templates.

This module provides the two ingredients the memoized core needs:

* **Canonicalization** — :func:`canonical_form` renames a CQ's variables
  to position-stable names (``~0``, ``~1``, ...) in order of first
  occurrence and strips the semantically-inert ``name``/``head_names``
  fields. Alpha-equivalent queries (same shape, same constants, different
  variable names — e.g. the same SQL translated in two sessions) share
  one canonical form, so they share cache entries. Constants are *not*
  abstracted: containment and descriptor enumeration genuinely depend on
  them (the constraint closure compares them against view constants).

* **Bounded LRU memos** — :class:`LRUMemo` is a thread-safe
  least-recently-used map with hit/miss/eviction counters, sized so a
  long-lived gateway cannot grow without bound. The shared instances
  (:data:`CONTAINMENT_MEMO`, :data:`DESCRIPTOR_MEMO`,
  :data:`ANALYSIS_MEMO`) are process-global: every session of a gateway
  — and every checker-pool worker process, each in its own process —
  amortizes across all queries it sees.

Memoization is soundness-neutral by construction: a memo key captures
*every* input the memoized computation reads (the canonical query, and
for descriptors the view's name and instantiated definition), so a hit
replays a value the seed code would have recomputed identically.
``set_memoization(False)`` restores the seed computation path exactly —
the E13 benchmark uses this for its memoized-vs-seed agreement and
ablation runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace

from repro.relalg.cq import CQ, Var

#: Prefix for canonical variable names. The SQL translator produces
#: ``Table.Column``-style names and the rewriting engine ``rw...`` names;
#: neither starts with ``~``, so canonical names never collide with real
#: query variables.
_CANON_PREFIX = "~"

#: Sentinel returned by :meth:`LRUMemo.get` on a miss. A sentinel (rather
#: than ``None``) lets memos store falsy values like ``False`` — the common
#: case for containment results.
MISSING = object()


class LRUMemo:
    """A bounded, thread-safe LRU cache with observability counters."""

    def __init__(self, name: str, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self._data: OrderedDict[object, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: object) -> object:
        """The cached value for ``key``, or :data:`MISSING`."""
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is MISSING:
                self.misses += 1
                return MISSING
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
            }


#: ``cq_contained_in`` results keyed by (canonical q1, canonical q2).
CONTAINMENT_MEMO = LRUMemo("containment", maxsize=8192)
#: Per-view descriptor lists keyed by (canonical query, view name, view CQ).
DESCRIPTOR_MEMO = LRUMemo("descriptors", maxsize=4096)
#: Per-query analysis (constraint closure + needed variables) keyed by the
#: query CQ itself — *not* canonicalized, because the cached ConstraintSet
#: lives in the caller's variable space.
ANALYSIS_MEMO = LRUMemo("analysis", maxsize=2048)

_ALL_MEMOS = (CONTAINMENT_MEMO, DESCRIPTOR_MEMO, ANALYSIS_MEMO)

_enabled = True


def memoization_enabled() -> bool:
    return _enabled


def set_memoization(enabled: bool) -> bool:
    """Enable/disable the memoized paths; returns the previous setting.

    With memoization off, ``cq_contained_in`` and ``enumerate_rewritings``
    run the seed computation verbatim (no canonicalization, no caching) —
    the reference behavior the E13 agreement checks compare against.
    """
    global _enabled
    previous = _enabled
    _enabled = enabled
    return previous


def clear_memos() -> None:
    for memo in _ALL_MEMOS:
        memo.clear()


def reset_memo_stats() -> None:
    for memo in _ALL_MEMOS:
        memo.reset_stats()


def memo_stats() -> dict[str, int]:
    """Flat counter dict suitable for merging into gateway metrics."""
    flat: dict[str, int] = {}
    for memo in _ALL_MEMOS:
        for key, value in memo.stats().items():
            flat[f"{memo.name}_{key}"] = value
    return flat


# --------------------------------------------------------------------------
# Canonicalization
# --------------------------------------------------------------------------


def canonical_form(cq: CQ) -> tuple[CQ, dict[Var, Var]]:
    """``(canonical CQ, inverse renaming)`` for ``cq``.

    Variables are renamed to ``~0``, ``~1``, ... in order of first
    occurrence (head, then body atoms, then comparisons); ``name`` and
    ``head_names`` are stripped, since no memoized computation reads
    them. The inverse map sends canonical variables back to the
    originals, so cached values expressed over canonical variables can be
    translated into the caller's variable space.
    """
    mapping: dict[Var, Var] = {}

    def visit(term: object) -> None:
        if isinstance(term, Var) and term not in mapping:
            mapping[term] = Var(f"{_CANON_PREFIX}{len(mapping)}")

    for term in cq.head:
        visit(term)
    for atom in cq.body:
        for arg in atom.args:
            visit(arg)
    for comp in cq.comps:
        visit(comp.left)
        visit(comp.right)
    canonical = replace(cq.substitute(mapping), head_names=(), name=None)
    inverse = {canon: original for original, canon in mapping.items()}
    return canonical, inverse
