"""Render conjunctive queries back to SQL SELECT statements.

The inverse of :mod:`repro.relalg.translate`, used wherever the system
produces a *new* query rather than vetting an existing one: extracted
policy views (§3.2), query-narrowing patches and access-check conditions
(§5.2.2).

Each body atom becomes a FROM entry with a generated alias; repeated
variables become join equalities; constants and params in atom arguments
become WHERE equalities; comparison constraints render directly.
"""

from __future__ import annotations

from repro.relalg.cq import CQ, Comp, Const, Param, Term, Var
from repro.sqlir import ast
from repro.relalg.translate import SchemaInfo
from repro.util.errors import DbacError


def cq_to_select(query: CQ, schema: SchemaInfo) -> ast.Select:
    """Build a SELECT AST equivalent to ``query``.

    Raises :class:`DbacError` if a head variable does not occur in the
    body (such a query has no SQL form in this dialect).
    """
    aliases: list[tuple[str, str]] = []  # (alias, table)
    var_location: dict[Var, ast.Column] = {}
    where: list[ast.Expr] = []

    for index, atom in enumerate(query.body):
        alias = f"t{index}"
        aliases.append((alias, atom.rel))
        try:
            columns = schema.columns_of(atom.rel)
        except KeyError:
            raise DbacError(f"unknown relation {atom.rel!r}") from None
        if len(columns) != len(atom.args):
            raise DbacError(
                f"atom {atom!r} arity does not match table {atom.rel!r}"
            )
        for column, arg in zip(columns, atom.args):
            reference = ast.Column(table=alias, name=column)
            if isinstance(arg, Var):
                if arg in var_location:
                    where.append(ast.Comparison("=", var_location[arg], reference))
                else:
                    var_location[arg] = reference
            elif isinstance(arg, Const):
                if arg.value is None:
                    where.append(ast.IsNull(reference))
                else:
                    where.append(ast.Comparison("=", reference, ast.Literal(arg.value)))
            elif isinstance(arg, Param):
                where.append(
                    ast.Comparison("=", reference, ast.Param(name=arg.name))
                )

    def render_term(term: Term) -> ast.Expr:
        if isinstance(term, Var):
            if term not in var_location:
                raise DbacError(f"variable {term!r} does not occur in the body")
            return var_location[term]
        if isinstance(term, Const):
            return ast.Literal(term.value)
        if isinstance(term, Param):
            return ast.Param(name=term.name)
        raise AssertionError(term)

    for comp in query.comps:
        op = "<>" if comp.op == "!=" else comp.op
        left = render_term(comp.left)
        right = render_term(comp.right)
        if comp.op == "=" and isinstance(right, ast.Literal) and right.value is None:
            where.append(ast.IsNull(left))
        elif comp.op == "!=" and isinstance(right, ast.Literal) and right.value is None:
            where.append(ast.IsNull(left, negated=True))
        else:
            where.append(ast.Comparison(op, left, right))

    items = []
    for position, term in enumerate(query.head):
        name = (
            query.head_names[position]
            if position < len(query.head_names)
            else None
        )
        expr = render_term(term)
        alias_name = None
        if name and not (isinstance(expr, ast.Column) and expr.name == name):
            alias_name = name
        items.append(ast.SelectItem(expr, alias_name))

    where_expr: ast.Expr | None = None
    if where:
        where_expr = where[0] if len(where) == 1 else ast.BoolOp("AND", tuple(where))
    return ast.Select(
        items=tuple(items),
        sources=tuple(ast.TableRef.of(table, alias) for alias, table in aliases),
        where=where_expr,
    )


def cq_to_sql(query: CQ, schema: SchemaInfo) -> str:
    """Render a CQ as SQL text."""
    from repro.sqlir.printer import to_sql

    return to_sql(cq_to_select(query, schema))
