"""Epoch-time policy compilation (the relalg layer of the compiled checker).

A :class:`CompiledPolicy` is built **once per policy epoch** (see
``repro.serve.gateway.PolicyEpoch``) and consumed by every checker that
serves that epoch. It front-loads the per-check work the seed checker
redid on every miss:

* each conjunctive view becomes a :class:`CompiledView` — its relation
  set, parameter names, and symbolic body pre-extracted, so check-time
  code never walks the view AST again;
* a flattened ``relation -> view indexes`` dispatch table replaces the
  "scan every view" loops (`relevant_relations` walks precomputed
  frozensets instead of recomputing ``view.cq.relations()`` per check);
* instantiated ``ViewDef`` lists are memoized per bindings tuple — the
  common serving shape is a handful of distinct principals issuing many
  statements each, so instantiation (a full substitution walk over every
  view body) collapses to one dict probe;
* the policy's structural constants and content fingerprint are computed
  once and shared (the fingerprint fences cross-shard template events).

Everything here is *immutable after construction*: a compiled policy can
be handed to forked checker-pool workers, shared across gateway session
threads, and swapped atomically on hot reload without locking beyond the
small LRU guarding the bindings memo.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass

from repro.policy.policy import Policy
from repro.relalg.cq import CQ
from repro.relalg.rewrite import ViewDef
from repro.relalg.translate import SchemaInfo

#: Distinct bindings tuples memoized per compiled policy. Serving traffic
#: concentrates on few principals; 512 is far above any workload in repo.
_VIEW_DEF_MEMO_SIZE = 512


@dataclass(frozen=True)
class CompiledView:
    """One conjunctive policy view, pre-analyzed at compile time."""

    name: str
    #: The symbolic (parameterized) definition — still needed for
    #: instantiation on a never-seen bindings tuple.
    cq: CQ
    #: Base relations the view body touches (precomputed frozenset; the
    #: seed checker recomputed ``view.cq.relations()`` on every check).
    relations: frozenset[str]
    #: Parameters the view consumes, for diagnostics.
    param_names: tuple[str, ...] = ()


class CompiledPolicy:
    """A policy compiled for one epoch: dispatch tables + memoized views.

    The public surface mirrors what ``ComplianceChecker`` needs so the
    checker can route through it without behavior change:

    * :meth:`view_defs` — drop-in for ``Policy.view_defs`` (same views,
      same order), memoized per bindings;
    * :meth:`relevant_relations` — the checker's trace-fact relation
      closure, over precomputed frozensets;
    * :attr:`view_constants` — ``Policy.constants()`` computed once.
    """

    def __init__(self, schema: SchemaInfo, policy: Policy):
        started = time.perf_counter()
        self.schema = schema
        self.policy = policy
        self.view_constants: frozenset[object] = frozenset(policy.constants())
        self.fingerprint: str = policy.fingerprint()
        views: list[CompiledView] = []
        for view in policy:
            if not view.is_conjunctive:
                continue
            cq = view.ucq.disjuncts[0]
            views.append(
                CompiledView(
                    name=view.name,
                    cq=cq,
                    relations=frozenset(cq.relations()),
                    param_names=tuple(view.param_names),
                )
            )
        #: Conjunctive views in policy order — the order ``view_defs``
        #: must preserve for decision-for-decision agreement with the
        #: seed checker (rewriting enumeration is order-sensitive).
        self.views: tuple[CompiledView, ...] = tuple(views)
        dispatch: dict[str, list[int]] = {}
        for index, compiled in enumerate(self.views):
            for rel in compiled.relations:
                dispatch.setdefault(rel, []).append(index)
        #: Flattened ``relation -> view indexes`` dispatch table.
        self.dispatch: dict[str, tuple[int, ...]] = {
            rel: tuple(indexes) for rel, indexes in dispatch.items()
        }
        self._view_def_memo: OrderedDict[tuple, list[ViewDef]] = OrderedDict()
        self._memo_lock = threading.Lock()
        self.view_def_hits = 0
        self.view_def_misses = 0
        #: Wall-clock cost of this compile, for the E17 rebuild table.
        self.build_seconds = time.perf_counter() - started

    # -- checker-facing surface ---------------------------------------------

    def view_defs(self, bindings: Mapping[str, object]) -> list[ViewDef]:
        """Instantiated view definitions, memoized per bindings tuple.

        Falls back to uncached instantiation when a binding value is
        unhashable (never the case for wire traffic, which is JSON).
        Returns a fresh list each call; the ``ViewDef`` objects inside
        are immutable and safely shared.
        """
        try:
            key = tuple(sorted(bindings.items()))
            hash(key)
        except TypeError:
            self.view_def_misses += 1
            return self.policy.view_defs(bindings)
        with self._memo_lock:
            cached = self._view_def_memo.get(key)
            if cached is not None:
                self._view_def_memo.move_to_end(key)
                self.view_def_hits += 1
                return list(cached)
        defs = self.policy.view_defs(bindings)
        with self._memo_lock:
            self.view_def_misses += 1
            self._view_def_memo[key] = defs
            self._view_def_memo.move_to_end(key)
            while len(self._view_def_memo) > _VIEW_DEF_MEMO_SIZE:
                self._view_def_memo.popitem(last=False)
        return list(defs)

    def relevant_relations(self, query_relations: set[str]) -> set[str]:
        """The checker's relation closure, over precomputed frozensets.

        Replicates ``ComplianceChecker._relevant_relations`` exactly —
        a single in-order pass where each connected view widens the
        reachable set for the views after it — so trace-fact selection
        (and therefore every decision) is unchanged.
        """
        relations = set(query_relations)
        for compiled in self.views:
            if compiled.relations & relations:
                relations |= compiled.relations
        return relations

    def touching(self, relation: str) -> tuple[CompiledView, ...]:
        """Views whose body mentions ``relation`` (flattened dispatch)."""
        return tuple(
            self.views[index] for index in self.dispatch.get(relation, ())
        )

    def stats(self) -> dict[str, object]:
        return {
            "views": len(self.views),
            "relations": len(self.dispatch),
            "view_def_hits": self.view_def_hits,
            "view_def_misses": self.view_def_misses,
            "build_seconds": self.build_seconds,
            "fingerprint": self.fingerprint,
        }


def compile_policy(schema: SchemaInfo, policy: Policy) -> CompiledPolicy:
    """Compile ``policy`` for an epoch (timed; see ``build_seconds``)."""
    return CompiledPolicy(schema, policy)
