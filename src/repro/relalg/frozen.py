"""Canonical ("frozen") database instances of conjunctive queries.

Freezing a CQ produces a concrete database in which the query returns its
frozen head — the classic canonical-database construction, extended to
honor comparison constraints by solving for a satisfying assignment of the
variables.

Used by counterexample generation (diagnosis) and by the bounded
refutation search in the PQI/NQI checkers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, Const, Param, Term, Var
from repro.util.errors import DbacError


@dataclass
class FrozenInstance:
    """A concrete instance: relation name → set of value tuples.

    ``assignment`` maps each variable of the source query to the concrete
    value chosen for it; ``head_row`` is the query's answer row on this
    instance.
    """

    facts: dict[str, set[tuple]]
    assignment: dict[Var, object]
    head_row: tuple

    def copy(self) -> "FrozenInstance":
        return FrozenInstance(
            facts={rel: set(rows) for rel, rows in self.facts.items()},
            assignment=dict(self.assignment),
            head_row=self.head_row,
        )


def freeze(
    query: CQ,
    param_values: dict[str, object] | None = None,
    value_base: int = 1000,
) -> FrozenInstance:
    """Build a canonical database on which ``query`` returns its head.

    Params still present in the query are assigned synthetic distinct
    values unless ``param_values`` provides them. Raises
    :class:`DbacError` if the query's comparisons are unsatisfiable (no
    canonical instance exists).
    """
    assignment = solve_assignment(query, param_values, value_base)
    if assignment is None:
        raise DbacError("cannot freeze an unsatisfiable query")

    def value_of(term: Term) -> object:
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            return assignment[term]
        if isinstance(term, Param):
            return assignment[Var(f"?{term.name}")]
        raise AssertionError(term)

    facts: dict[str, set[tuple]] = {}
    for atom in query.body:
        row = tuple(value_of(a) for a in atom.args)
        facts.setdefault(atom.rel, set()).add(row)
    head_row = tuple(value_of(t) for t in query.head)
    var_assignment = {v: assignment[v] for v in query.variables()}
    return FrozenInstance(facts=facts, assignment=var_assignment, head_row=head_row)


def solve_assignment(
    query: CQ,
    param_values: dict[str, object] | None = None,
    value_base: int = 1000,
) -> dict[Var, object] | None:
    """Find values for the query's variables satisfying its comparisons.

    Params are modeled as pseudo-variables named ``?<name>`` so the caller
    can pin them via ``param_values``. Returns None when unsatisfiable.

    The solver handles the fragment the rest of the package produces:
    equality classes with at most one constant, and order constraints over
    numeric values. Unconstrained classes get fresh, pairwise-distinct
    values (``value_base``, ``value_base + 10``, ...), which makes frozen
    instances "generic": distinct variables freeze to distinct values
    unless the constraints force otherwise.
    """
    param_values = param_values or {}
    comps = list(query.comps)
    # Rewrite params into pseudo-vars, pinning provided values.
    pseudo: dict[Param, Var] = {}

    def conv(term: Term) -> Term:
        if isinstance(term, Param):
            var = pseudo.setdefault(term, Var(f"?{term.name}"))
            return var
        return term

    from repro.relalg.cq import Comp  # local import to avoid cycle noise

    comps = [Comp(c.op, conv(c.left), conv(c.right)) for c in comps]
    variables: set[Var] = set()
    for term in query.head:
        converted = conv(term)
        if isinstance(converted, Var):
            variables.add(converted)
    for atom in query.body:
        for arg in atom.args:
            converted = conv(arg)
            if isinstance(converted, Var):
                variables.add(converted)
    for comp in comps:
        for term in (comp.left, comp.right):
            if isinstance(term, Var):
                variables.add(term)
    for param, var in pseudo.items():
        if param.name in param_values:
            comps.append(Comp("=", var, Const(param_values[param.name])))

    closure = ConstraintSet(comps)
    if not closure.consistent():
        return None

    # Group variables into equivalence classes.
    classes: dict[Term, list[Var]] = {}
    for var in sorted(variables, key=lambda v: v.name):
        classes.setdefault(closure.canon(var), []).append(var)

    assignment: dict[Var, object] = {}
    # Pass 1: classes whose representative is a constant.
    unvalued: list[Term] = []
    for rep, members in classes.items():
        if isinstance(rep, Const):
            for var in members:
                assignment[var] = rep.value
        else:
            unvalued.append(rep)

    # Pass 2: order the remaining classes topologically by the strict/
    # non-strict order constraints among them and against constants, then
    # assign numeric values respecting the bounds.
    ordered = _order_classes(closure, unvalued)
    if ordered is None:
        return None
    counter = 0
    values: dict[Term, object] = {}
    for rep in ordered:
        low, low_strict = _numeric_lower_bound(closure, rep, values)
        high, high_strict = _numeric_upper_bound(closure, rep, values)
        value = _pick_value(low, low_strict, high, high_strict, value_base + 10 * counter)
        if value is None:
            return None
        values[rep] = value
        counter += 1
    for rep, members in classes.items():
        if rep in values:
            for var in members:
                assignment[var] = values[rep]

    # Final verification against the original comparisons.
    verify = _verify(comps, assignment)
    if not verify:
        return None
    return assignment


def _order_classes(closure: ConstraintSet, reps: list[Term]) -> list[Term] | None:
    """Topologically order class representatives by implied ``<=``."""
    reps = list(reps)
    # Kahn's algorithm over implied <= among reps (small n; O(n^2) probes).
    remaining = set(reps)
    ordered: list[Term] = []
    while remaining:
        progressed = False
        for rep in sorted(remaining, key=repr):
            if all(
                other == rep or not closure._less_or_equal(other, rep)
                for other in remaining
                if other != rep
            ):
                ordered.append(rep)
                remaining.discard(rep)
                progressed = True
                break
        if not progressed:
            # <=-cycle among distinct classes: they must all be equal; give
            # them the same slot by breaking the tie arbitrarily.
            rep = sorted(remaining, key=repr)[0]
            ordered.append(rep)
            remaining.discard(rep)
    return ordered


def _numeric_lower_bound(closure: ConstraintSet, rep, values):
    """Tightest known numeric lower bound for ``rep`` (value, strict)."""
    best = (None, False)
    for other, value in values.items():
        if not isinstance(value, int | float):
            continue
        if closure._strictly_less(other, rep):
            if best[0] is None or value >= best[0]:
                best = (value, True)
        elif closure._less_or_equal(other, rep):
            if best[0] is None or value > best[0]:
                best = (value, False)
    for const in _const_terms(closure):
        if not isinstance(const.value, int | float):
            continue
        if closure._strictly_less(const, rep):
            if best[0] is None or const.value >= best[0]:
                best = (const.value, True)
        elif closure._less_or_equal(const, rep):
            if best[0] is None or const.value > best[0]:
                best = (const.value, False)
    return best


def _numeric_upper_bound(closure: ConstraintSet, rep, values):
    best = (None, False)
    for other, value in values.items():
        if not isinstance(value, int | float):
            continue
        if closure._strictly_less(rep, other):
            if best[0] is None or value <= best[0]:
                best = (value, True)
        elif closure._less_or_equal(rep, other):
            if best[0] is None or value < best[0]:
                best = (value, False)
    for const in _const_terms(closure):
        if not isinstance(const.value, int | float):
            continue
        if closure._strictly_less(rep, const):
            if best[0] is None or const.value <= best[0]:
                best = (const.value, True)
        elif closure._less_or_equal(rep, const):
            if best[0] is None or const.value < best[0]:
                best = (const.value, False)
    return best


def _const_terms(closure: ConstraintSet):
    for term in closure._terms:
        canon = closure.canon(term)
        if isinstance(canon, Const):
            yield canon


def _pick_value(low, low_strict, high, high_strict, default):
    """Choose a numeric value strictly inside the given bounds."""
    if low is None and high is None:
        return default
    if low is None:
        return high - 1 if not isinstance(high, float) else high - 1.0
    if high is None:
        return low + 1
    if low > high:
        return None
    if low == high:
        if low_strict or high_strict:
            return None
        return low
    mid = (low + high) / 2
    if mid == low or mid == high:  # float underflow guard
        return None
    # Prefer integers when they fit.
    candidate = int(mid)
    lower_ok = candidate > low or (candidate == low and not low_strict)
    upper_ok = candidate < high or (candidate == high and not high_strict)
    if lower_ok and upper_ok and candidate != low and candidate != high:
        return candidate
    return mid


def _verify(comps, assignment: dict[Var, object]) -> bool:
    from repro.relalg.constraints import _const_cmp

    def value(term: Term):
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            return assignment.get(term)
        raise AssertionError(term)

    for comp in comps:
        left = value(comp.left)
        right = value(comp.right)
        if not _const_cmp(comp.op, left, right):
            return False
    return True
