"""Conjunctive-query IR and the reasoning algorithms built on it.

This package is the substrate for everything "smart" in the reproduction:

* :mod:`repro.relalg.cq` — terms, atoms, comparison constraints, CQ/UCQ.
* :mod:`repro.relalg.constraints` — closure over ``= != < <=`` used for
  consistency and implication checks.
* :mod:`repro.relalg.translate` — SQL SELECT → UCQ, given a schema.
* :mod:`repro.relalg.containment` — homomorphism-based containment
  (sound for the SPJ + comparison fragment; see module docs).
* :mod:`repro.relalg.frozen` — canonical ("frozen") database instances.
* :mod:`repro.relalg.minimize` — CQ core computation.
* :mod:`repro.relalg.rewrite` — answering queries using views (bucket
  algorithm, used for query-narrowing patches and PQI checking).
"""

from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Term, Var
from repro.relalg.constraints import ConstraintSet
from repro.relalg.containment import cq_contained_in, ucq_contained_in
from repro.relalg.translate import SchemaInfo, translate_select
from repro.relalg.frozen import freeze
from repro.relalg.minimize import minimize_cq

__all__ = [
    "CQ",
    "UCQ",
    "Atom",
    "Comp",
    "Const",
    "ConstraintSet",
    "Param",
    "SchemaInfo",
    "Term",
    "Var",
    "cq_contained_in",
    "freeze",
    "minimize_cq",
    "translate_select",
    "ucq_contained_in",
]
