"""Containment of conjunctive queries with comparisons.

``cq_contained_in(q1, q2)`` decides (soundly) whether every answer of
``q1`` is an answer of ``q2`` on every database. The test searches for a
*containment mapping*: a homomorphism ``h`` from ``q2``'s variables to
``q1``'s terms such that

* every body atom of ``q2`` maps onto a body atom of ``q1`` (argument-wise
  equal modulo the equalities implied by ``q1``'s constraints),
* ``q1``'s constraint closure implies every image ``h(comp)`` of ``q2``'s
  comparisons, and
* the heads line up: ``h(q2.head[i])`` equals ``q1.head[i]`` modulo
  ``q1``'s equalities.

With comparisons, this homomorphism test is sound but not complete (the
complete test enumerates linearizations of ``q1``'s order constraints,
which is exponential; see Klug 1988). Incompleteness can only make the
enforcement proxy *block* a compliant query, never allow a violating one —
the same safety direction Blockaid takes when its solver times out.

``q1``'s equality comparisons are honored by checking argument matches
against the closure rather than syntactically, so ``R(x), x = 3`` matches
an atom ``R(3)`` of the container.
"""

from __future__ import annotations

from repro.relalg import memo
from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Term, Var


def cq_contained_in(q1: CQ, q2: CQ) -> bool:
    """Is ``q1`` contained in ``q2`` (``q1 ⊑ q2``)? Sound, see module doc.

    Results are memoized on the pair of canonical (alpha-renamed) forms:
    containment is invariant under independent variable renaming of either
    side and never reads ``name``/``head_names``, so alpha-equivalent
    pairs share one cached answer.
    """
    if not memo.memoization_enabled():
        return _cq_contained_in_uncached(q1, q2)
    key = (memo.canonical_form(q1)[0], memo.canonical_form(q2)[0])
    cached = memo.CONTAINMENT_MEMO.get(key)
    if cached is not memo.MISSING:
        return cached  # type: ignore[return-value]
    result = _cq_contained_in_uncached(q1, q2)
    memo.CONTAINMENT_MEMO.put(key, result)
    return result


def _cq_contained_in_uncached(q1: CQ, q2: CQ) -> bool:
    if q1.arity != q2.arity:
        return False
    closure = ConstraintSet(q1.comps)
    if not closure.consistent():
        # q1 returns nothing on every database; trivially contained.
        return True
    return _find_mapping(q1, q2, closure) is not None


def containment_mapping(q1: CQ, q2: CQ) -> dict[Var, Term] | None:
    """Return a witnessing containment mapping for ``q1 ⊑ q2``, if found.

    Used by the diagnosis layer to explain *why* a query is compliant.
    Never memoized: the witness is expressed over the callers' concrete
    variables, which canonical-form keying would scramble.
    """
    if q1.arity != q2.arity:
        return None
    closure = ConstraintSet(q1.comps)
    if not closure.consistent():
        return {}
    return _find_mapping(q1, q2, closure)


def cq_contained_in_ucq(q1: CQ, q2: UCQ) -> bool:
    """Sound test for ``q1 ⊑ q2`` with a UCQ container.

    Checks whether some single disjunct contains ``q1`` — sound but not
    complete for unions (a CQ can be contained in a union without being
    contained in any disjunct only when its answers split by case, which
    requires disjunctive reasoning we deliberately avoid).
    """
    return any(cq_contained_in(q1, d) for d in q2.disjuncts)


def ucq_contained_in(q1: CQ | UCQ, q2: CQ | UCQ) -> bool:
    """Sound containment test between CQs/UCQs: all of q1 ⊑ some of q2."""
    left = UCQ.of(q1)
    right = UCQ.of(q2)
    return all(cq_contained_in_ucq(d, right) for d in left.disjuncts)


def equivalent(q1: CQ | UCQ, q2: CQ | UCQ) -> bool:
    """Mutual containment (sound; used for view/policy comparison)."""
    return ucq_contained_in(q1, q2) and ucq_contained_in(q2, q1)


def satisfiable(q: CQ) -> bool:
    """Is the query satisfiable on some database? (Comparison consistency.)"""
    return ConstraintSet(q.comps).consistent()


# --------------------------------------------------------------------------
# Homomorphism search
# --------------------------------------------------------------------------


def _find_mapping(q1: CQ, q2: CQ, closure: ConstraintSet) -> dict[Var, Term] | None:
    """Backtracking search for a containment mapping q2 → q1."""
    # Pre-seed the mapping from the head alignment: h(q2.head[i]) must be
    # C1-equal to q1.head[i].
    mapping: dict[Var, Term] = {}
    for t2, t1 in zip(q2.head, q1.head):
        if isinstance(t2, Var):
            existing = mapping.get(t2)
            if existing is not None:
                if not closure.equal(existing, t1):
                    return None
            else:
                mapping[t2] = t1
        else:
            if not closure.equal(t2, t1):
                return None

    # Candidate atoms per q2 subgoal, bucketed by relation once (the seed
    # rescanned q1's whole body per subgoal per candidate); cheapest
    # bucket first. Bucket order preserves body order, so the search
    # visits the same candidates in the same sequence as before minus the
    # relation mismatches match_atom would have rejected.
    buckets: dict[str, list[Atom]] = {}
    for atom in q1.body:
        buckets.setdefault(atom.rel, []).append(atom)
    empty: list[Atom] = []
    order = sorted(
        range(len(q2.body)),
        key=lambda i: len(buckets.get(q2.body[i].rel, empty)),
    )

    def match_atom(atom2: Atom, atom1: Atom, env: dict[Var, Term]) -> dict[Var, Term] | None:
        if atom2.rel != atom1.rel or len(atom2.args) != len(atom1.args):
            return None
        extension: dict[Var, Term] = {}
        for arg2, arg1 in zip(atom2.args, atom1.args):
            if isinstance(arg2, Var):
                bound = env.get(arg2, extension.get(arg2))
                if bound is None:
                    extension[arg2] = arg1
                elif not closure.equal(bound, arg1):
                    return None
            else:
                # Constant or param on the container side must be matched
                # by a provably-equal term on the contained side.
                if not closure.equal(arg2, arg1):
                    return None
        return extension

    def search(position: int, env: dict[Var, Term]) -> dict[Var, Term] | None:
        if position == len(order):
            # Map any leftover variables (appearing only in comps/head of q2
            # but not in its body) — they are universally constrained, so a
            # mapping must exist for them too; default unmapped comp-only
            # vars fail unless the comps force nothing. We require all of
            # q2's comp variables to be mapped; unmapped ones mean q2 can
            # restrict values arbitrarily, so be conservative and fail.
            for comp in q2.comps:
                image = _image_comp(comp, env)
                if image is None or not closure.implies(image):
                    return None
            return env
        atom2 = q2.body[order[position]]
        for atom1 in buckets.get(atom2.rel, empty):
            extension = match_atom(atom2, atom1, env)
            if extension is None:
                continue
            env.update(extension)
            result = search(position + 1, env)
            if result is not None:
                return result
            for key in extension:
                del env[key]
        return None

    return search(0, mapping)


def _image_comp(comp: Comp, env: dict[Var, Term]) -> Comp | None:
    """Apply a partial mapping to a comparison; None if a var is unmapped."""

    def image(term: Term) -> Term | None:
        if isinstance(term, Var):
            return env.get(term)
        return term

    left = image(comp.left)
    right = image(comp.right)
    if left is None or right is None:
        return None
    return Comp(comp.op, left, right)
