"""Translate SQL SELECT statements into the CQ/UCQ IR.

The translation needs a schema to expand ``*`` and to resolve unqualified
column names; :class:`SchemaInfo` is the minimal protocol (the engine's
``Schema`` satisfies it, and tests can pass a plain dict wrapper).

Translation rules:

* Each table reference gets one body atom whose arguments are fresh
  variables named ``<alias>.<column>``.
* The WHERE clause and JOIN conditions are combined, converted to negation
  normal form, then distributed into DNF; each disjunct becomes one CQ of
  the resulting UCQ. ``IN`` lists expand to equality disjunctions,
  ``IS NULL`` to equality with the NULL constant.
* ``ORDER BY`` and ``LIMIT`` are dropped: for access-control reasoning the
  unlimited, unordered query reveals at least as much information, so this
  is a sound over-approximation. ``DISTINCT`` is a no-op under the set
  semantics of the IR.
* Aggregates, arithmetic in predicates, and LEFT JOIN raise
  :class:`TranslationError` — the engine can run them, the reasoner cannot
  represent them.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.sqlir import ast
from repro.relalg.cq import CQ, UCQ, Atom, Comp, Const, Param, Term, Var
from repro.util.errors import TranslationError

_MAX_DNF_DISJUNCTS = 64


class SchemaInfo(Protocol):
    """The minimal schema interface the translator needs."""

    def columns_of(self, table: str) -> Sequence[str]:
        """Ordered column names of ``table``; raise KeyError if unknown."""
        ...


class DictSchema:
    """A :class:`SchemaInfo` over a plain ``{table: [columns]}`` dict."""

    def __init__(self, tables: dict[str, Sequence[str]]):
        self._tables = dict(tables)

    def columns_of(self, table: str) -> Sequence[str]:
        return self._tables[table]


def translate_select(stmt: ast.Select, schema: SchemaInfo, name: str | None = None) -> UCQ:
    """Translate a SELECT into a UCQ. See module docstring for the rules."""
    scope = _Scope(stmt, schema)
    head, head_names = _translate_head(stmt, scope)
    condition = _combined_condition(stmt)
    if condition is None:
        return UCQ(
            (CQ(head=head, body=scope.atoms, comps=(), head_names=head_names, name=name),),
            name,
        )
    nnf = _to_nnf(condition, negated=False)
    disjuncts = _to_dnf(nnf)
    cqs = []
    for conjuncts in disjuncts:
        comps = tuple(_conjunct_to_comp(c, scope) for c in conjuncts)
        cqs.append(
            CQ(head=head, body=scope.atoms, comps=comps, head_names=head_names, name=name)
        )
    return UCQ(tuple(cqs), name)


def translate_statement(stmt: ast.Statement, schema: SchemaInfo, name: str | None = None) -> UCQ:
    """Translate any read statement; non-SELECTs are rejected."""
    if not isinstance(stmt, ast.Select):
        raise TranslationError(
            f"only SELECT statements have a CQ translation, got {type(stmt).__name__}"
        )
    return translate_select(stmt, schema, name)


# --------------------------------------------------------------------------
# Scope: table aliases and column resolution
# --------------------------------------------------------------------------


class _Scope:
    def __init__(self, stmt: ast.Select, schema: SchemaInfo):
        self.schema = schema
        self.tables: list[ast.TableRef] = list(stmt.tables())
        seen_aliases: set[str] = set()
        for ref in self.tables:
            if ref.alias in seen_aliases:
                raise TranslationError(f"duplicate table alias {ref.alias!r}")
            seen_aliases.add(ref.alias)
        for join in stmt.joins:
            if join.kind != "INNER":
                raise TranslationError("LEFT JOIN has no CQ translation")
        if stmt.group_by:
            raise TranslationError("GROUP BY has no CQ translation")
        self.columns: dict[str, Sequence[str]] = {}
        atoms = []
        for ref in self.tables:
            try:
                columns = schema.columns_of(ref.name)
            except KeyError:
                raise TranslationError(f"unknown table {ref.name!r}") from None
            self.columns[ref.alias] = columns
            args: tuple[Term, ...] = tuple(
                Var(f"{ref.alias}.{col}") for col in columns
            )
            atoms.append(Atom(ref.name, args))
        self.atoms: tuple[Atom, ...] = tuple(atoms)

    def resolve(self, column: ast.Column) -> Var:
        """Resolve a column reference to its variable."""
        if column.table is not None:
            if column.table not in self.columns:
                raise TranslationError(f"unknown table alias {column.table!r}")
            if column.name not in self.columns[column.table]:
                raise TranslationError(
                    f"table {column.table!r} has no column {column.name!r}"
                )
            return Var(f"{column.table}.{column.name}")
        owners = [
            alias for alias, cols in self.columns.items() if column.name in cols
        ]
        if not owners:
            raise TranslationError(f"unknown column {column.name!r}")
        if len(owners) > 1:
            raise TranslationError(
                f"ambiguous column {column.name!r} (in {', '.join(sorted(owners))})"
            )
        return Var(f"{owners[0]}.{column.name}")

    def term_of(self, expr: ast.Expr) -> Term:
        """Translate an atomic expression to a term."""
        if isinstance(expr, ast.Column):
            return self.resolve(expr)
        if isinstance(expr, ast.Literal):
            return Const(expr.value)
        if isinstance(expr, ast.Param):
            return Param(expr.label())
        raise TranslationError(
            f"expression {type(expr).__name__} is outside the CQ fragment"
        )


def _translate_head(stmt: ast.Select, scope: _Scope) -> tuple[tuple[Term, ...], tuple[str, ...]]:
    head: list[Term] = []
    names: list[str] = []
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            aliases = (
                [item.expr.table]
                if item.expr.table is not None
                else [ref.alias for ref in scope.tables]
            )
            for alias in aliases:
                if alias not in scope.columns:
                    raise TranslationError(f"unknown table alias {alias!r}")
                for col in scope.columns[alias]:
                    head.append(Var(f"{alias}.{col}"))
                    names.append(col)
            continue
        term = scope.term_of(item.expr)
        head.append(term)
        if item.alias is not None:
            names.append(item.alias)
        elif isinstance(item.expr, ast.Column):
            names.append(item.expr.name)
        else:
            names.append(f"col{len(names)}")
    return tuple(head), tuple(names)


def _combined_condition(stmt: ast.Select) -> ast.Expr | None:
    parts: list[ast.Expr] = [join.on for join in stmt.joins]
    if stmt.where is not None:
        parts.append(stmt.where)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return ast.BoolOp("AND", tuple(parts))


# --------------------------------------------------------------------------
# NNF / DNF
# --------------------------------------------------------------------------

_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _to_nnf(expr: ast.Expr, negated: bool) -> ast.Expr:
    """Push negation to the leaves, rewriting negated predicates."""
    if isinstance(expr, ast.Not):
        return _to_nnf(expr.operand, not negated)
    if isinstance(expr, ast.BoolOp):
        op = expr.op
        if negated:
            op = "OR" if op == "AND" else "AND"
        return ast.BoolOp(op, tuple(_to_nnf(o, negated) for o in expr.operands))
    if isinstance(expr, ast.Comparison):
        if negated:
            return ast.Comparison(_NEGATED_OP[expr.op], expr.left, expr.right)
        return expr
    if isinstance(expr, ast.InList):
        effective_negated = expr.negated != negated
        if effective_negated:
            conjuncts = tuple(
                ast.Comparison("<>", expr.expr, item) for item in expr.items
            )
            return conjuncts[0] if len(conjuncts) == 1 else ast.BoolOp("AND", conjuncts)
        disjuncts = tuple(ast.Comparison("=", expr.expr, item) for item in expr.items)
        return disjuncts[0] if len(disjuncts) == 1 else ast.BoolOp("OR", disjuncts)
    if isinstance(expr, ast.IsNull):
        effective_negated = expr.negated != negated
        op = "<>" if effective_negated else "="
        return ast.Comparison(op, expr.expr, ast.Literal(None))
    if isinstance(expr, ast.Literal):
        value = bool(expr.value) != negated
        return ast.Literal(value)
    raise TranslationError(
        f"predicate {type(expr).__name__} is outside the CQ fragment"
    )


def _to_dnf(expr: ast.Expr) -> list[list[ast.Expr]]:
    """Distribute an NNF expression into a list of conjunct lists."""
    if isinstance(expr, ast.BoolOp) and expr.op == "OR":
        result: list[list[ast.Expr]] = []
        for operand in expr.operands:
            result.extend(_to_dnf(operand))
            if len(result) > _MAX_DNF_DISJUNCTS:
                raise TranslationError("WHERE clause expands to too many disjuncts")
        return result
    if isinstance(expr, ast.BoolOp) and expr.op == "AND":
        result = [[]]
        for operand in expr.operands:
            operand_dnf = _to_dnf(operand)
            result = [
                existing + branch for existing in result for branch in operand_dnf
            ]
            if len(result) > _MAX_DNF_DISJUNCTS:
                raise TranslationError("WHERE clause expands to too many disjuncts")
        return result
    if isinstance(expr, ast.Literal):
        if expr.value:
            return [[]]
        # FALSE: no disjuncts would mean an empty UCQ; represent the
        # unsatisfiable query with a contradictory comparison instead.
        false_comp = ast.Comparison("<>", ast.Literal(0), ast.Literal(0))
        return [[false_comp]]
    return [[expr]]


def _conjunct_to_comp(expr: ast.Expr, scope: _Scope) -> Comp:
    if isinstance(expr, ast.Comparison):
        left = scope.term_of(expr.left)
        right = scope.term_of(expr.right)
        return Comp.normalized(expr.op, left, right)
    raise TranslationError(
        f"predicate {type(expr).__name__} is outside the CQ fragment"
    )
