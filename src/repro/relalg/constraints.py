"""Closure over comparison constraints: consistency and implication.

:class:`ConstraintSet` takes a collection of :class:`~repro.relalg.cq.Comp`
constraints over terms and answers two questions:

* ``consistent()`` — is there *some* assignment of values to variables and
  params satisfying all constraints?
* ``implies(comp)`` — does every satisfying assignment also satisfy
  ``comp``?

Design notes
------------

* Equalities feed a union-find; each equivalence class may contain at most
  one distinct constant.
* Order constraints (``<``, ``<=``) form a directed graph over class
  representatives. ``a < b`` is implied iff a path from ``a`` to ``b``
  exists that contains at least one strict edge; ``a <= b`` iff any path
  exists. Constant pairs of comparable type contribute implicit edges so
  that e.g. ``x <= 3`` and ``5 <= y`` imply ``x < y``.
* Params are rigid but unknown: two distinct params are treated as
  possibly-equal for consistency and never provably-equal for implication.
  This is the conservative direction for an enforcement checker (it can
  only cause extra blocking, never extra allowing).
* SQL NULL (``Const(None)``) participates in ``=``/``!=`` only; an order
  constraint touching NULL makes the set inconsistent, matching SQL
  semantics where such a predicate can never hold.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relalg.cq import Comp, Const, Param, Term, Var

_NUMERIC = (int, float)


def _comparable(a: object, b: object) -> bool:
    """Can two constant values be ordered against each other?"""
    if a is None or b is None:
        return False
    if isinstance(a, _NUMERIC) and isinstance(b, _NUMERIC):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _const_cmp(op: str, a: object, b: object) -> bool:
    """Evaluate a comparison between two constant values."""
    if op == "=":
        return a == b and (a is None) == (b is None)
    if op == "!=":
        return not _const_cmp("=", a, b)
    if not _comparable(a, b):
        return False
    if op == "<":
        return a < b  # type: ignore[operator]
    if op == "<=":
        return a <= b  # type: ignore[operator]
    raise AssertionError(op)


class ConstraintSet:
    """An immutable view over a set of comparison constraints.

    Build once, then query ``consistent()``/``implies()``/``equal()``.
    """

    def __init__(self, comps: Iterable[Comp] = ()):
        self._parent: dict[Term, Term] = {}
        self._neq: set[tuple[Term, Term]] = set()
        # Order edges between class reps: (u, v, strict) meaning u < v or u <= v.
        self._edges: list[tuple[Term, Term, bool]] = []
        self._inconsistent = False
        self._terms: set[Term] = set()
        pending_order: list[tuple[Term, Term, bool]] = []
        pending_neq: list[tuple[Term, Term]] = []
        for comp in comps:
            self._terms.add(comp.left)
            self._terms.add(comp.right)
            if comp.op == "=":
                self._union(comp.left, comp.right)
            elif comp.op == "!=":
                pending_neq.append((comp.left, comp.right))
            elif comp.op == "<":
                pending_order.append((comp.left, comp.right, True))
            elif comp.op == "<=":
                pending_order.append((comp.left, comp.right, False))
            else:
                raise AssertionError(comp.op)
        if self._inconsistent:
            return
        # Resolve class constants and record non-equalities / order edges
        # against representatives.
        for left, right in pending_neq:
            a, b = self._find(left), self._find(right)
            if a == b:
                self._inconsistent = True
                return
            self._neq.add((a, b))
            self._neq.add((b, a))
        for left, right, strict in pending_order:
            value_left = self._class_const(left)
            value_right = self._class_const(right)
            if value_left is not _NO_CONST and value_right is not _NO_CONST:
                op = "<" if strict else "<="
                if not _const_cmp(op, value_left, value_right):
                    self._inconsistent = True
                    return
                continue
            if value_left is None or value_right is None:
                # An order constraint touching NULL can never hold.
                self._inconsistent = True
                return
            self._edges.append((self._find(left), self._find(right), strict))
        self._add_constant_edges()
        if not self._inconsistent:
            self._check_order_consistency()

    # -- union-find ----------------------------------------------------------

    def _find(self, term: Term) -> Term:
        parent = self._parent
        root = term
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(term, term) != term:
            parent[term], term = root, parent[term]
        return root

    def _union(self, a: Term, b: Term) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        # Prefer constants as representatives so class constants are easy to
        # read off; two distinct constants in one class is a contradiction.
        if isinstance(ra, Const) and isinstance(rb, Const):
            if ra.value != rb.value or (ra.value is None) != (rb.value is None):
                self._inconsistent = True
            self._parent[rb] = ra
            return
        if isinstance(rb, Const):
            ra, rb = rb, ra
        # Keep params as representatives over plain vars (rigid symbols are
        # more informative), but constants always win.
        if isinstance(rb, Param) and not isinstance(ra, Const | Param):
            ra, rb = rb, ra
        self._parent[rb] = ra

    def _class_const(self, term: Term):
        """The constant value of ``term``'s class, or the _NO_CONST marker."""
        rep = self._find(term)
        if isinstance(rep, Const):
            return rep.value
        return _NO_CONST

    # -- closure construction --------------------------------------------------

    def _add_constant_edges(self) -> None:
        """Add implicit order edges between constant class representatives."""
        const_reps = sorted(
            {
                self._find(t)
                for t in self._terms
                if isinstance(self._find(t), Const)
            },
            key=lambda c: repr(c),
        )
        for i, a in enumerate(const_reps):
            for b in const_reps[i + 1 :]:
                assert isinstance(a, Const) and isinstance(b, Const)
                if not _comparable(a.value, b.value):
                    continue
                if a.value < b.value:  # type: ignore[operator]
                    self._edges.append((a, b, True))
                elif b.value < a.value:  # type: ignore[operator]
                    self._edges.append((b, a, True))

    def _check_order_consistency(self) -> None:
        """Inconsistent iff some strict edge lies on a cycle of order edges."""
        for u, v, strict in self._edges:
            if not strict:
                continue
            if self._reachable(v, u, require_strict=False):
                self._inconsistent = True
                return
        # Derived equalities from x <= y and y <= x do not merge classes here;
        # they only matter for implies("=") which checks them explicitly.

    def _reachable(self, start: Term, goal: Term, require_strict: bool) -> bool:
        """Is there an order path start → goal (strict somewhere if required)?"""
        start = self._find(start)
        goal = self._find(goal)
        # State: (node, have_strict). BFS.
        seen: set[tuple[Term, bool]] = set()
        stack: list[tuple[Term, bool]] = [(start, False)]
        while stack:
            node, have_strict = stack.pop()
            if node == goal and (have_strict or not require_strict):
                if not require_strict or have_strict:
                    return True
            if (node, have_strict) in seen:
                continue
            seen.add((node, have_strict))
            for u, v, strict in self._edges:
                if u == node:
                    state = (v, have_strict or strict)
                    if state not in seen:
                        stack.append(state)
        return False

    # -- public API ---------------------------------------------------------

    def consistent(self) -> bool:
        """Whether some assignment satisfies all constraints."""
        return not self._inconsistent

    def canon(self, term: Term) -> Term:
        """The representative of ``term``'s equivalence class."""
        return self._find(term)

    def equal(self, a: Term, b: Term) -> bool:
        """Is ``a = b`` implied?"""
        if self._inconsistent:
            return True
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return True
        if isinstance(ra, Const) and isinstance(rb, Const):
            return _const_cmp("=", ra.value, rb.value)
        # Sandwich: a <= b and b <= a (no strict edge possible if consistent).
        if self._reachable(ra, rb, require_strict=False) and self._reachable(
            rb, ra, require_strict=False
        ):
            return True
        return False

    def not_equal(self, a: Term, b: Term) -> bool:
        """Is ``a != b`` implied?"""
        if self._inconsistent:
            return True
        ra, rb = self._find(a), self._find(b)
        if (ra, rb) in self._neq:
            return True
        if isinstance(ra, Const) and isinstance(rb, Const):
            return not _const_cmp("=", ra.value, rb.value)
        if ra == rb:
            return False
        return self._strictly_less(ra, rb) or self._strictly_less(rb, ra)

    def _strictly_less(self, a: Term, b: Term) -> bool:
        ra, rb = self._find(a), self._find(b)
        if isinstance(ra, Const) and isinstance(rb, Const):
            return _const_cmp("<", ra.value, rb.value)
        if self._reachable(ra, rb, require_strict=True):
            return True
        # Route through constant nodes of the graph: e.g. 18 < x follows
        # from 60 <= x even when 18 never appears in the constraint set.
        for node in self._const_nodes():
            if isinstance(ra, Const) and _const_cmp("<", ra.value, node.value):
                if node == rb or self._reachable(node, rb, require_strict=False):
                    return True
            if isinstance(ra, Const) and _const_cmp("<=", ra.value, node.value):
                if self._reachable(node, rb, require_strict=True):
                    return True
            if isinstance(rb, Const) and _const_cmp("<", node.value, rb.value):
                if node == ra or self._reachable(ra, node, require_strict=False):
                    return True
            if isinstance(rb, Const) and _const_cmp("<=", node.value, rb.value):
                if self._reachable(ra, node, require_strict=True):
                    return True
        return False

    def _less_or_equal(self, a: Term, b: Term) -> bool:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return True
        if isinstance(ra, Const) and isinstance(rb, Const):
            return _const_cmp("<=", ra.value, rb.value)
        if self._reachable(ra, rb, require_strict=False):
            return True
        for node in self._const_nodes():
            if isinstance(ra, Const) and _const_cmp("<=", ra.value, node.value):
                if node == rb or self._reachable(node, rb, require_strict=False):
                    return True
            if isinstance(rb, Const) and _const_cmp("<=", node.value, rb.value):
                if node == ra or self._reachable(ra, node, require_strict=False):
                    return True
        return False

    def _const_nodes(self) -> list[Const]:
        nodes: list[Const] = []
        seen: set[Term] = set()
        for term in self._terms:
            rep = self._find(term)
            if isinstance(rep, Const) and rep not in seen:
                seen.add(rep)
                nodes.append(rep)
        return nodes

    def implies(self, comp: Comp) -> bool:
        """Is ``comp`` satisfied by every assignment satisfying this set?

        Sound but not complete: a ``False`` answer means "not provable",
        which callers must treat as "possibly false".
        """
        if self._inconsistent:
            return True
        if comp.op == "=":
            return self.equal(comp.left, comp.right)
        if comp.op == "!=":
            return self.not_equal(comp.left, comp.right)
        if comp.op == "<":
            return self._strictly_less(comp.left, comp.right)
        if comp.op == "<=":
            return self._less_or_equal(comp.left, comp.right) or self.equal(
                comp.left, comp.right
            )
        raise AssertionError(comp.op)

    def implies_all(self, comps: Iterable[Comp]) -> bool:
        return all(self.implies(c) for c in comps)


class _NoConst:
    """Sentinel distinct from any value, including None."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no-const>"


_NO_CONST = _NoConst()


def comps_of_query(query) -> ConstraintSet:
    """Build the constraint closure of a CQ's comparisons."""
    return ConstraintSet(query.comps)
