"""Conjunctive queries with arithmetic comparisons.

A conjunctive query (CQ) is the datalog-style form

    Q(head...) :- R1(args...), R2(args...), comp, comp, ...

where atom arguments and comparison operands are *terms*:

* :class:`Var` — an existential or distinguished variable,
* :class:`Const` — a concrete value (int, float, str, bool, or None),
* :class:`Param` — a rigid symbolic constant such as the policy parameter
  ``?MyUId``. Two distinct params *may* denote the same value, so the
  reasoning layer treats them as possibly-equal for consistency but never
  provably-equal for implication — the conservative direction for
  enforcement.

Unions of conjunctive queries (:class:`UCQ`) represent SELECTs whose WHERE
clause contains OR / IN.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.util.errors import DbacError
from repro.util.text import sql_quote

# --------------------------------------------------------------------------
# Terms
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant value."""

    value: int | float | str | bool | None

    def __repr__(self) -> str:
        return sql_quote(self.value)


@dataclass(frozen=True)
class Param:
    """A rigid symbolic constant (named policy/query parameter)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Var | Const | Param

COMPARISON_OPS = ("=", "!=", "<", "<=")

_FLIP = {"<": "<", "<=": "<=", ">": "<", ">=": "<="}


# --------------------------------------------------------------------------
# Atoms and comparisons
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A relational atom ``rel(args...)`` over the full column list of rel."""

    rel: str
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.rel}({inner})"

    def substitute(self, mapping: Mapping[Var, Term]) -> "Atom":
        return Atom(self.rel, tuple(_subst_term(a, mapping) for a in self.args))

    def variables(self) -> Iterable[Var]:
        for arg in self.args:
            if isinstance(arg, Var):
                yield arg


@dataclass(frozen=True)
class Comp:
    """A comparison constraint; ``op`` is one of ``= != < <=``.

    ``>`` and ``>=`` are normalized away at construction via
    :meth:`normalized`.
    """

    op: str
    left: Term
    right: Term

    @staticmethod
    def normalized(op: str, left: Term, right: Term) -> "Comp":
        """Build a comparison, normalizing ``<>``, ``>``, ``>=``."""
        if op == "<>":
            op = "!="
        if op in (">", ">="):
            return Comp(_FLIP[op], right, left)
        if op not in COMPARISON_OPS:
            raise DbacError(f"unknown comparison operator {op!r}")
        return Comp(op, left, right)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"

    def substitute(self, mapping: Mapping[Var, Term]) -> "Comp":
        return Comp(self.op, _subst_term(self.left, mapping), _subst_term(self.right, mapping))

    def variables(self) -> Iterable[Var]:
        for term in (self.left, self.right):
            if isinstance(term, Var):
                yield term


def _subst_term(term: Term, mapping: Mapping[Var, Term]) -> Term:
    if isinstance(term, Var):
        return mapping.get(term, term)
    return term


# --------------------------------------------------------------------------
# CQ / UCQ
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CQ:
    """A conjunctive query with comparisons.

    ``head`` holds the output terms; ``head_names`` the output column
    names (parallel to ``head``, used when mapping results back to rows).
    """

    head: tuple[Term, ...]
    body: tuple[Atom, ...]
    comps: tuple[Comp, ...] = ()
    head_names: tuple[str, ...] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        if self.head_names and len(self.head_names) != len(self.head):
            raise DbacError("head_names must parallel head")

    # -- inspection --------------------------------------------------------

    def variables(self) -> set[Var]:
        """All variables appearing anywhere in the query."""
        found: set[Var] = set()
        for term in self.head:
            if isinstance(term, Var):
                found.add(term)
        for atom in self.body:
            found.update(atom.variables())
        for comp in self.comps:
            found.update(comp.variables())
        return found

    def body_variables(self) -> set[Var]:
        found: set[Var] = set()
        for atom in self.body:
            found.update(atom.variables())
        return found

    def distinguished(self) -> set[Var]:
        """Head variables."""
        return {t for t in self.head if isinstance(t, Var)}

    def params(self) -> set[Param]:
        found: set[Param] = set()
        for term in self.head:
            if isinstance(term, Param):
                found.add(term)
        for atom in self.body:
            for arg in atom.args:
                if isinstance(arg, Param):
                    found.add(arg)
        for comp in self.comps:
            for term in (comp.left, comp.right):
                if isinstance(term, Param):
                    found.add(term)
        return found

    def relations(self) -> set[str]:
        # Computed once per (immutable) CQ: the checker asks for a view's
        # relations on every decision, so the walk is cached on the frozen
        # instance (idempotent under racing writers — both store the same
        # frozenset). Callers get a fresh mutable set, as before.
        cached = getattr(self, "_relations_cache", None)
        if cached is None:
            cached = frozenset(atom.rel for atom in self.body)
            object.__setattr__(self, "_relations_cache", cached)
        return set(cached)

    @property
    def arity(self) -> int:
        return len(self.head)

    # -- transformation ------------------------------------------------------

    def substitute(self, mapping: Mapping[Var, Term]) -> "CQ":
        """Apply a variable substitution throughout the query."""
        return CQ(
            head=tuple(_subst_term(t, mapping) for t in self.head),
            body=tuple(atom.substitute(mapping) for atom in self.body),
            comps=tuple(comp.substitute(mapping) for comp in self.comps),
            head_names=self.head_names,
            name=self.name,
        )

    def instantiate(self, bindings: Mapping[str, object]) -> "CQ":
        """Replace named params with constants (missing names stay symbolic)."""

        def conv(term: Term) -> Term:
            if isinstance(term, Param) and term.name in bindings:
                return Const(bindings[term.name])  # type: ignore[arg-type]
            return term

        return CQ(
            head=tuple(conv(t) for t in self.head),
            body=tuple(Atom(a.rel, tuple(conv(x) for x in a.args)) for a in self.body),
            comps=tuple(Comp(c.op, conv(c.left), conv(c.right)) for c in self.comps),
            head_names=self.head_names,
            name=self.name,
        )

    def rename_apart(self, taken: set[str]) -> "CQ":
        """Rename variables so none collides with names in ``taken``."""
        mapping: dict[Var, Term] = {}
        for var in sorted(self.variables(), key=lambda v: v.name):
            if var.name in taken:
                base = var.name
                counter = 1
                candidate = f"{base}_{counter}"
                while candidate in taken:
                    counter += 1
                    candidate = f"{base}_{counter}"
                mapping[var] = Var(candidate)
                taken.add(candidate)
            else:
                taken.add(var.name)
        if not mapping:
            return self
        return self.substitute(mapping)

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        parts = [repr(a) for a in self.body] + [repr(c) for c in self.comps]
        name = self.name or "Q"
        return f"{name}({head}) :- {', '.join(parts)}"


@dataclass(frozen=True)
class UCQ:
    """A union of conjunctive queries of equal arity."""

    disjuncts: tuple[CQ, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise DbacError("UCQ needs at least one disjunct")
        arity = self.disjuncts[0].arity
        if any(d.arity != arity for d in self.disjuncts):
            raise DbacError("UCQ disjuncts must agree on arity")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    @property
    def head_names(self) -> tuple[str, ...]:
        return self.disjuncts[0].head_names

    def instantiate(self, bindings: Mapping[str, object]) -> "UCQ":
        return UCQ(tuple(d.instantiate(bindings) for d in self.disjuncts), self.name)

    def params(self) -> set[Param]:
        found: set[Param] = set()
        for disjunct in self.disjuncts:
            found.update(disjunct.params())
        return found

    def relations(self) -> set[str]:
        found: set[str] = set()
        for disjunct in self.disjuncts:
            found.update(disjunct.relations())
        return found

    @staticmethod
    def of(query: "CQ | UCQ") -> "UCQ":
        """Coerce a CQ into a single-disjunct UCQ."""
        if isinstance(query, UCQ):
            return query
        return UCQ((query,), query.name)

    def __repr__(self) -> str:
        return " UNION ".join(repr(d) for d in self.disjuncts)


def fresh_var_factory(prefix: str = "v"):
    """Return a callable producing globally-unique :class:`Var` objects."""
    counter = 0

    def fresh(hint: str = "") -> Var:
        nonlocal counter
        name = f"{prefix}{counter}" + (f"_{hint}" if hint else "")
        counter += 1
        return Var(name)

    return fresh
