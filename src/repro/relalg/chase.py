"""A bounded chase with tuple-generating dependencies.

The paper's Example 4.1 inference ("John's disease is one of the two his
doctor treats") relies on *background knowledge*: the integrity
constraint that a patient's condition is always treated by their
assigned doctor. Benedikt et al. — the source of the PQI/NQI
definitions — study exactly "inference from visible information and
background knowledge", so the checkers accept such constraints as
tuple-generating dependencies (TGDs) and chase the sensitive query with
them before reasoning.

A TGD ``body → head`` states: whenever the body atoms match, the head
atoms also hold (head-only variables are existential). Chasing a CQ adds
the implied head atoms (with fresh variables for existentials) until a
fixpoint or the step bound — a bound is needed because TGD chase
termination is undecidable in general.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relalg.cq import CQ, Atom, Comp, Term, Var, fresh_var_factory


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body ⇒ head``."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    name: str = ""

    def existential_vars(self) -> set[Var]:
        body_vars = {v for atom in self.body for v in atom.variables()}
        head_vars = {v for atom in self.head for v in atom.variables()}
        return head_vars - body_vars


def chase(query: CQ, dependencies: list[TGD], max_steps: int = 20) -> CQ:
    """Saturate ``query`` with the dependencies (bounded standard chase).

    Each step finds a homomorphism from some TGD body into the query body
    whose head image is not yet present, and adds the head atoms with
    fresh existential variables. The result is equivalent to the input on
    every database satisfying the dependencies.
    """
    fresh = fresh_var_factory("ch")
    body = list(query.body)
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        for tgd in dependencies:
            for mapping in _homomorphisms(tgd.body, tuple(body)):
                if _head_satisfied(tgd, mapping, body):
                    continue
                extension = dict(mapping)
                for var in sorted(tgd.existential_vars(), key=lambda v: v.name):
                    extension[var] = fresh()
                for atom in tgd.head:
                    new_atom = atom.substitute(extension)
                    if new_atom not in body:
                        body.append(new_atom)
                        changed = True
                steps += 1
                if steps >= max_steps:
                    break
            if steps >= max_steps:
                break
    return CQ(
        head=query.head,
        body=tuple(body),
        comps=query.comps,
        head_names=query.head_names,
        name=(query.name or "Q") + "_chased",
    )


def _homomorphisms(pattern: tuple[Atom, ...], target: tuple[Atom, ...]):
    """All homomorphisms from the pattern atoms into the target atoms."""

    def extend(index: int, mapping: dict[Var, Term]):
        if index == len(pattern):
            yield dict(mapping)
            return
        atom = pattern[index]
        for candidate in target:
            if candidate.rel != atom.rel or len(candidate.args) != len(atom.args):
                continue
            extension: dict[Var, Term] = {}
            ok = True
            for pattern_arg, target_arg in zip(atom.args, candidate.args):
                if isinstance(pattern_arg, Var):
                    bound = mapping.get(pattern_arg, extension.get(pattern_arg))
                    if bound is None:
                        extension[pattern_arg] = target_arg
                    elif bound != target_arg:
                        ok = False
                        break
                elif pattern_arg != target_arg:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(extension)
            yield from extend(index + 1, mapping)
            for key in extension:
                del mapping[key]

    yield from extend(0, {})


def _head_satisfied(tgd: TGD, mapping: dict[Var, Term], body: list[Atom]) -> bool:
    """Is some extension of the mapping already witnessed in the body?

    Standard-chase applicability: the step fires only if the head cannot
    be matched into the existing body with the frontier fixed.
    """
    frontier_mapped = {
        var: term
        for var, term in mapping.items()
        if var not in tgd.existential_vars()
    }

    def extend(index: int, current: dict[Var, Term]) -> bool:
        if index == len(tgd.head):
            return True
        atom = tgd.head[index]
        for candidate in body:
            if candidate.rel != atom.rel or len(candidate.args) != len(atom.args):
                continue
            extension: dict[Var, Term] = {}
            ok = True
            for pattern_arg, target_arg in zip(atom.args, candidate.args):
                if isinstance(pattern_arg, Var):
                    bound = current.get(pattern_arg, extension.get(pattern_arg))
                    if bound is None:
                        extension[pattern_arg] = target_arg
                    elif bound != target_arg:
                        ok = False
                        break
                elif pattern_arg != target_arg:
                    ok = False
                    break
            if not ok:
                continue
            current.update(extension)
            if extend(index + 1, current):
                for key in extension:
                    del current[key]
                return True
            for key in extension:
                del current[key]
        return False

    return extend(0, dict(frontier_mapped))
