"""CQ minimization (core computation).

A conjunctive query is minimized by repeatedly deleting a body atom and
checking that the smaller query is still contained in the original (the
reverse containment is automatic — deleting an atom only relaxes the
query). The result is the *core*, unique up to variable renaming.

Redundant comparisons — those implied by the remaining ones — are dropped
as well, which keeps extracted policy views readable.
"""

from __future__ import annotations

from repro.relalg.constraints import ConstraintSet
from repro.relalg.cq import CQ, UCQ, Var
from repro.relalg.containment import cq_contained_in, ucq_contained_in


def minimize_cq(query: CQ) -> CQ:
    """Return the core of ``query`` (equivalent, with minimal body)."""
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            candidate = CQ(
                head=current.head,
                body=current.body[:index] + current.body[index + 1 :],
                comps=current.comps,
                head_names=current.head_names,
                name=current.name,
            )
            if not candidate.body:
                continue
            remaining_vars = candidate.body_variables()
            if any(
                isinstance(term, Var) and term not in remaining_vars
                for term in candidate.head
            ):
                continue  # removal would orphan a head variable
            # candidate has fewer atoms, hence current ⊑ candidate always;
            # equivalence needs candidate ⊑ current.
            if cq_contained_in(candidate, current):
                cleaned = _eliminate_dangling(candidate)
                if cleaned is None:
                    continue  # removal would strand a comparison variable
                current = cleaned
                changed = True
                break
    return _drop_implied_comps(current)


def _eliminate_dangling(query: CQ) -> CQ | None:
    """Rewrite comparisons off variables no longer bound by the body.

    After an atom removal, comparisons may reference variables that only
    the removed atom bound. Each such variable is substituted by an
    equal surviving term (via the equality closure); comparisons that
    become tautological are dropped. Returns None when a dangling
    variable cannot be eliminated — the caller then keeps the atom.
    """
    alive = query.body_variables()
    closure = ConstraintSet(query.comps)
    alive_sorted = sorted(alive, key=lambda v: v.name)

    def rewrite(term):
        if not isinstance(term, Var) or term in alive:
            return term
        pinned = closure.canon(term)
        if not isinstance(pinned, Var):
            return pinned  # a constant or param representative
        for candidate in alive_sorted:
            if closure.equal(term, candidate):
                return candidate
        return None

    comps = []
    for comp in query.comps:
        left = rewrite(comp.left)
        right = rewrite(comp.right)
        if left is None or right is None:
            return None
        if left == right and comp.op in ("=", "<="):
            continue
        comps.append(type(comp)(comp.op, left, right))
    return CQ(
        head=query.head,
        body=query.body,
        comps=tuple(comps),
        head_names=query.head_names,
        name=query.name,
    )


def _drop_implied_comps(query: CQ) -> CQ:
    """Remove comparisons implied by the remaining ones."""
    comps = list(query.comps)
    index = 0
    while index < len(comps):
        rest = comps[:index] + comps[index + 1 :]
        if ConstraintSet(rest).implies(comps[index]):
            comps = rest
        else:
            index += 1
    # Drop comparisons over variables that no longer appear in the body or
    # head *only if implied*; dangling comps must be kept (they constrain
    # the query) — but after core computation the body no longer binds such
    # variables, so keep them regardless for soundness.
    if len(comps) == len(query.comps):
        return query
    return CQ(
        head=query.head,
        body=query.body,
        comps=tuple(comps),
        head_names=query.head_names,
        name=query.name,
    )


def minimize_ucq(query: UCQ) -> UCQ:
    """Minimize each disjunct and drop disjuncts contained in the rest."""
    disjuncts = [minimize_cq(d) for d in query.disjuncts]
    index = 0
    while index < len(disjuncts) and len(disjuncts) > 1:
        rest = disjuncts[:index] + disjuncts[index + 1 :]
        if ucq_contained_in(disjuncts[index], UCQ(tuple(rest))):
            disjuncts = rest
        else:
            index += 1
    return UCQ(tuple(disjuncts), query.name)
