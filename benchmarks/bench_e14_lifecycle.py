"""E14 — Policy lifecycle: hot reload, shadow mode, gated promotion.

Four questions about the ``repro.lifecycle`` subsystem:

1. **E14a — reload under load, zero torn decisions.** Traffic threads
   hammer a gateway while the policy is hot-swapped back and forth.
   Every decision is audited (bound SQL, bindings, trace facts as of
   decision time, claimed policy version) and re-verified against a
   fresh checker built for exactly that version: a single disagreement
   would mean a decision straddled two epochs. Sessions and their
   certified traces must survive every swap.

2. **E14b — shadow-mode overhead.** The same allowed-query stream with
   shadow mode off vs shadowing an identical candidate. Submission is
   the only hot-path cost (the check itself runs on a dedicated
   thread), so active-path p50 must stay within 1.5× — and an identical
   candidate must produce zero divergences.

3. **E14c — seeded regression detection.** Two deliberately broken
   candidates: one *missing* a view (every history-gated allow flips to
   block) and one *over-broad* (blocked attack queries flip to allow).
   Shadow mode must catch 100% of the seeded flips, classified by kind.

4. **E14d — gated promotion end to end.** A policy mined from live
   traces (§3) passes every gate and is promoted; a regressed candidate
   is rejected with §5 diagnoses attached while the active policy keeps
   serving; ROLLBACK then restores the pre-promotion version with its
   caches rebuilt cold.

``E14_QUICK=1`` shrinks sizes for CI smoke runs. Marked ``slow``.
"""

import os
import random
import statistics
import threading
import time

import pytest

from repro.bench.harness import print_table
from repro.enforce.checker import ComplianceChecker
from repro.enforce.decision import PolicyViolation
from repro.extract import MinerConfig, TraceMiner
from repro.lifecycle import GateConfig, LifecycleManager, ShadowRunner, hot_reload
from repro.policy.compare import compare_policies
from repro.policy.policy import Policy, View
from repro.serve import EnforcementGateway, GatewayConfig
from repro.serve.pool import _TraceReplica
from repro.workloads import calendar_app

from conftest import OPAQUE_HINTS, fresh_app

pytestmark = pytest.mark.slow

QUICK = os.environ.get("E14_QUICK", "") not in ("", "0")


def make_calendar_gateway(**config):
    app, db = fresh_app("calendar", size=10)
    if db.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").is_empty():
        db.sql("INSERT INTO Attendance VALUES (1, 2)")
    gateway = EnforcementGateway(
        db, app.ground_truth_policy(), GatewayConfig(**config)
    )
    return app, db, gateway


def without_view(policy: Policy, name: str) -> Policy:
    return Policy([v for v in policy.views if v.name != name], name=f"minus-{name}")


# --------------------------------------------------------------------------
# E14a — hot reload under concurrent load: audit every decision
# --------------------------------------------------------------------------


def reload_under_load(reloads: int):
    app, db, gateway = make_calendar_gateway()
    truth = app.ground_truth_policy()
    policies = {1: truth}
    audits: list = []
    audit_lock = threading.Lock()

    def audit(record):
        with audit_lock:
            audits.append(record)

    gateway.decision_audit = audit
    stop = threading.Event()
    errors: list = []

    def traffic(uid: int) -> None:
        connection = gateway.connect(uid)
        try:
            while not stop.is_set():
                connection.query(
                    f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = 2"
                )
                try:
                    connection.query("SELECT * FROM Events WHERE EId = 2")
                except PolicyViolation:
                    pass
        except Exception as exc:  # pragma: no cover - surfaced in the table
            errors.append(exc)

    threads = [threading.Thread(target=traffic, args=(uid,)) for uid in (1, 2, 3)]
    for thread in threads:
        thread.start()
    swap_pauses = []
    drained_all = True
    try:
        for version in range(2, reloads + 2):
            policy = truth if version % 2 == 1 else without_view(truth, "V2")
            policies[version] = policy
            report = hot_reload(gateway, policy, version=version)
            swap_pauses.append(report.swap_pause_s)
            drained_all = drained_all and report.drained
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

    # Sessions and their certified history survived the storm: the user-1
    # trace still justifies the Events query under the final (full) policy.
    survivor = gateway.connect(1)
    facts_after = len(survivor.trace.facts)
    q2_rows = len(survivor.query("SELECT * FROM Events WHERE EId = 2"))
    gateway.close()

    # Re-verify every audited decision against a fresh checker for the
    # version that claims to have made it.
    checkers = {
        version: ComplianceChecker(db.schema, policy)
        for version, policy in policies.items()
    }
    torn = 0
    for record in audits:
        replica = _TraceReplica()
        replica.apply([("add", fact) for fact in record.facts])
        fresh = checkers[record.policy_version].check(
            db.parse(record.sql), record.bindings, replica
        )
        if fresh.allowed != record.allowed:
            torn += 1

    rows = [
        (
            reloads,
            len(audits),
            torn,
            len(errors),
            round(statistics.median(swap_pauses) * 1e6, 1),
            round(max(swap_pauses) * 1e6, 1),
            drained_all,
            facts_after,
        )
    ]
    return rows, torn, len(errors), q2_rows


# --------------------------------------------------------------------------
# E14b — shadow-mode overhead on the active path
# --------------------------------------------------------------------------

ALLOWED_SHAPES = [
    "SELECT EId FROM Attendance WHERE UId = {u}",
    "SELECT 1 FROM Attendance WHERE UId = {u} AND EId = {e}",
    "SELECT Name FROM Users WHERE UId = {u}",
]


def allowed_stream(n: int, seed: int = 17, user: int = 1):
    """Statements all allowed for ``user``'s own session (V1/V3 shapes)."""
    rng = random.Random(seed)
    return [
        ALLOWED_SHAPES[rng.randrange(len(ALLOWED_SHAPES))].format(
            u=user, e=rng.randint(1, 6)
        )
        for _ in range(n)
    ]


def timed_replay(gateway, statements):
    """Per-query active-path latencies, one session per user id 1."""
    connection = gateway.connect(1)
    # Warm-up pass: caches and memos behave identically on both sides.
    for sql in statements:
        connection.query(sql)
    latencies = []
    for sql in statements:
        started = time.perf_counter()
        connection.query(sql)
        latencies.append(time.perf_counter() - started)
    return latencies


def shadow_overhead(requests: int):
    statements = allowed_stream(requests)

    app, _, gateway = make_calendar_gateway()
    baseline = timed_replay(gateway, statements)
    gateway.close()

    app, _, gateway = make_calendar_gateway()
    runner = ShadowRunner(
        gateway, Policy(app.ground_truth_policy().views, name="copy"), 2
    )
    gateway.shadow = runner
    shadowed = timed_replay(gateway, statements)
    assert runner.drain(timeout_s=60.0)
    stats = runner.stats()
    gateway.close()

    base_p50 = statistics.median(baseline)
    shadow_p50 = statistics.median(shadowed)
    ratio = shadow_p50 / base_p50 if base_p50 else 1.0
    rows = [
        ("shadow off", requests, round(base_p50 * 1e6, 1), "-", "-", "-"),
        (
            "shadow on (identical candidate)",
            requests,
            round(shadow_p50 * 1e6, 1),
            round(ratio, 2),
            stats["checks"],
            stats["divergences"],
        ),
    ]
    return rows, ratio, stats


# --------------------------------------------------------------------------
# E14c — seeded allow↔block regressions must all be caught
# --------------------------------------------------------------------------


def seeded_regressions():
    rows = []

    # Seed allow→block: drop V2; every history-justified Events allow flips.
    app, db, gateway = make_calendar_gateway()
    truth = app.ground_truth_policy()
    for uid in (2, 3):  # uid 1's attendance is guaranteed by the fixture
        if db.query(
            f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = 2"
        ).is_empty():
            db.sql(f"INSERT INTO Attendance VALUES ({uid}, 2)")
    runner = ShadowRunner(gateway, without_view(truth, "V2"), 2)
    gateway.shadow = runner
    seeded_ab = 0
    for uid in (1, 2, 3):
        connection = gateway.connect(uid)
        connection.query(f"SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = 2")
        connection.query("SELECT * FROM Events WHERE EId = 2")  # allowed via V2
        seeded_ab += 1
    assert runner.drain(timeout_s=60.0)
    stats = runner.stats()
    caught_ab = stats["allow_to_block"]
    rows.append(
        (
            "allow→block (candidate lost V2)",
            seeded_ab,
            caught_ab,
            round(100.0 * caught_ab / seeded_ab, 1),
            stats["checks"],
        )
    )
    gateway.close()

    # Seed block→allow: add an unconditional Events view; blocked attack
    # queries against unattended events flip to allowed.
    app, db, gateway = make_calendar_gateway()
    broad = Policy(
        list(truth.views)
        + [View("VAll", "SELECT * FROM Events", db.schema, "over-broad")],
        name="over-broad",
    )
    runner = ShadowRunner(gateway, broad, 2)
    gateway.shadow = runner
    seeded_ba = 0
    connection = gateway.connect(1)
    for eid in range(1, 4):
        try:
            connection.query(f"SELECT * FROM Events WHERE EId = {eid}")
        except PolicyViolation:
            seeded_ba += 1  # blocked under truth, allowed under the broad view
    assert seeded_ba > 0
    assert runner.drain(timeout_s=60.0)
    stats = runner.stats()
    caught_ba = stats["block_to_allow"]
    rows.append(
        (
            "block→allow (candidate over-broad)",
            seeded_ba,
            caught_ba,
            round(100.0 * caught_ba / seeded_ba, 1),
            stats["checks"],
        )
    )
    gateway.close()

    return rows, (seeded_ab, caught_ab), (seeded_ba, caught_ba)


# --------------------------------------------------------------------------
# E14d — gated promotion of a mined policy, rejection, rollback
# --------------------------------------------------------------------------


def drive_allowed_traffic(gateway, statements):
    for sql in statements:
        try:
            gateway.connect(1).query(sql)
        except PolicyViolation:
            pass
    assert gateway.shadow.drain(timeout_s=60.0)


def gated_promotion(traces: int, shadow_checks: int):
    app, db, gateway = make_calendar_gateway()
    truth = app.ground_truth_policy()

    # Mine a candidate from live traces, exactly the §3 pipeline.
    miner = TraceMiner(
        app, db, MinerConfig(opaque_columns=OPAQUE_HINTS["calendar"])
    )
    mined = miner.mine(app.request_stream(db, random.Random(6), traces))
    comparison = compare_policies(mined, truth)

    manager = LifecycleManager(
        gateway, gates=GateConfig(min_shadow_checks=shadow_checks)
    )
    statements = allowed_stream(shadow_checks + 5)
    rows = []

    # The mined candidate earns promotion through all three gates.
    manager.start_shadow(mined, provenance="extracted", label="mined")
    drive_allowed_traffic(gateway, statements)
    promoted = manager.promote()
    rows.append(
        (
            "mined candidate",
            round(comparison.precision, 2),
            round(comparison.recall, 2),
            "promoted" if promoted.promoted else "REJECTED",
            gateway.policy_version,
            len(promoted.diagnoses),
        )
    )

    # A regressed candidate is rejected — with diagnoses — and the active
    # policy keeps serving untouched.
    manager.start_shadow(without_view(truth, "V2"), provenance="patched")
    connection = gateway.connect(1)
    connection.query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
    connection.query("SELECT * FROM Events WHERE EId = 2")
    drive_allowed_traffic(gateway, statements)
    rejected = manager.promote()
    rows.append(
        (
            "regressed candidate (lost V2)",
            "-",
            "-",
            "promoted" if rejected.promoted else "REJECTED",
            gateway.policy_version,
            len(rejected.diagnoses),
        )
    )
    manager.stop_shadow()

    # ROLLBACK restores the pre-promotion version with caches rebuilt cold.
    version_before = gateway.policy_version
    gateway.connect(1).query("SELECT EId FROM Attendance WHERE UId = 1")
    rollback = manager.rollback()
    cache_size_after = gateway.shared_cache.size
    rows.append(
        (
            f"rollback v{version_before} → v{rollback.new_version}",
            "-",
            "-",
            "restored",
            gateway.policy_version,
            cache_size_after,
        )
    )
    gateway.close()
    return rows, promoted, rejected, rollback, cache_size_after


def test_e14_lifecycle(benchmark, capsys):
    reloads = 4 if QUICK else 8
    overhead_requests = 40 if QUICK else 150
    traces = 40 if QUICK else 80
    shadow_checks = 10 if QUICK else 40

    reload_rows, torn, traffic_errors, q2_rows = reload_under_load(reloads)
    overhead_rows, ratio, shadow_stats = shadow_overhead(overhead_requests)
    regression_rows, (seeded_ab, caught_ab), (seeded_ba, caught_ba) = (
        seeded_regressions()
    )
    promotion_rows, promoted, rejected, rollback, cache_size = gated_promotion(
        traces, shadow_checks
    )

    # The measured pass for the benchmark fixture: one full hot reload
    # (epoch build + swap + drain) on an idle gateway.
    app, _, gateway = make_calendar_gateway()
    truth = app.ground_truth_policy()
    versions = iter(range(2, 10_000))

    def one_reload():
        hot_reload(gateway, truth, version=next(versions))

    benchmark.pedantic(one_reload, rounds=5, iterations=1)
    gateway.close()

    with capsys.disabled():
        print_table(
            "E14a",
            "hot reload under concurrent load (audited decisions re-verified)",
            [
                "reloads",
                "decisions",
                "torn",
                "errors",
                "swap p50 us",
                "swap max us",
                "drained",
                "facts kept",
            ],
            reload_rows,
        )
        print_table(
            "E14b",
            "shadow-mode active-path overhead (identical candidate)",
            ["mode", "requests", "p50 us", "ratio", "shadow checks", "divergences"],
            overhead_rows,
        )
        print_table(
            "E14c",
            "seeded regression detection in shadow mode",
            ["seeded flip", "seeded", "caught", "caught %", "shadow checks"],
            regression_rows,
        )
        print_table(
            "E14d",
            "gated promotion of a mined policy, rejection, rollback",
            ["candidate", "precision", "recall", "verdict", "active ver", "diag/cache"],
            promotion_rows,
        )

    # E14a: no torn decisions, no traffic errors, traces survived.
    assert torn == 0
    assert traffic_errors == 0
    assert q2_rows == 1
    # E14b: identical candidate never diverges; hot path within 1.5x.
    assert shadow_stats["divergences"] == 0
    assert ratio <= 1.5, ratio
    # E14c: every seeded flip caught, in the right direction.
    assert caught_ab == seeded_ab
    assert caught_ba == seeded_ba
    # E14d: mined policy promoted only after passing gates; regression
    # rejected with diagnoses; rollback restored the previous version
    # with cold caches.
    assert promoted.promoted and promoted.passed
    assert not rejected.promoted and rejected.diagnoses
    assert rollback.new_version < rollback.old_version
    assert cache_size == 0
