"""E8 — Prior sensitivity of Bayesian disclosure (§4.2, figure).

The same hospital database and the same staff policy are evaluated under
a sweep of adversary priors (how strongly the adversary already suspects
the first disease on John's doctor's list). The Bayesian belief shift
and the adversary's posterior confidence swing widely across the sweep,
while the prior-agnostic verdicts (PQI = no, NQI = yes) are one fixed
column — exactly the §4.2 → §4.3 argument.
"""

import random

from repro.bench.harness import print_figure_series, print_table
from repro.evaluate.answers import images_of
from repro.evaluate.bayes import ChoicePrior, posterior_over_sensitive
from repro.evaluate.nqi import check_nqi
from repro.evaluate.pqi import check_pqi
from repro.relalg.chase import TGD
from repro.relalg.cq import Atom, Var
from repro.relalg.translate import translate_select
from repro.sqlir.parser import parse_select
from repro.workloads import hospital

from conftest import fresh_app

TILTS = [0.05, 0.25, 0.5, 0.75, 0.95]
SAMPLES = 1500

HOSPITAL_TGD = TGD(
    body=(Atom("PatientConditions", (Var("p"), Var("d"))),),
    head=(
        Atom("Patients", (Var("p"), Var("n"), Var("doc"))),
        Atom("DoctorDiseases", (Var("doc"), Var("d"))),
    ),
)


def setup():
    app, db = fresh_app("hospital", size=8, seed=11)
    views = app.ground_truth_policy().view_defs({})
    schema = db.schema
    sensitive = translate_select(
        parse_select("SELECT Disease FROM PatientConditions WHERE PId = 1"), schema
    ).disjuncts[0]
    observed = images_of(views, db.relation_contents())
    contents = db.relation_contents()
    fixed = {rel: rows for rel, rows in contents.items() if rel != "PatientConditions"}
    doctor_of = {p: doc for (p, _, doc) in contents["Patients"]}
    treats = {}
    for doc, disease in contents["DoctorDiseases"]:
        treats.setdefault(doc, []).append(disease)
    patients = sorted(doctor_of)
    return db, views, sensitive, observed, fixed, doctor_of, treats, patients


def prior_with_tilt(fixed, doctor_of, treats, contents, tilt):
    """The adversary's raw belief about John's disease.

    John (patient 1) has one disease drawn from ALL diseases in the
    domain, with probability mass ``tilt`` on pneumonia (one of the two
    John's doctor actually treats); other patients' conditions are taken
    as known background. The integrity constraint — a patient's disease
    is treated by their doctor — enters as background knowledge at
    conditioning time, not in the prior.
    """
    all_diseases = sorted({d for options in treats.values() for d in options})
    weights = [
        tilt if d == "pneumonia" else (1 - tilt) / (len(all_diseases) - 1)
        for d in all_diseases
    ]
    others = {
        (pid, d) for (pid, d) in contents["PatientConditions"] if pid != 1
    }
    fixed = dict(fixed)
    fixed["PatientConditions"] = others
    groups = [[((1, d), w) for d, w in zip(all_diseases, weights)]]
    return ChoicePrior(fixed=fixed, choices={"PatientConditions": groups})


def constraint_of(doctor_of, treats):
    def holds(instance):
        return all(
            d in treats[doctor_of[p]]
            for (p, d) in instance.get("PatientConditions", ())
        )

    return holds


def sweep():
    db, views, sensitive, observed, fixed, doctor_of, treats, patients = setup()
    contents = db.relation_contents()
    background = constraint_of(doctor_of, treats)
    shifts, confidences = [], []
    for index, tilt in enumerate(TILTS):
        prior = prior_with_tilt(fixed, doctor_of, treats, contents, tilt)
        report = posterior_over_sensitive(
            prior, views, observed, sensitive, samples=SAMPLES,
            rng=random.Random(100 + index), constraint=background,
        )
        top = report.top_posterior()
        shifts.append(round(report.belief_shift, 3))
        confidences.append(round(top[1], 3) if top else 0.0)
    pqi = check_pqi(sensitive, views, constraints=[HOSPITAL_TGD]).holds
    nqi = check_nqi(sensitive, views, constraints=[HOSPITAL_TGD]).holds
    return shifts, confidences, pqi, nqi


def test_e8_prior_sensitivity(benchmark, capsys):
    db, views, sensitive, observed, fixed, doctor_of, treats, patients = setup()
    contents = db.relation_contents()
    prior = prior_with_tilt(fixed, doctor_of, treats, contents, 0.5)
    background = constraint_of(doctor_of, treats)

    def one_posterior():
        return posterior_over_sensitive(
            prior, views, observed, sensitive, samples=300,
            rng=random.Random(0), constraint=background,
        )

    report = benchmark.pedantic(one_posterior, rounds=5, iterations=1)
    assert report.samples == 300

    with capsys.disabled():
        shifts, confidences, pqi, nqi = sweep()
        print_figure_series(
            "E8",
            "Bayesian belief about John's disease vs adversary prior",
            "prior tilt",
            TILTS,
            {
                "belief shift (TV)": shifts,
                "top posterior": confidences,
                "PQI verdict": ["no"] * len(TILTS) if not pqi else ["yes"] * len(TILTS),
                "NQI verdict": ["yes"] * len(TILTS) if nqi else ["no"] * len(TILTS),
            },
        )
        spread = max(confidences) - min(confidences)
        print_table(
            "E8b",
            "prior sensitivity summary",
            ["metric", "value"],
            [
                ("posterior-confidence spread across priors", f"{spread:.2f}"),
                ("prior-agnostic PQI (constant)", str(pqi)),
                ("prior-agnostic NQI (constant)", str(nqi)),
            ],
        )
