"""E2 — Enforcement overhead (the Blockaid-setting latency table).

Per app, the mean per-query latency of serving the same compliant
request stream through: a direct connection, the enforcement proxy with a
cold decision path, the proxy with the decision-template cache warmed,
and the query-modification (RLS) baseline where the app has predicates.

Expected shape (mirroring Blockaid's evaluation): cached enforcement is
close to direct; cold checking costs a noticeable multiple; RLS sits near
direct (it only rewrites text).
"""

import random
import time

from repro.bench.harness import print_table
from repro.enforce import DecisionCache
from repro.workloads.runner import AppRunner

from conftest import ALL_APPS, fresh_app

REQUESTS = 40


def run_mode(app, db, requests, mode, policy=None, cache=None, history=True):
    runner = AppRunner(
        app, db, mode=mode, policy=policy, cache=cache, history_enabled=history
    )
    started = time.perf_counter()
    outcomes = runner.run_all(requests)
    elapsed = time.perf_counter() - started
    queries = sum(
        len(o.outcome.queries_issued) for o in outcomes if o.outcome is not None
    )
    return elapsed / max(queries, 1) * 1e6, queries  # µs per query


def overhead_rows():
    rows = []
    for name, module in ALL_APPS.items():
        app, db = fresh_app(name)
        policy = app.ground_truth_policy()
        requests = app.request_stream(db, random.Random(4), REQUESTS)

        direct_us, queries = run_mode(app, db, requests, "direct")
        cold_us, _ = run_mode(app, db, requests, "proxy", policy=policy)
        cache = DecisionCache(policy)
        # Warm the cache with one pass, measure the second.
        run_mode(app, db, requests, "proxy", policy=policy, cache=cache)
        warm_us, _ = run_mode(app, db, requests, "proxy", policy=policy, cache=cache)
        if app.rls_predicates:
            rls_us, _ = run_mode(app, db, requests, "rls")
            rls_cell = f"{rls_us:.0f}"
        else:
            rls_cell = "n/a"
        rows.append(
            (
                name,
                queries,
                f"{direct_us:.0f}",
                f"{cold_us:.0f}",
                f"{warm_us:.0f}",
                rls_cell,
                f"{cold_us / direct_us:.1f}x",
                f"{warm_us / direct_us:.1f}x",
            )
        )
    return rows


def test_e2_overhead(benchmark, capsys):
    app, db = fresh_app("calendar")
    policy = app.ground_truth_policy()
    requests = app.request_stream(db, random.Random(4), 10)
    cache = DecisionCache(policy)
    run_mode(app, db, requests, "proxy", policy=policy, cache=cache)  # warm

    def warm_pass():
        return run_mode(app, db, requests, "proxy", policy=policy, cache=cache)

    benchmark.pedantic(warm_pass, rounds=20, iterations=1)

    with capsys.disabled():
        print_table(
            "E2",
            "per-query latency (µs) by connection mode",
            [
                "app",
                "queries",
                "direct",
                "proxy cold",
                "proxy cached",
                "rls",
                "cold/direct",
                "cached/direct",
            ],
            overhead_rows(),
        )
